"""Ablation: parity bits per word (paper Section 3.4's first knob).

With k interleaved parity bits the dirty data splits into k protection
domains, multiplying the temporal-MBE MTTF by ~k, and bursts up to k bits
wide stay detectable.  Storage grows linearly with k.
"""

import random

from repro.coding import InterleavedParity
from repro.harness import PAPER_TABLE2_L1, format_table
from repro.reliability import mttf_cppc_years
from repro.util import flip_bits, make_rng

from conftest import publish

WAYS = (1, 2, 4, 8)


def burst_detection_rate(ways, max_burst, trials=400):
    """Fraction of random bursts of width <= max_burst that k-way parity
    detects."""
    code = InterleavedParity(data_bits=64, ways=ways)
    rng = make_rng(("burst", ways, max_burst))
    detected = 0
    for _ in range(trials):
        value = rng.getrandbits(64)
        width = rng.randint(1, max_burst)
        start = rng.randrange(64 - width + 1)
        corrupted = flip_bits(value, range(start, start + width))
        if code.inspect(corrupted, code.encode(value)).detected:
            detected += 1
    return detected / trials


def compute_parity_ablation():
    rows = []
    for ways in WAYS:
        rows.append(
            [
                ways,
                mttf_cppc_years(PAPER_TABLE2_L1, parity_ways=ways),
                100.0 * ways / 64,
                burst_detection_rate(ways, max_burst=ways),
                burst_detection_rate(ways, max_burst=8),
            ]
        )
    return rows


def test_parity_ways_ablation(benchmark):
    rows = benchmark(compute_parity_ablation)

    publish(
        "ablation_parity",
        format_table(
            ["parity bits", "L1 MTTF (years)", "storage %",
             "burst<=k detect", "burst<=8 detect"],
            rows,
            title="Ablation: interleaved parity bits per word (Section 3.4)",
        ),
    )

    mttfs = [r[1] for r in rows]
    assert mttfs == sorted(mttfs), "more parity bits must not hurt MTTF"
    assert mttfs[-1] / mttfs[0] > 7.5, "8 bits buy ~8x over 1 bit"
    # Any burst within the interleave width is detected, guaranteed.
    for _ways, _mttf, _storage, within, _wide in rows:
        assert within == 1.0
    # Only 8-way interleaving catches every burst up to 8 bits.
    wide_rates = [r[4] for r in rows]
    assert wide_rates[-1] == 1.0
    assert wide_rates[0] < 1.0
    benchmark.extra_info.update(
        mttf_1_bit=mttfs[0], mttf_8_bits=mttfs[-1],
        one_bit_burst8_detection=wide_rates[0],
    )
