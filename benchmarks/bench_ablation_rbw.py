"""Ablation: read-before-write volume — the root cause of Figures 11/12.

CPPC reads old data only on stores to already-dirty words; 2-D parity
reads it on *every* store and reads a whole line on *every* miss.  This
bench counts both on the shared benchmark runs and shows the L1-vs-L2
asymmetry the paper's conclusion highlights (CPPC's relative RBW traffic
shrinks at L2).
"""

from repro.harness import format_table

from conftest import publish


def compute_rbw_table(runs):
    rows = []
    for run in runs:
        l1, l2 = run.l1, run.l2
        cppc_l1 = l1.stores_to_dirty_units
        twod_l1 = l1.stores + l1.misses
        cppc_l2 = l2.stores_to_dirty_units
        twod_l2 = l2.stores + l2.misses
        rows.append(
            [
                run.name,
                cppc_l1,
                twod_l1,
                cppc_l1 / max(1, l1.accesses),
                twod_l1 / max(1, l1.accesses),
                cppc_l2 / max(1, l2.accesses),
                twod_l2 / max(1, l2.accesses),
            ]
        )
    return rows


def test_rbw_ablation(benchmark, bench_runs):
    rows = benchmark(compute_rbw_table, bench_runs)

    publish(
        "ablation_rbw",
        format_table(
            ["benchmark", "CPPC L1 RBWs", "2D L1 RBWs",
             "CPPC L1 /acc", "2D L1 /acc", "CPPC L2 /acc", "2D L2 /acc"],
            rows,
            title="Ablation: read-before-write operations per scheme",
        ),
    )

    cppc_l1_rates = [r[3] for r in rows]
    twod_l1_rates = [r[4] for r in rows]
    cppc_l2_rates = [r[5] for r in rows]
    # 2-D parity always performs at least as many RBWs as CPPC.
    for cppc_rate, twod_rate in zip(cppc_l1_rates, twod_l1_rates):
        assert twod_rate >= cppc_rate
    # The paper's conclusion: fewer RBWs per access at L2 than at L1.
    avg_l1 = sum(cppc_l1_rates) / len(cppc_l1_rates)
    avg_l2 = sum(cppc_l2_rates) / len(cppc_l2_rates)
    assert avg_l2 < avg_l1
    benchmark.extra_info.update(
        cppc_l1_rbw_per_access=avg_l1,
        cppc_l2_rbw_per_access=avg_l2,
        twod_l1_rbw_per_access=sum(twod_l1_rates) / len(twod_l1_rates),
    )
