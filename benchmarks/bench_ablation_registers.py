"""Ablation: scaling register pairs (paper Sections 3.4, 4.6, 4.7, 4.11).

One knob, four effects, all reproduced here: more pairs (1) raise the
temporal-MBE MTTF linearly, (2) shrink the aliasing hazard to zero, (3)
cost register/shifter area, and (4) at eight pairs make byte shifting
unnecessary while still correcting full 8x8 strikes.
"""

import math
import random

from repro.cppc import CppcProtection
from repro.errors import UncorrectableError
from repro.faults import FaultInjector
from repro.harness import PAPER_TABLE2_L1, format_table
from repro.memsim import Cache, MainMemory
from repro.reliability import mttf_aliasing_years, mttf_cppc_years

from conftest import publish

PAIR_COUNTS = (1, 2, 4, 8)


def eight_by_eight_outcomes(num_pairs, byte_shifting=True, trials=10):
    """Fraction of random 8x8 strikes corrected."""
    corrected = 0
    for trial in range(trials):
        memory = MainMemory(block_bytes=32)
        cache = Cache(
            "L1D", 4096, 2, 32, unit_bytes=8,
            protection=CppcProtection(
                data_bits=64, num_pairs=num_pairs, byte_shifting=byte_shifting
            ),
            next_level=memory,
        )
        rng = random.Random(trial)
        for addr in range(0, 4096, 8):
            cache.store(addr, rng.getrandbits(64).to_bytes(8, "big"))
        record = FaultInjector(cache, seed=trial).random_spatial(8, 8)
        try:
            cache.load(cache.address_of(record.flips[0].loc), 8)
            corrected += 1
        except UncorrectableError:
            pass
    return corrected / trials


def compute_register_ablation():
    rows = []
    for pairs in PAIR_COUNTS:
        rows.append(
            [
                pairs,
                mttf_cppc_years(PAPER_TABLE2_L1, num_pairs=pairs),
                mttf_aliasing_years(PAPER_TABLE2_L1, num_pairs=pairs),
                2 * pairs * 64,  # register storage bits
                eight_by_eight_outcomes(pairs),
            ]
        )
    return rows


def test_register_pair_ablation(benchmark):
    rows = benchmark(compute_register_ablation)

    table = format_table(
        ["pairs", "L1 MTTF (years)", "aliasing MTTF (years)",
         "register bits", "8x8 corrected frac"],
        rows,
        title="Ablation: register pairs (Sections 3.4/4.6/4.7/4.11)",
    )
    no_shift = eight_by_eight_outcomes(8, byte_shifting=False)
    table += (
        f"\n\n8 pairs WITHOUT byte shifting (Section 4.11): "
        f"8x8 corrected fraction = {no_shift:.2f}"
    )
    publish("ablation_registers", table)

    mttfs = [r[1] for r in rows]
    aliasing = [r[2] for r in rows]
    coverage = [r[4] for r in rows]
    # MTTF scales linearly with pairs (domains shrink proportionally).
    assert mttfs == sorted(mttfs)
    assert mttfs[-1] / mttfs[0] > 7.5
    # Aliasing hazard shrinks monotonically and is eliminated at 8 pairs.
    assert aliasing == sorted(aliasing)
    assert aliasing[-1] == math.inf
    # 8x8 strikes: ambiguous with one pair, correctable from two pairs on.
    assert coverage[0] == 0.0
    assert all(c == 1.0 for c in coverage[1:])
    # Section 4.11: the all-register variant needs no shifting at all.
    assert no_shift == 1.0
    benchmark.extra_info.update(
        mttf_1_pair=mttfs[0], mttf_8_pairs=mttfs[-1],
        coverage_no_shifting=no_shift,
    )
