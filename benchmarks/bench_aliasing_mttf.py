"""Paper Section 4.7: mean time to mistake a temporal fault pair for a
spatial strike (the miscorrection/SDC hazard of byte shifting).

Paper: ~4.19e20 years for the L2 configuration with one register pair —
five orders of magnitude beyond the temporal-2-bit DUE MTTF, hence
negligible.  Also reproduces the mitigation table: 7/3/1/0 vulnerable bits
for 1/2/4/8 register pairs.
"""

import math

from repro.harness import PAPER_TABLE2_L2, format_table
from repro.reliability import (
    aliasing_vulnerable_bits,
    estimate_double_fault_failure_fast,
    mttf_aliasing_years,
    mttf_cppc_years,
)

from conftest import publish

PAPER_ALIASING_L2_YEARS = 4.19e20


def compute_aliasing_table():
    rows = []
    for pairs in (1, 2, 4, 8):
        rows.append(
            [
                pairs,
                aliasing_vulnerable_bits(8, pairs),
                mttf_aliasing_years(PAPER_TABLE2_L2, num_pairs=pairs),
            ]
        )
    return rows


def test_aliasing_mttf(benchmark):
    rows = benchmark(compute_aliasing_table)

    publish(
        "aliasing_mttf",
        format_table(
            ["register pairs", "vulnerable bits", "L2 aliasing MTTF (years)"],
            rows,
            title="Section 4.7: aliasing (temporal-as-spatial) hazard",
        ),
    )

    one_pair_mttf = rows[0][2]
    benchmark.extra_info.update(
        one_pair_years=one_pair_mttf, paper_years=PAPER_ALIASING_L2_YEARS
    )

    assert PAPER_ALIASING_L2_YEARS / 3 <= one_pair_mttf <= (
        PAPER_ALIASING_L2_YEARS * 3
    )
    # "5 orders of magnitude larger than DUEs due to temporal 2-bit faults".
    due_mttf = mttf_cppc_years(PAPER_TABLE2_L2)
    assert one_pair_mttf > 1e3 * due_mttf
    # Vulnerable-bit progression 7/3/1/0 and the hazard vanishing at 8 pairs.
    assert [r[1] for r in rows] == [7, 3, 1, 0]
    assert rows[-1][2] == math.inf


def test_aliasing_sdc_montecarlo(benchmark):
    """Empirical twin of the Section 4.7 mitigation table.

    The analytic table says more register pairs shrink the aliasing
    window until it closes at eight pairs; the vectorized Monte-Carlo
    engine observes the same shape directly as the silent-miscorrection
    rate of sampled double faults: non-increasing in the pair count,
    present at one pair, and *exactly* zero at eight (with pair ==
    rotation class, a same-way spatial mimic would need two distinct
    rows congruent mod 8 within rotation range — geometrically
    impossible).
    """
    samples = 100_000

    def measure():
        return [
            estimate_double_fault_failure_fast(
                samples=samples, num_pairs=pairs, seed=0
            ).sdc_rate
            for pairs in (1, 2, 4, 8)
        ]

    sdc_rates = benchmark(measure)
    publish(
        "aliasing_sdc_mc",
        format_table(
            ["register pairs", "measured SDC rate"],
            [[p, r] for p, r in zip((1, 2, 4, 8), sdc_rates)],
            title=f"Empirical aliasing SDC rate (n={samples})",
            precision=6,
        ),
    )
    benchmark.extra_info["sdc_rates"] = sdc_rates

    assert sdc_rates[0] > 0, "one pair must show a nonzero aliasing rate"
    assert all(a >= b for a, b in zip(sdc_rates, sdc_rates[1:]))
    assert sdc_rates[-1] == 0.0
