"""Paper Section 5.1: area overheads of the protection schemes.

CPPC adds error correction to a parity cache for two registers and two
barrel shifters — a negligible increment over parity's 12.5% check
storage — while SECDED needs wider check storage plus encode/decode logic
and 2-D parity needs the extra vertical row.
"""

from repro.energy import scheme_area
from repro.harness import format_table
from repro.memsim import PAPER_CONFIG

from conftest import publish

SCHEMES = ("parity", "cppc", "secded", "2d-parity")


def compute_area_table():
    rows = []
    for level, geometry in (("L1", PAPER_CONFIG.l1d), ("L2", PAPER_CONFIG.l2)):
        data_bits = geometry.size_bytes * 8
        for scheme in SCHEMES:
            report = scheme_area(scheme, geometry)
            rows.append(
                [
                    level,
                    scheme,
                    report.check_storage_bits,
                    report.register_bits,
                    report.logic_bit_equivalents,
                    100.0 * report.overhead_vs_data(data_bits),
                ]
            )
    return rows


def test_area_overheads(benchmark):
    rows = benchmark(compute_area_table)

    publish(
        "area_overheads",
        format_table(
            ["level", "scheme", "check bits", "register bits",
             "logic (bit eq)", "overhead %"],
            rows,
            title="Section 5.1: area overhead vs raw data array",
        ),
    )

    overheads = {(r[0], r[1]): r[5] for r in rows}
    for level in ("L1", "L2"):
        parity = overheads[(level, "parity")]
        cppc = overheads[(level, "cppc")]
        secded = overheads[(level, "secded")]
        benchmark.extra_info[f"{level}_cppc_minus_parity_pct"] = cppc - parity
        # Parity's 12.5% baseline (8 check bits per 64-bit word at L1,
        # 8 per 256-bit block at L2 is 3.1%).
        assert parity <= 12.5 + 1e-9
        # CPPC adds under 0.1% on top of parity (Section 5.1's point).
        assert cppc - parity < 0.1
        # SECDED costs more than CPPC at equal correction ambitions.
        assert secded > cppc
