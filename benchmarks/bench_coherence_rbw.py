"""Paper Section 7 (future work): CPPC in multiprocessors.

"In invalidate protocols, since many dirty blocks may be invalidated, the
number of read-before-write operations might decrease which might lead to
better efficiency in multiprocessor CPPCs."

This bench runs the same store stream through one-core and multi-core
write-invalidate systems (private CPPC L1s over a shared L2) and measures
L1 read-before-writes per store plus the coherence traffic.  The paper's
hypothesis must hold: sharing reduces per-store RBW work.
"""

import random

from repro.cppc import CppcProtection
from repro.harness import format_table
from repro.memsim import CoherentSystem, small_coherent_config

from conftest import publish

STREAM_LENGTH = 4000
SHARED_WORDS = 192


def _stream(seed):
    rng = random.Random(seed)
    return [
        (rng.randrange(SHARED_WORDS) * 8, rng.getrandbits(64).to_bytes(8, "big"),
         rng.random())
        for _ in range(STREAM_LENGTH)
    ]


def _cppc_factory(core, level, unit_bits):
    return CppcProtection(data_bits=unit_bits)


def run_sharing_sweep():
    rows = []
    stream = _stream(17)
    for cores in (1, 2, 4):
        system = CoherentSystem(
            cores, small_coherent_config(), protection_factory=_cppc_factory
        )
        stores = 0
        for i, (addr, value, p) in enumerate(stream):
            core = i % cores
            if p < 0.7:
                system.store(core, addr, value)
                stores += 1
            else:
                system.load(core, addr)
        rbw = system.total_read_before_writes()
        rows.append(
            [
                cores,
                rbw,
                rbw / stores,
                system.bus.invalidations,
                system.bus.dirty_invalidations,
                system.bus.downgrades,
            ]
        )
    return rows


def test_coherence_rbw(benchmark):
    rows = benchmark(run_sharing_sweep)

    publish(
        "coherence_rbw",
        format_table(
            ["cores", "L1 RBWs", "RBW/store", "invalidations",
             "dirty invalidations", "downgrades"],
            rows,
            title="Section 7: read-before-writes under write-invalidate sharing",
        ),
    )

    per_store = [r[2] for r in rows]
    benchmark.extra_info.update(
        rbw_per_store_1_core=per_store[0],
        rbw_per_store_4_cores=per_store[-1],
    )

    # The future-work hypothesis: more sharing -> fewer RBWs per store.
    assert per_store == sorted(per_store, reverse=True)
    assert per_store[-1] < per_store[0]
    # Sharing actually happened.
    assert rows[1][4] > 0 and rows[2][4] > 0
