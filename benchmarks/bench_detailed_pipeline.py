"""Figure 10 cross-validation: cycle-stepped OoO pipeline vs fast model.

The default Figure 10 bench uses the fast analytical port model; this one
re-times a subset of benchmarks on the cycle-stepped pipeline (RUU/LSQ,
speculative load scheduling with replays, per-cycle port arbitration) and
checks both models tell the same story: CPPC's CPI overhead is far below
1%, 2-D parity costs more, and the orderings agree per benchmark.
"""

from repro.harness import format_table
from repro.timing import simulate_detailed_cpi, time_events, timing_policy

from conftest import publish

SUBSET = ("gzip", "mcf", "eon", "vortex", "swim")
SCHEMES = ("parity", "cppc", "2d-parity")


def run_cross_validation(runs):
    rows = []
    for run in runs:
        if run.name not in SUBSET:
            continue
        detailed = {}
        fast = {}
        for scheme in SCHEMES:
            detailed[scheme] = simulate_detailed_cpi(
                run.events, timing_policy(scheme),
                units_per_block=run.units_per_block,
            ).cpi
            fast[scheme] = time_events(
                run.events, timing_policy(scheme),
                units_per_block=run.units_per_block,
            ).cpi
        rows.append(
            [
                run.name,
                detailed["cppc"] / detailed["parity"],
                detailed["2d-parity"] / detailed["parity"],
                fast["cppc"] / fast["parity"],
                fast["2d-parity"] / fast["parity"],
            ]
        )
    return rows


def test_detailed_pipeline_cross_validation(benchmark, bench_runs):
    rows = benchmark(run_cross_validation, bench_runs)

    publish(
        "detailed_pipeline",
        format_table(
            ["benchmark", "cppc (detailed)", "2d (detailed)",
             "cppc (fast)", "2d (fast)"],
            rows,
            title="Figure 10 cross-validation: detailed vs fast timing",
            precision=4,
        ),
    )

    for name, cppc_d, twod_d, cppc_f, twod_f in rows:
        # Same story from both models.
        assert cppc_d <= twod_d + 1e-9, f"{name}: detailed ordering broken"
        assert cppc_f <= twod_f + 1e-9, f"{name}: fast ordering broken"
        # Paper band is <= 1%; allow up to 3% per benchmark because the
        # synthetic eon profile is denser in dirty stores than real eon
        # and the detailed model is the more pessimistic of the two.
        assert cppc_d - 1.0 < 0.04, f"{name}: detailed CPPC overhead too big"
        assert twod_d >= 1.0 - 1e-9

    avg_cppc = sum(r[1] for r in rows) / len(rows) - 1.0
    avg_twod = sum(r[2] for r in rows) / len(rows) - 1.0
    benchmark.extra_info.update(
        detailed_cppc_avg_overhead=avg_cppc,
        detailed_twod_avg_overhead=avg_twod,
    )
    assert avg_cppc < 0.015, "average CPPC overhead must stay tiny"
    assert avg_cppc < avg_twod
