"""Paper Figure 10: CPI of CPPC and 2-D parity L1 caches, normalised to a
one-dimensional-parity L1, over the fifteen benchmarks.

Paper numbers: CPPC averages +0.3% (at most +1%); two-dimensional parity
averages +1.7% (up to +6.9%).  The reproduction must preserve the shape:
CPPC's overhead is tiny and always at most 2-D parity's.
"""

from repro.harness import figure10

from conftest import publish


def test_figure10_cpi(benchmark, bench_runs):
    result = benchmark(figure10, bench_runs)

    publish("figure10_cpi", result.to_text())

    cppc_avg = result.average_overhead("cppc")
    cppc_max = result.max_overhead("cppc")
    twod_avg = result.average_overhead("2d-parity")
    twod_max = result.max_overhead("2d-parity")
    benchmark.extra_info.update(
        cppc_avg_overhead=cppc_avg,
        cppc_max_overhead=cppc_max,
        twod_avg_overhead=twod_avg,
        twod_max_overhead=twod_max,
        paper_cppc_avg=0.003,
        paper_twod_avg=0.017,
    )

    # Shape assertions (who wins, and by what order of magnitude).
    assert cppc_avg < 0.01, "CPPC CPI overhead must stay under 1% on average"
    assert cppc_max < 0.025, "CPPC CPI overhead must stay small everywhere"
    assert twod_avg >= cppc_avg, "2-D parity must cost at least CPPC"
    assert twod_max > cppc_max, "2-D parity's worst case exceeds CPPC's"
    for bench in result.per_benchmark:
        assert result.normalized("cppc", bench) >= 1.0 - 1e-9
        assert (
            result.normalized("2d-parity", bench)
            >= result.normalized("cppc", bench) - 1e-9
        )
