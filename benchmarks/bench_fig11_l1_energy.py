"""Paper Figure 11: dynamic energy of L1 caches normalised to 1-D parity.

Paper averages: CPPC 1.14, SECDED (8-way interleaved) 1.42, 2-D parity
1.70.  Shape to preserve: parity < CPPC < SECDED < 2-D parity, with CPPC's
overhead driven by stores to dirty words, SECDED's by interleaved
bitlines, and 2-D parity's by per-store and per-miss read-before-writes.
"""

from repro.harness import figure11

from conftest import publish


def test_figure11_l1_energy(benchmark, bench_runs):
    result = benchmark(figure11, bench_runs)

    publish("figure11_l1_energy", result.to_text())

    averages = {
        scheme: result.average(scheme)
        for scheme in ("cppc", "secded", "2d-parity")
    }
    benchmark.extra_info.update(
        **{f"avg_{k.replace('-', '_')}": v for k, v in averages.items()},
        paper_cppc=1.14, paper_secded=1.42, paper_twod=1.70,
    )

    assert 1.0 < averages["cppc"] < 1.35, "CPPC should cost ~14% over parity"
    assert abs(averages["secded"] - 1.42) < 0.06, (
        "interleaved SECDED's L1 overhead is a bitline effect near +42%"
    )
    assert averages["2d-parity"] > averages["secded"] > averages["cppc"]
    for bench, row in result.per_benchmark.items():
        assert row["parity"] == 1.0
        assert row["cppc"] > 1.0, f"{bench}: CPPC must cost more than parity"
