"""Paper Figure 12: dynamic energy of L2 caches normalised to 1-D parity.

Paper averages: CPPC 1.07, SECDED 1.68, 2-D parity 1.75, with mcf the
2-D outlier (≈80% L2 miss rate makes its per-miss line reads explode).
Shape to preserve: CPPC is *cheaper relative to parity at L2 than at L1*
(fewer read-before-writes per access — the paper's headline claim), and
mcf is the worst 2-D-parity benchmark.
"""

from repro.harness import figure11, figure12

from conftest import publish


def test_figure12_l2_energy(benchmark, bench_runs):
    result = benchmark(figure12, bench_runs)

    publish("figure12_l2_energy", result.to_text())

    averages = {
        scheme: result.average(scheme)
        for scheme in ("cppc", "secded", "2d-parity")
    }
    benchmark.extra_info.update(
        **{f"avg_{k.replace('-', '_')}": v for k, v in averages.items()},
        paper_cppc=1.07, paper_secded=1.68, paper_twod=1.75,
    )

    assert 1.0 < averages["cppc"] < 1.20, "L2 CPPC is a ~7% overhead scheme"
    assert abs(averages["secded"] - 1.68) < 0.08
    assert averages["2d-parity"] > averages["cppc"]

    # The headline: CPPC relatively cheaper at L2 than at L1.
    l1 = figure11(bench_runs)
    assert averages["cppc"] < l1.average("cppc")

    # mcf is a 2-D parity outlier: among the worst 2-D/CPPC ratios, and
    # costing well over 1.5x CPPC (the paper's "several times" at SimPoint
    # scale; the gap narrows at short trace lengths).
    ratios = {
        b: row["2d-parity"] / row["cppc"]
        for b, row in result.per_benchmark.items()
    }
    worst_three = sorted(ratios, key=ratios.get, reverse=True)[:3]
    assert "mcf" in worst_three, f"mcf not among 2-D outliers: {ratios}"
    assert ratios["mcf"] > 1.5
