"""Paper Section 7 (future work): "We expect an L3 CPPC to be even more
energy efficient ... we believe the number of read-before-write operations
is smaller in L3 caches."

This bench runs the big-footprint profiles (the benchmarks the paper says
future work would use) through a three-level hierarchy and compares the
CPPC energy overhead per level: the normalised CPPC-vs-parity energy must
not grow down the hierarchy, and the L3 read-before-write rate per access
must undercut the L1 rate.
"""

from repro.energy import normalized_energies
from repro.harness import format_table
from repro.memsim import MemoryHierarchy, PAPER_CONFIG_WITH_L3
from repro.timing import collect_events
from repro.workloads import make_workload

from conftest import BENCH_REFERENCES, publish

#: Big-footprint profiles — the traffic that actually reaches an L3.
SUBSET = ("mcf", "swim", "art", "gcc", "equake")


def run_l3_study():
    refs = max(20_000, BENCH_REFERENCES // 4)
    rows = []
    for name in SUBSET:
        hierarchy = MemoryHierarchy(PAPER_CONFIG_WITH_L3)
        collect_events(make_workload(name).records(refs), hierarchy)
        config = hierarchy.config
        levels = [
            ("L1", hierarchy.l1d.stats, config.l1d),
            ("L2", hierarchy.l2.stats, config.l2),
            ("L3", hierarchy.l3.stats, config.l3),
        ]
        for level, stats, geometry in levels:
            if stats.accesses == 0:
                continue
            energies = normalized_energies(stats, geometry)
            rows.append(
                [
                    name,
                    level,
                    stats.accesses,
                    stats.stores_to_dirty_units / stats.accesses,
                    energies["cppc"],
                ]
            )
    return rows


def test_l3_cppc(benchmark):
    rows = benchmark.pedantic(run_l3_study, rounds=1, iterations=1)

    publish(
        "l3_cppc",
        format_table(
            ["benchmark", "level", "accesses", "RBW/access", "cppc energy"],
            rows,
            title="Section 7: CPPC down the hierarchy (L1 -> L2 -> L3)",
        ),
    )

    by_key = {(r[0], r[1]): r for r in rows}
    l3_cheaper = 0
    counted = 0
    for name in SUBSET:
        l1 = by_key.get((name, "L1"))
        l3 = by_key.get((name, "L3"))
        if not l1 or not l3:
            continue
        counted += 1
        # Section 7's expectation, per benchmark: lower RBW rate and lower
        # normalised CPPC energy at L3 than at L1.
        if l3[4] <= l1[4] + 1e-9:
            l3_cheaper += 1
        assert l3[3] <= l1[3] + 0.05, f"{name}: L3 RBW rate above L1's"
    assert counted >= 4, "L3 saw too little traffic to evaluate"
    assert l3_cheaper >= counted - 1, (
        "L3 CPPC must be at least as cheap as L1 CPPC almost everywhere"
    )
    benchmark.extra_info.update(
        l3_cheaper=l3_cheaper, benchmarks_counted=counted
    )
