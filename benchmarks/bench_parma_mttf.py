"""Table 3 refinement: distribution-aware (PARMA-style, ref [22]) MTTF.

The paper's Table 3 summarises each benchmark by its *mean* dirty-access
interval.  The two-fault failure probability is quadratic in the interval,
so heavy-tailed benchmarks are more vulnerable than their mean suggests.
This bench evaluates both models on the measured interval histograms and
reports the tail-amplification factor per benchmark.
"""

from repro.harness import format_table
from repro.reliability import (
    ReliabilityInputs,
    mttf_cppc_from_histogram,
    mttf_cppc_years,
    tail_amplification,
)

from conftest import publish


def run_parma_comparison(runs):
    rows = []
    for run in runs:
        stats = run.l1
        if not stats.dirty_interval_count:
            continue
        inputs = ReliabilityInputs(
            size_bits=32 * 1024 * 8,
            dirty_fraction=max(stats.dirty_fraction, 1e-6),
            tavg_cycles=max(stats.tavg_cycles, 1.0),
        )
        mean_model = mttf_cppc_years(inputs)
        histogram_model = mttf_cppc_from_histogram(inputs, stats)
        rows.append(
            [
                run.name,
                stats.tavg_cycles,
                tail_amplification(stats),
                mean_model,
                histogram_model,
                mean_model / histogram_model,
            ]
        )
    return rows


def test_parma_mttf(benchmark, bench_runs):
    rows = benchmark(run_parma_comparison, bench_runs)

    publish(
        "parma_mttf",
        format_table(
            ["benchmark", "Tavg", "tail amp", "mean-model MTTF",
             "histogram MTTF", "mean/hist"],
            rows,
            title="PARMA refinement: interval-distribution-aware CPPC MTTF",
        ),
    )

    assert rows, "need dirty-interval samples"
    for name, _tavg, amp, mean_model, hist_model, ratio in rows:
        # The tail can only hurt: the histogram model never exceeds the
        # mean model by more than bucketing error, and the gap equals the
        # amplification factor by construction.
        assert amp >= 1.0
        assert hist_model <= mean_model * 1.3, name
        assert ratio > 0.5, name
    amps = [r[2] for r in rows]
    benchmark.extra_info.update(
        max_tail_amplification=max(amps),
        min_tail_amplification=min(amps),
    )
    # Real workloads are not constant-interval: someone must have a tail.
    assert max(amps) > 2.0
