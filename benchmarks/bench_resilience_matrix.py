"""Empirical resilience matrix: the dynamic counterpart of Table 3.

Every scheme faces identical injected faults (single bits in dirty data,
4x4 spatial strikes); outcomes and derived FIT rates land in one matrix.
The paper's analytical claims must hold empirically: CPPC ends every
trial benign or corrected; parity trades SDC for DUE; an unprotected
cache leaks silent corruption; interleaved SECDED matches CPPC on these
fault models while costing more energy (see the figure benches).
"""

from repro.faults import Outcome
from repro.harness import resilience_matrix

from conftest import publish


def test_resilience_matrix(benchmark):
    matrix = benchmark.pedantic(
        resilience_matrix,
        kwargs=dict(trials=20, warmup_references=1500,
                    post_fault_references=1000),
        rounds=1,
        iterations=1,
    )

    publish("resilience_matrix", matrix.to_text())

    for fault in ("temporal", "spatial4x4"):
        assert matrix.rate("cppc", fault, Outcome.SDC) == 0.0
        assert matrix.rate("cppc", fault, Outcome.DUE) == 0.0
        assert matrix.rate("secded", fault, Outcome.SDC) == 0.0
    assert matrix.rate("none", "temporal", Outcome.SDC) > 0
    assert matrix.rate("parity", "temporal", Outcome.DUE) > 0
    assert matrix.rate("parity", "temporal", Outcome.SDC) == 0.0

    cppc_fit = matrix.fits[("cppc", "temporal")].total_fit
    parity_fit = matrix.fits[("parity", "temporal")].total_fit
    benchmark.extra_info.update(
        cppc_fit=cppc_fit, parity_fit=parity_fit,
        none_sdc_rate=matrix.rate("none", "temporal", Outcome.SDC),
    )
    assert cppc_fit == 0.0
    assert parity_fit > 0.0
