"""Related-work comparison: early write-back scrubbing vs CPPC.

The paper (Section 2) argues that early-write-back schemes [2, 15] buy
reliability for parity caches by shrinking dirty residency, but "their
energy consumption is high ... when the number of write-backs is large".
This bench quantifies the trade-off on one workload: scrub rate vs dirty
fraction (the parity MTTF lever) vs extra write-back traffic — against
CPPC, which keeps the dirty data *and* corrects it.
"""

from repro.harness import format_table
from repro.memsim import EarlyWritebackScrubber, MemoryHierarchy, PAPER_CONFIG
from repro.reliability import ReliabilityInputs, mttf_parity_years
from repro.workloads import make_workload

from conftest import publish

REFERENCES = 12_000
INTERVALS = (0, 2048, 256, 32)  # 0 = no scrubbing


def run_scrub_sweep():
    rows = []
    for interval in INTERVALS:
        hierarchy = MemoryHierarchy(PAPER_CONFIG)
        scrubber = (
            EarlyWritebackScrubber(
                hierarchy.l1d, interval_accesses=interval, lines_per_pass=8
            )
            if interval
            else None
        )
        cycle = 0
        for record in make_workload("gcc", seed=3).records(REFERENCES):
            cycle += record.instructions
            if record.value:
                hierarchy.store(record.addr, record.value, cycle=cycle)
            else:
                hierarchy.load(record.addr, record.size, cycle=cycle)
            if scrubber is not None:
                scrubber.tick()
        stats = hierarchy.l1d.stats
        dirty = max(stats.dirty_fraction, 1e-6)
        inputs = ReliabilityInputs(
            size_bits=PAPER_CONFIG.l1d.size_bytes * 8,
            dirty_fraction=dirty,
            tavg_cycles=max(stats.tavg_cycles, 1.0),
        )
        rows.append(
            [
                interval if interval else "off",
                dirty * 100,
                stats.writebacks,
                mttf_parity_years(inputs),
            ]
        )
    return rows


def test_scrub_tradeoff(benchmark):
    rows = benchmark(run_scrub_sweep)

    publish(
        "scrub_tradeoff",
        format_table(
            ["scrub interval", "L1 dirty %", "writebacks",
             "parity MTTF (years)"],
            rows,
            title="Related work: early write-back scrubbing trade-off",
        ),
    )

    dirty = [r[1] for r in rows]
    writebacks = [r[2] for r in rows]
    mttf = [r[3] for r in rows]
    benchmark.extra_info.update(
        dirty_no_scrub=dirty[0], dirty_heavy_scrub=dirty[-1],
        writebacks_no_scrub=writebacks[0], writebacks_heavy_scrub=writebacks[-1],
    )

    # More scrubbing -> less dirty residency -> better parity MTTF ...
    assert dirty == sorted(dirty, reverse=True)
    assert mttf == sorted(mttf)
    assert dirty[-1] < 0.6 * dirty[0]
    # ... at the cost the paper calls out: much more write-back traffic.
    assert writebacks[-1] > 2 * writebacks[0]
