"""Sensitivity sweeps around the paper's design point (Section 5.3).

Three sweeps: L1 capacity (miss rate vs dirty residency vs energy), raw
SEU rate (Table 3 orderings are rate-invariant) and SECDED's interleaving
degree (the paper's argument that interleaved SECDED scales badly exactly
when wider spatial coverage is needed, while CPPC's coverage doubles by
doubling parity bits at ~constant energy).
"""

from repro.harness import (
    bar_chart,
    sweep_interleaving,
    sweep_l1_size,
    sweep_seu_rate,
)

from conftest import publish


def run_all_sweeps():
    return {
        "l1_size": sweep_l1_size(n_references=8000),
        "seu_rate": sweep_seu_rate(),
        "interleaving": sweep_interleaving(),
    }


def test_sensitivity_sweeps(benchmark):
    sweeps = benchmark(run_all_sweeps)

    chart = bar_chart(
        "SECDED energy vs interleaving degree (normalised)",
        [str(d) for d in sweeps["interleaving"].column("interleave degree")],
        sweeps["interleaving"].column("vs degree 1"),
        baseline=1.0,
    )
    publish(
        "sensitivity",
        "\n\n".join(
            [
                sweeps["l1_size"].to_text(),
                sweeps["seu_rate"].to_text(),
                sweeps["interleaving"].to_text(),
                chart,
            ]
        ),
    )

    # L1 capacity: bigger caches miss less.
    miss = sweeps["l1_size"].column("miss rate")
    assert miss == sorted(miss, reverse=True)

    # SEU rate: orderings never flip.
    for row in sweeps["seu_rate"].rows:
        _fit, parity, cppc, secded = row
        assert parity < cppc < secded

    # Interleaving: monotone cost, +42% at the paper's degree 8, and
    # degree 16 (the coverage CPPC gets by one more parity bit doubling)
    # costs far more than CPPC's near-zero increment.
    ratios = sweeps["interleaving"].column("vs degree 1")
    assert ratios == sorted(ratios)
    by_degree = dict(
        zip(sweeps["interleaving"].column("interleave degree"), ratios)
    )
    assert abs(by_degree[8] - 1.42) < 0.05
    assert by_degree[16] > 1.8
    benchmark.extra_info.update(
        secded_x8=by_degree[8], secded_x16=by_degree[16]
    )
