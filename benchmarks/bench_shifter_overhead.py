"""Paper Section 4.8: the barrel shifter is off the critical path and its
energy is negligible.

Paper anchors: a 32-bit rotate costs <= 0.4 ns and ~1.5 pJ at 90nm [9];
CACTI puts an 8KB direct-mapped cache access at 0.78 ns and a 32KB 2-way
access at 240 pJ.  A CPPC shifter also needs only n/8*log2(n/8) muxes
instead of n*log2(n).
"""

from repro.cppc import BarrelShifterModel
from repro.energy import CacheEnergyModel
from repro.harness import format_table

from conftest import publish


def compute_shifter_comparison():
    rows = []
    for width in (32, 64, 256):
        model = BarrelShifterModel(width_bits=width)
        rows.append(
            [
                width,
                model.num_stages,
                model.num_muxes,
                model.general_shifter_muxes,
                model.delay_ns,
                model.energy_pj,
            ]
        )
    return rows


def test_shifter_overhead(benchmark):
    rows = benchmark(compute_shifter_comparison)

    cache_8kb = CacheEnergyModel(
        size_bytes=8 * 1024, ways=1, block_bytes=32, unit_bytes=8,
        check_bits_per_unit=0, tech_nm=90.0,
    )
    cache_32kb = CacheEnergyModel(
        size_bytes=32 * 1024, ways=2, block_bytes=32, unit_bytes=8,
        check_bits_per_unit=8, tech_nm=90.0,
    )
    table = format_table(
        ["width", "stages", "CPPC muxes", "general muxes", "delay ns", "energy pJ"],
        rows,
        title="Section 4.8: barrel shifter cost",
    )
    table += (
        f"\n\ncache access time (8KB direct-mapped, CACTI anchor): "
        f"{cache_8kb.access_time_ns:.2f} ns"
        f"\ncache access energy (32KB 2-way, CACTI anchor): "
        f"{cache_32kb.read_unit_pj:.0f} pJ"
    )
    publish("shifter_overhead", table)

    l1_shifter = BarrelShifterModel(width_bits=64)
    benchmark.extra_info.update(
        shifter_delay_ns=l1_shifter.delay_ns,
        cache_access_ns=cache_8kb.access_time_ns,
        shifter_energy_pj=l1_shifter.energy_pj,
        cache_access_pj=cache_32kb.read_unit_pj,
    )

    # The paper's two claims.
    assert l1_shifter.delay_ns < cache_8kb.access_time_ns, (
        "shifter must be off the critical path"
    )
    assert l1_shifter.energy_pj < 0.05 * cache_32kb.read_unit_pj, (
        "shifter energy must be negligible next to an array access"
    )
    # Structural saving: byte-granular rotate-left-only shifters are an
    # order of magnitude smaller than general shifters.
    for _w, _s, cppc_muxes, general_muxes, _d, _e in rows:
        assert cppc_muxes * 8 <= general_muxes
