"""Paper Section 7 (future work): single-ported caches.

"We will also evaluate single-ported caches and their impact on the
read-before-write operations."  This bench runs the detailed pipeline
over representative benchmarks with one shared array port versus the
default split read/write ports, for every scheme.

Findings to record (not paper numbers — this *is* the future work): the
single port slows every scheme absolutely, and the scheme-vs-parity
overhead ratios stay ordered (CPPC < 2-D parity) in both configurations.
"""

from repro.harness import format_table
from repro.timing import PipelineConfig, simulate_detailed_cpi, timing_policy

from conftest import publish

SUBSET = ("gzip", "eon", "vortex")
SCHEMES = ("parity", "cppc", "2d-parity")


def run_port_study(runs):
    rows = []
    for run in runs:
        if run.name not in SUBSET:
            continue
        for single in (False, True):
            cfg = PipelineConfig(single_port=single)
            cpis = {
                scheme: simulate_detailed_cpi(
                    run.events, timing_policy(scheme), cfg,
                    units_per_block=run.units_per_block,
                ).cpi
                for scheme in SCHEMES
            }
            rows.append(
                [
                    run.name,
                    "single" if single else "dual",
                    cpis["parity"],
                    cpis["cppc"] / cpis["parity"],
                    cpis["2d-parity"] / cpis["parity"],
                ]
            )
    return rows


def test_single_port_study(benchmark, bench_runs):
    rows = benchmark(run_port_study, bench_runs)

    publish(
        "single_port",
        format_table(
            ["benchmark", "ports", "parity CPI", "cppc norm", "2d norm"],
            rows,
            title="Section 7: single-ported vs dual-ported data arrays",
            precision=4,
        ),
    )

    by_key = {(r[0], r[1]): r for r in rows}
    for name in SUBSET:
        dual = by_key[(name, "dual")]
        single = by_key[(name, "single")]
        # The single port slows the baseline itself...
        assert single[2] > dual[2], f"{name}: single port must cost cycles"
        # ...and the scheme ordering survives in both configurations.
        for row in (dual, single):
            assert row[3] <= row[4] + 1e-9, f"{name}: ordering broken"
            assert row[3] >= 1.0 - 1e-9
    benchmark.extra_info.update(
        gzip_dual_parity_cpi=by_key[("gzip", "dual")][2],
        gzip_single_parity_cpi=by_key[("gzip", "single")][2],
    )
