"""Paper Section 4.6: spatial multi-bit error coverage, measured.

Sweeps strike shapes over a dirty CPPC cache and counts corrected / DUE /
SDC outcomes per shape.  The paper's claims to reproduce: every strike
inside an 8x8 square is corrected (never an SDC) except the special
ambiguous patterns, and those are eliminated by a second register pair.
"""

import random

from repro.cppc import CppcProtection
from repro.errors import UncorrectableError
from repro.faults import FaultInjector
from repro.harness import format_table
from repro.memsim import Cache, MainMemory

from conftest import publish

SHAPES = [(1, 2), (2, 2), (4, 4), (2, 8), (8, 2), (8, 8)]
TRIALS_PER_SHAPE = 30


def build_dirty_cache(num_pairs, seed):
    memory = MainMemory(block_bytes=32)
    cache = Cache(
        "L1D", 4096, 2, 32, unit_bytes=8,
        protection=CppcProtection(data_bits=64, num_pairs=num_pairs),
        next_level=memory,
    )
    rng = random.Random(seed)
    for addr in range(0, 4096, 8):
        cache.store(addr, rng.getrandbits(64).to_bytes(8, "big"))
    return cache


def run_coverage(num_pairs):
    results = []
    for height, width in SHAPES:
        corrected = due = sdc = benign = 0
        for trial in range(TRIALS_PER_SHAPE):
            cache = build_dirty_cache(num_pairs, trial)
            golden = {
                loc: value for loc, value, _d in cache.iter_units()
            }
            injector = FaultInjector(cache, seed=(num_pairs, trial))
            record = injector.random_spatial(height=height, width=width)
            if not record.flips:
                benign += 1
                continue
            probe = cache.address_of(record.flips[0].loc)
            try:
                cache.load(probe, 8)
            except UncorrectableError:
                due += 1
                continue
            clean = all(
                cache.peek_unit(loc)[0] == value
                for loc, value in golden.items()
            )
            if clean:
                corrected += 1
            else:
                sdc += 1
        results.append([f"{height}x{width}", corrected, due, sdc, benign])
    return results


def test_spatial_coverage(benchmark):
    one_pair = benchmark(run_coverage, 1)
    two_pairs = run_coverage(2)

    table = format_table(
        ["shape", "corrected", "DUE", "SDC", "benign"],
        one_pair,
        title="Spatial coverage, one register pair",
    )
    table += "\n\n" + format_table(
        ["shape", "corrected", "DUE", "SDC", "benign"],
        two_pairs,
        title="Spatial coverage, two register pairs",
    )
    publish("spatial_coverage", table)

    by_shape_1 = {row[0]: row for row in one_pair}
    by_shape_2 = {row[0]: row for row in two_pairs}
    for shape, row in by_shape_1.items():
        assert row[3] == 0, f"{shape}: spatial strikes must never yield SDCs"
    for shape, row in by_shape_2.items():
        assert row[3] == 0, f"{shape}: two pairs must never yield SDCs"
    # Strikes shorter than the rotation period are always correctable.
    for shape in ("1x2", "2x2", "4x4", "2x8"):
        assert by_shape_1[shape][2] == 0, f"{shape} must be fully correctable"
    # Full-period strikes (8 rows = all rotation classes) are rotationally
    # ambiguous with ONE pair — the Section 4.6 special cases — and become
    # correctable with TWO pairs.
    for shape in ("8x2", "8x8"):
        assert by_shape_1[shape][2] > 0, f"{shape} must DUE with one pair"
        assert by_shape_2[shape][2] == 0, f"{shape} must correct with 2 pairs"
        assert by_shape_2[shape][1] == TRIALS_PER_SHAPE
    benchmark.extra_info.update(
        one_pair_8x8_due=by_shape_1["8x8"][2],
        two_pairs_8x8_due=by_shape_2["8x8"][2],
    )
