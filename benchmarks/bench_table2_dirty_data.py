"""Paper Table 2: average dirty-data percentage and Tavg for L1 and L2.

Paper: 16% dirty / Tavg 1828 cycles at L1; 35% dirty / Tavg 378997 cycles
at L2.  The L2 numbers are strongly scale-dependent (the paper replays
100M-instruction SimPoints; dirty blocks accumulate in the 1MB L2 over the
whole run), so the reproduction asserts the scale-independent shape: L1
dirty residency in the tens of percent, L2 Tavg an order of magnitude
beyond L1's, and mcf/swim much less dirty at L1 than the high-locality
integer codes.
"""

from repro.harness import table2

from conftest import publish


def test_table2_dirty_data(benchmark, bench_runs):
    result = benchmark(table2, bench_runs)

    publish("table2_dirty_data", result.to_text())

    l1_dirty = result.average("l1_dirty_fraction")
    l2_dirty = result.average("l2_dirty_fraction")
    l1_tavg = result.average("l1_tavg_cycles")
    l2_tavg = result.average("l2_tavg_cycles")
    benchmark.extra_info.update(
        l1_dirty=l1_dirty, l2_dirty=l2_dirty,
        l1_tavg=l1_tavg, l2_tavg=l2_tavg,
        paper_l1_dirty=0.16, paper_l2_dirty=0.35,
        paper_l1_tavg=1828, paper_l2_tavg=378997,
    )

    assert 0.05 < l1_dirty < 0.45, "L1 dirty residency in the paper's band"
    assert 0.0 < l2_dirty < l1_dirty + 0.3
    assert 100 < l1_tavg < 10_000, "L1 Tavg within order of paper's 1828"
    assert l2_tavg > 3 * l1_tavg, "dirty L2 blocks are touched far less often"

    rows = result.per_benchmark
    assert rows["mcf"]["l1_dirty_fraction"] < rows["eon"]["l1_dirty_fraction"]
    assert rows["mcf"]["l2_dirty_fraction"] > rows["eon"]["l2_dirty_fraction"]
