"""Paper Table 3: MTTF against temporal multi-bit errors.

Evaluated exactly as the paper does — the analytical two-fault-per-domain
model fed with the paper's Table 2 inputs (0.001 FIT/bit, AVF 0.7, 3 GHz).
Paper values: 1-D parity 4490 y (L1) / 64 y (L2); CPPC 8.02e21 / 8.07e15;
SECDED 6.2e23 / 1.1e19.  The reproduction asserts every entry within 2x
and the ordering parity << CPPC < SECDED, and additionally reports the
variant driven by *this run's measured* Table 2 values.
"""

from repro.harness import table2, table3
from repro.reliability import (
    analytical_collision_probability,
    estimate_double_fault_failure_fast,
)
from repro.tools.run_experiment import table3mc_text

from conftest import publish

PAPER = {
    ("one-dimensional parity", "L1"): 4490.0,
    ("one-dimensional parity", "L2"): 64.0,
    ("cppc", "L1"): 8.02e21,
    ("cppc", "L2"): 8.07e15,
    ("secded", "L1"): 6.2e23,
    ("secded", "L2"): 1.1e19,
}


def test_table3_mttf(benchmark, bench_runs):
    result = benchmark(table3)

    measured_t2 = table2(bench_runs)
    measured = table3(
        l1_inputs=measured_t2.reliability_inputs("L1"),
        l2_inputs=measured_t2.reliability_inputs("L2"),
    )
    publish(
        "table3_mttf",
        result.to_text()
        + "\n\n(with this run's measured Table 2 inputs)\n"
        + measured.to_text(),
    )

    for (scheme, level), paper_value in PAPER.items():
        ours = result.mttf_years[scheme][level]
        benchmark.extra_info[f"{scheme}_{level}"] = ours
        assert paper_value / 2 <= ours <= paper_value * 2, (
            f"{scheme} {level}: {ours:.3g} vs paper {paper_value:.3g}"
        )

    for level in ("L1", "L2"):
        parity = result.mttf_years["one-dimensional parity"][level]
        cppc = result.mttf_years["cppc"][level]
        secded = result.mttf_years["secded"][level]
        assert parity < cppc < secded
        assert cppc / parity > 1e10


def test_table3_collision_montecarlo(benchmark):
    """Empirical backing for Table 3's structural 1/(p*w) claim.

    The analytic MTTF model assumes a double fault defeats CPPC exactly
    when both upsets share a protection domain; the vectorized engine
    measures that probability at field-study sample counts.  The
    per-geometry failure rate must sit within an absolute 0.01 of the
    analytic collision probability (deterministic seeds keep this
    stable), and the Wilson interval must cover or nearly touch it.
    """
    samples = 100_000

    def measure():
        return {
            pairs: estimate_double_fault_failure_fast(
                samples=samples, num_pairs=pairs, seed=0
            )
            for pairs in (1, 2, 4, 8)
        }

    estimates = benchmark(measure)
    publish("table3_collision_mc", table3mc_text(samples=samples, seed=0))

    for pairs, estimate in estimates.items():
        analytic = analytical_collision_probability(8, pairs)
        benchmark.extra_info[f"rate_p{pairs}"] = estimate.failure_rate
        assert abs(estimate.failure_rate - analytic) < 0.01, (
            f"pairs={pairs}: measured {estimate.failure_rate:.4f} vs "
            f"analytic {analytic:.4f}"
        )
        ci_low, ci_high = estimate.failure_rate_ci()
        assert ci_low <= analytic + 0.01 and ci_high >= analytic - 0.01
    # More pairs -> strictly lower measured failure rate, as the model
    # demands at these sample counts.
    rates = [estimates[p].failure_rate for p in (1, 2, 4, 8)]
    assert rates == sorted(rates, reverse=True)
