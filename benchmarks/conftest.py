"""Shared infrastructure for the paper-reproduction benchmarks.

Each bench file regenerates one table or figure of the paper's evaluation
(plus ablations).  The expensive part — replaying the fifteen synthetic
SPEC2000-like traces through the Table 1 hierarchy — happens once per
session in :func:`bench_runs`; the per-figure benches post-process those
shared runs, assert the paper's qualitative shape, print the paper-style
table, and archive it under ``benchmarks/results/``.

Scale with ``REPRO_BENCH_REFS`` (references per benchmark, default
60000; the paper used 100M-instruction SimPoints).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import run_all_benchmarks

#: References per benchmark trace; override with REPRO_BENCH_REFS.
BENCH_REFERENCES = int(os.environ.get("REPRO_BENCH_REFS", "60000"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_runs():
    """One shared simulation of all fifteen benchmarks."""
    return run_all_benchmarks(n_references=BENCH_REFERENCES)


def publish(name: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
