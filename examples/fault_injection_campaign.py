#!/usr/bin/env python3
"""Monte-Carlo fault injection: outcome distributions per scheme.

Injects random single-bit (and optionally spatial) faults into live
hierarchies running a workload, and classifies every trial as benign,
corrected, DUE or SDC.  This is the dynamic counterpart of the paper's
analytical reliability comparison: parity turns dirty faults into machine
checks, an unprotected cache silently corrupts data, and CPPC corrects.

Run:  python examples/fault_injection_campaign.py [trials]
"""

import sys

from repro.cppc import CppcProtection
from repro.faults import CampaignConfig, FaultCampaign, Outcome
from repro.memsim import NoProtection, ParityProtection, SecdedProtection


def factory_for(name):
    def factory(level, unit_bits):
        if name == "cppc":
            return CppcProtection(data_bits=unit_bits)
        if name == "parity":
            return ParityProtection(data_bits=unit_bits)
        if name == "secded":
            return SecdedProtection(data_bits=unit_bits)
        return NoProtection()
    return factory


def run_campaign(scheme, trials, fault_kind="temporal", shape=(4, 4)):
    config = CampaignConfig(
        scheme_factory=factory_for(scheme),
        benchmark="gcc",
        trials=trials,
        warmup_references=1500,
        post_fault_references=1000,
        fault_kind=fault_kind,
        spatial_shape=shape,
        dirty_only=(fault_kind == "temporal"),
        seed=7,
    )
    return FaultCampaign(config).run()


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 25

    print(f"=== fault-injection campaigns ({trials} trials each) ===\n")
    print("-- single-bit faults in dirty L1 data --")
    header = f"{'scheme':12s}" + "".join(f"{o.value:>11s}" for o in Outcome)
    print(header)
    for scheme in ("none", "parity", "secded", "cppc"):
        result = run_campaign(scheme, trials)
        counts = result.counts
        row = f"{scheme:12s}" + "".join(
            f"{counts[o]:11d}" for o in Outcome
        )
        print(row)

    print("\n-- 4x4 spatial strikes anywhere in the L1 array --")
    print(header)
    for scheme in ("secded", "cppc"):
        result = run_campaign(scheme, trials, fault_kind="spatial")
        counts = result.counts
        print(f"{scheme:12s}" + "".join(f"{counts[o]:11d}" for o in Outcome))

    print("\nReading the table: 'none' leaks SDCs, 'parity' converts dirty")
    print("faults to DUEs (halts), 'secded' and 'cppc' correct them; only")
    print("CPPC does so at parity-level cost (see the energy benches).")


if __name__ == "__main__":
    main()
