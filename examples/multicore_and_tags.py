#!/usr/bin/env python3
"""The paper's Section 7 future work, running: multiprocessor CPPC and
CPPC-protected tags.

Part 1 shares a store stream across 1/2/4 cores under write-invalidate
coherence and shows the read-before-write reduction the paper predicts.
Part 2 corrupts a cache *tag* and recovers it from the tag register pair
(tags are read-only until replaced, so no read-before-write is needed).

Run:  python examples/multicore_and_tags.py
"""

import random

from repro.cppc import CppcProtection, TagCppc
from repro.memsim import Cache, CoherentSystem, MainMemory, small_coherent_config


def cppc_factory(core, level, unit_bits):
    return CppcProtection(data_bits=unit_bits)


def multicore_demo() -> None:
    print("=== Part 1: write-invalidate sharing reduces RBW work ===")
    rng = random.Random(11)
    stream = [
        (rng.randrange(160) * 8, rng.getrandbits(64).to_bytes(8, "big"))
        for _ in range(3000)
    ]
    print(f"{'cores':>6s} {'RBWs':>7s} {'RBW/store':>10s} "
          f"{'dirty invalidations':>20s}")
    for cores in (1, 2, 4):
        system = CoherentSystem(
            cores, small_coherent_config(), protection_factory=cppc_factory
        )
        for i, (addr, value) in enumerate(stream):
            system.store(i % cores, addr, value)
        rbw = system.total_read_before_writes()
        print(f"{cores:6d} {rbw:7d} {rbw / len(stream):10.3f} "
              f"{system.bus.dirty_invalidations:20d}")
    print("Invalidations move dirty words into remote R2 registers before")
    print("their owner can store to them again — fewer read-before-writes,")
    print("as Section 7 anticipates.\n")


def tag_demo() -> None:
    print("=== Part 2: recovering a corrupted cache tag ===")
    cache = Cache(
        "L1D", 32 * 1024, 2, 32,
        next_level=MainMemory(32),
        protection=CppcProtection(data_bits=64),
        tag_protection=TagCppc(tag_bits=40, parity_ways=8),
    )
    cache.store(0xBEEF00, b"\x42" * 8)
    set_index = cache.mapper.set_index(0xBEEF00)
    way = next(w for w in range(cache.ways) if cache.line(set_index, w).valid)
    true_tag = cache.line(set_index, way).tag
    print(f"stored dirty data under tag {true_tag:#x}")

    cache.corrupt_tag(set_index, way, 0b1001)
    print(f"tag corrupted to {cache.line(set_index, way).tag:#x} — without "
          "protection this dirty line would be stranded")

    result = cache.load(0xBEEF00, 8)
    print(f"lookup hit: {result.hit}, data: {result.data.hex()}")
    print(f"tag restored to {cache.line(set_index, way).tag:#x} "
          f"(recoveries: {cache.tag_protection.recoveries})")


def main() -> None:
    multicore_demo()
    tag_demo()


if __name__ == "__main__":
    main()
