#!/usr/bin/env python3
"""Compare the four protection schemes on one workload: a miniature of
the paper's whole evaluation (CPI, energy, area, reliability).

Run:  python examples/protection_comparison.py [benchmark] [references]
"""

import sys

from repro.energy import area_comparison, normalized_energies
from repro.harness import figure10, run_benchmark, table2, table3
from repro.memsim import PAPER_CONFIG
from repro.reliability import (
    mttf_cppc_years,
    mttf_parity_years,
    mttf_secded_years,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    references = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    print(f"=== protection-scheme comparison on '{benchmark}' "
          f"({references} references) ===\n")
    run = run_benchmark(benchmark, n_references=references)
    print(f"L1 miss rate {run.l1.miss_rate:.1%}, "
          f"L2 miss rate {run.l2.miss_rate:.1%}, "
          f"stores to dirty words: {run.l1.stores_to_dirty_units}")

    print("\n-- CPI normalised to 1-D parity (paper Figure 10) --")
    fig10 = figure10([run])
    for scheme in ("cppc", "2d-parity"):
        print(f"{scheme:12s} {fig10.normalized(scheme, benchmark):.4f}")

    print("\n-- dynamic energy normalised to 1-D parity (Figures 11/12) --")
    l1_energy = normalized_energies(run.l1, PAPER_CONFIG.l1d)
    l2_energy = normalized_energies(run.l2, PAPER_CONFIG.l2)
    print(f"{'scheme':12s} {'L1':>8s} {'L2':>8s}")
    for scheme in ("parity", "cppc", "secded", "2d-parity"):
        print(f"{scheme:12s} {l1_energy[scheme]:8.3f} {l2_energy[scheme]:8.3f}")

    print("\n-- area overhead vs raw data array (Section 5.1) --")
    for scheme, overhead in area_comparison(PAPER_CONFIG.l1d).items():
        print(f"{scheme:12s} {overhead:.2%}")

    print("\n-- MTTF from this run's measured dirty data (Table 3 method) --")
    inputs = table2([run]).reliability_inputs("L1")
    print(f"measured L1 dirty fraction {inputs.dirty_fraction:.1%}, "
          f"Tavg {inputs.tavg_cycles:.0f} cycles")
    print(f"{'parity':12s} {mttf_parity_years(inputs):12.3g} years")
    print(f"{'cppc':12s} {mttf_cppc_years(inputs):12.3g} years")
    print(f"{'secded':12s} {mttf_secded_years(inputs, 64):12.3g} years")

    print("\n-- paper-input Table 3 for reference --")
    print(table3().to_text())


if __name__ == "__main__":
    main()
