#!/usr/bin/env python3
"""Quickstart: build the paper's CPPC hierarchy, take a hit, recover.

Builds the Table 1 system (32KB/2-way L1 CPPC over a 1MB/4-way L2 CPPC),
stores some data, flips a bit in a *dirty* word — the case plain parity
cannot survive — and shows CPPC detecting and repairing it on the next
load.

Run:  python examples/quickstart.py
"""

from repro import build_cppc_hierarchy

def main() -> None:
    hierarchy = build_cppc_hierarchy()
    l1 = hierarchy.l1d

    print("=== CPPC quickstart ===")
    print(f"L1: {l1.size_bytes // 1024}KB {l1.ways}-way, "
          f"{l1.block_bytes}B lines, scheme={l1.protection.name}")

    # 1. Store a value: the word becomes dirty, its rotated value enters R1.
    address = 0x1000
    hierarchy.store(address, b"\xDE\xAD\xBE\xEF\x00\x11\x22\x33")
    pair = l1.protection.registers.pairs[0]
    print(f"\nstored 8 bytes at {address:#x}")
    print(f"R1 = {pair.r1:#018x}   R2 = {pair.r2:#018x}")

    # 2. A particle strike flips the MSB of that dirty word.  Parity-only
    #    caches halt here (the data exists nowhere else).
    loc = l1.locate(address)
    l1.corrupt_data(loc, 1 << 63)
    corrupted, _check, dirty = l1.peek_unit(loc)
    print(f"\ninjected a single-bit fault (dirty={dirty})")
    print(f"stored word is now {corrupted:#018x}  (wrong!)")

    # 3. The next load checks parity, detects the fault, and recovery
    #    reconstructs the word from R1 ^ R2 ^ (all other dirty words).
    result = hierarchy.load(address, 8)
    print(f"\nload detected a fault: {result.detected_fault}")
    print(f"returned data: {result.data.hex()}  (correct again)")
    print(f"recoveries run by the L1 CPPC: {l1.protection.recoveries}")

    # 4. Statistics the evaluation is built on.
    snapshot = l1.stats.snapshot()
    print("\nL1 counters:", {k: v for k, v in snapshot.items() if v})


if __name__ == "__main__":
    main()
