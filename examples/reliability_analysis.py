#!/usr/bin/env python3
"""Analytical reliability exploration: Table 3 plus design-space sweeps.

Reproduces the paper's MTTF table from its own inputs, then sweeps the two
scaling knobs Section 3.4 describes — parity bits per word and register
pairs — and the Section 4.7 aliasing hazard.

Run:  python examples/reliability_analysis.py
"""

from repro.harness import PAPER_TABLE2_L1, PAPER_TABLE2_L2, table3
from repro.reliability import (
    aliasing_vulnerable_bits,
    mttf_aliasing_years,
    mttf_cppc_years,
)


def main() -> None:
    print("=== Table 3 with the paper's Table 2 inputs ===")
    print(table3().to_text())

    print("\n=== scaling correction capability (Section 3.4) ===")
    print(f"{'parity bits':>12s} {'pairs':>6s} {'L1 MTTF (years)':>18s} "
          f"{'L2 MTTF (years)':>18s}")
    for ways in (1, 2, 4, 8):
        for pairs in (1, 2, 4, 8):
            l1 = mttf_cppc_years(PAPER_TABLE2_L1, parity_ways=ways,
                                 num_pairs=pairs)
            l2 = mttf_cppc_years(PAPER_TABLE2_L2, parity_ways=ways,
                                 num_pairs=pairs)
            print(f"{ways:12d} {pairs:6d} {l1:18.3g} {l2:18.3g}")

    print("\n=== aliasing hazard vs register pairs (Section 4.7) ===")
    print(f"{'pairs':>6s} {'vulnerable bits':>16s} {'L2 aliasing MTTF':>20s}")
    for pairs in (1, 2, 4, 8):
        k = aliasing_vulnerable_bits(8, pairs)
        mttf = mttf_aliasing_years(PAPER_TABLE2_L2, num_pairs=pairs)
        print(f"{pairs:6d} {k:16d} {mttf:20.3g}")

    print("\nWith eight pairs the hazard disappears entirely (and byte")
    print("shifting becomes unnecessary — the Section 4.11 design point).")


if __name__ == "__main__":
    main()
