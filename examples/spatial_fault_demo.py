#!/usr/bin/env python3
"""Spatial multi-bit error demo: byte shifting and the fault locator.

Walks through paper Section 4: a vertical two-bit strike (Figure 4/5), a
4x8 square straddling a byte boundary (the Section 4.5 worked example's
shape), the uncorrectable full-period pattern, and how adding register
pairs (Section 4.6 / 4.11) restores correctability.

Run:  python examples/spatial_fault_demo.py
"""

import random

from repro import UncorrectableError, build_cppc_hierarchy
from repro.faults import FaultInjector, SpatialFault


def fresh_hierarchy(num_pairs=1, byte_shifting=True):
    h = build_cppc_hierarchy(num_pairs=num_pairs, byte_shifting=byte_shifting)
    rng = random.Random(2024)
    golden = {}
    # Dirty the first 16 physical rows of way 0 (set i, unit u).
    for row in range(16):
        addr = row * 8  # consecutive units of consecutive sets in way 0
        value = rng.getrandbits(64).to_bytes(8, "big")
        h.store(addr, value)
        golden[addr] = value
    return h, golden


def strike_and_report(h, golden, fault, label):
    injector = FaultInjector(h.l1d)
    record = injector.inject_spatial(fault)
    print(f"\n--- {label} ---")
    print(f"strike: rows {fault.top_row}..{fault.top_row + fault.height - 1}, "
          f"columns {fault.left_col}..{fault.left_col + fault.width - 1} "
          f"({record.total_bits} bits over {len(record.touched_units)} words)")
    probe = h.l1d.address_of(record.flips[0].loc)
    try:
        h.load(probe, 8)
    except UncorrectableError as exc:
        print(f"DUE (machine check): {exc}")
        return
    clean = all(
        h.l1d.peek_unit(h.l1d.locate(addr))[0].to_bytes(8, "big") == value
        for addr, value in golden.items()
        if h.l1d.locate(addr) is not None
    )
    report = h.l1d.protection.recovery_log[-1]
    print(f"recovered via {report.methods}; "
          f"{len(report.corrections)} words repaired; all data correct: {clean}")


def main() -> None:
    print("=== CPPC spatial multi-bit error demo ===")

    h, golden = fresh_hierarchy()
    strike_and_report(
        h, golden,
        SpatialFault(way=0, top_row=0, left_col=0, height=2, width=1),
        "vertical 2-bit strike (Figures 4/5)",
    )

    h, golden = fresh_hierarchy()
    strike_and_report(
        h, golden,
        SpatialFault(way=0, top_row=0, left_col=5, height=4, width=8),
        "4x8 square across the byte 0/1 boundary (Section 4.5 example)",
    )

    h, golden = fresh_hierarchy()
    strike_and_report(
        h, golden,
        SpatialFault(way=0, top_row=0, left_col=8, height=8, width=8),
        "full 8x8 square, ONE register pair (Section 4.6: uncorrectable)",
    )

    h, golden = fresh_hierarchy(num_pairs=2)
    strike_and_report(
        h, golden,
        SpatialFault(way=0, top_row=0, left_col=8, height=8, width=8),
        "full 8x8 square, TWO register pairs (Section 4.6: correctable)",
    )

    h, golden = fresh_hierarchy(num_pairs=8, byte_shifting=False)
    strike_and_report(
        h, golden,
        SpatialFault(way=0, top_row=0, left_col=8, height=8, width=8),
        "full 8x8 square, EIGHT pairs, no byte shifting (Section 4.11)",
    )


if __name__ == "__main__":
    main()
