"""Setup shim: enables `python setup.py develop` / legacy installs in
offline environments that lack the `wheel` package (all real metadata
lives in pyproject.toml)."""

from setuptools import setup

setup()
