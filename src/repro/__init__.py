"""CPPC: Correctable Parity Protected Cache — a full reproduction.

Reproduces Manoochehri, Annavaram and Dubois, *CPPC: Correctable Parity
Protected Cache*, ISCA 2011: a write-back cache that adds error
*correction* to cheap parity *detection* with two XOR registers, and
extends to spatial multi-bit errors with byte shifting and interleaved
parity.

Package map:

* :mod:`repro.coding` — parity, SECDED, 2-D parity codes
* :mod:`repro.memsim` — set-associative cache simulator and hierarchy
* :mod:`repro.cppc` — the CPPC mechanism (registers, shifting, recovery)
* :mod:`repro.faults` — fault models, injection, Monte-Carlo campaigns
* :mod:`repro.runtime` — crash-safe trial execution (workers, timeouts,
  retries, resumable checkpoints)
* :mod:`repro.energy` — CACTI-style energy/area models
* :mod:`repro.timing` — CPI model with cache-port contention
* :mod:`repro.reliability` — analytical MTTF models
* :mod:`repro.workloads` — synthetic SPEC2000-like trace generators
* :mod:`repro.harness` — one experiment runner per paper table/figure

Quick start::

    from repro import build_cppc_hierarchy
    hierarchy = build_cppc_hierarchy()
    hierarchy.store(0x1000, b"\\x12" * 8)
    value = hierarchy.load(0x1000, 8).data
"""

from __future__ import annotations

from .cppc import CppcProtection, l1_cppc, l2_cppc
from .errors import (
    AlignmentError,
    CampaignRuntimeError,
    CheckpointCorruptError,
    ConfigurationError,
    FaultLocatorError,
    ReproError,
    SimulationError,
    TraceFormatError,
    TrialCrashError,
    TrialTimeoutError,
    UncorrectableError,
)
from .memsim import (
    PAPER_CONFIG,
    Cache,
    HierarchyConfig,
    MemoryHierarchy,
    NoProtection,
    ParityProtection,
    SecdedProtection,
    TwoDParityProtection,
)

__version__ = "1.0.0"


def build_cppc_hierarchy(
    config: HierarchyConfig = PAPER_CONFIG,
    *,
    num_pairs: int = 1,
    byte_shifting: bool = True,
) -> MemoryHierarchy:
    """The paper's evaluated system: CPPC at both L1 and L2.

    Args:
        config: cache geometry (defaults to paper Table 1).
        num_pairs: (R1, R2) register pairs per cache.
        byte_shifting: enable the barrel-shifter rotation (Section 4.3).
    """

    def factory(level: str, unit_bits: int) -> CppcProtection:
        if level == "L1D":
            return l1_cppc(num_pairs=num_pairs, byte_shifting=byte_shifting)
        return l2_cppc(
            l1_block_bytes=config.l1d.block_bytes,
            num_pairs=num_pairs,
            byte_shifting=byte_shifting,
        )

    return MemoryHierarchy(config, protection_factory=factory)


__all__ = [
    "__version__",
    "build_cppc_hierarchy",
    "CppcProtection",
    "l1_cppc",
    "l2_cppc",
    "AlignmentError",
    "CampaignRuntimeError",
    "CheckpointCorruptError",
    "ConfigurationError",
    "FaultLocatorError",
    "ReproError",
    "SimulationError",
    "TraceFormatError",
    "TrialCrashError",
    "TrialTimeoutError",
    "UncorrectableError",
    "PAPER_CONFIG",
    "Cache",
    "HierarchyConfig",
    "MemoryHierarchy",
    "NoProtection",
    "ParityProtection",
    "SecdedProtection",
    "TwoDParityProtection",
]
