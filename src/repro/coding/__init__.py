"""Protection codes: parity, interleaved parity, SECDED, 2-D parity."""

from .base import DetectionOutcome, Inspection, WordCode
from .hamming import SecdedCode
from .interleave import BitInterleaving
from .parity import InterleavedParity, byte_parity_code, word_parity_code
from .twod import VerticalParity

__all__ = [
    "DetectionOutcome",
    "Inspection",
    "WordCode",
    "SecdedCode",
    "BitInterleaving",
    "InterleavedParity",
    "byte_parity_code",
    "word_parity_code",
    "VerticalParity",
]
