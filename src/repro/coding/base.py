"""Common interface for per-word protection codes.

A :class:`WordCode` protects a single data word of ``data_bits`` bits with
``check_bits`` redundant bits.  The cache simulator stores the check word
alongside each data word; fault injection flips bits of either without
updating the other, and a later read runs :meth:`inspect` to find out what
the code sees.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import Optional

from ..util import check_word


class DetectionOutcome(enum.Enum):
    """What a code inspection concluded about a (data, check) pair."""

    CLEAN = "clean"
    #: An error was detected; the code itself cannot repair it.
    DETECTED = "detected"
    #: An error was detected and repaired by the code (SECDED single-bit).
    CORRECTED = "corrected"
    #: An error was detected and flagged uncorrectable (SECDED double-bit).
    UNCORRECTABLE = "uncorrectable"


@dataclasses.dataclass(frozen=True)
class Inspection:
    """Result of checking one word against its stored check bits.

    Attributes:
        outcome: classification of what the code observed.
        syndrome: raw syndrome (code specific; 0 means clean).
        corrected_data: repaired data word when ``outcome`` is CORRECTED.
        faulty_parities: for parity codes, the indices of parity groups
            whose check failed (MSB-first bit-in-byte classes).
    """

    outcome: DetectionOutcome
    syndrome: int = 0
    corrected_data: Optional[int] = None
    faulty_parities: frozenset = frozenset()

    @property
    def detected(self) -> bool:
        """True when any error was observed."""
        return self.outcome is not DetectionOutcome.CLEAN


class WordCode(abc.ABC):
    """A protection code applied independently to each data word."""

    def __init__(self, data_bits: int, check_bits: int):
        self.data_bits = data_bits
        self.check_bits = check_bits

    @abc.abstractmethod
    def encode(self, data: int) -> int:
        """Compute the check word for ``data``."""

    @abc.abstractmethod
    def inspect(self, data: int, check: int) -> Inspection:
        """Check ``data`` against stored ``check`` bits."""

    def can_correct(self) -> bool:
        """Whether the code can repair any error on its own."""
        return False

    @property
    def overhead_bits_per_word(self) -> int:
        """Redundant bits added per data word."""
        return self.check_bits

    @property
    def relative_overhead(self) -> float:
        """Check bits as a fraction of data bits."""
        return self.check_bits / self.data_bits

    def _validate(self, data: int, check: int) -> None:
        check_word(data, self.data_bits)
        check_word(check, self.check_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(data_bits={self.data_bits}, "
            f"check_bits={self.check_bits})"
        )
