"""Hamming-based SECDED code (single error correct, double error detect).

For 64 data bits this is the classic (72, 64) code used by commercial
processors: 7 Hamming check bits plus one overall parity bit, a 12.5%
storage overhead (paper Section 1).  The implementation is the textbook
construction — check bits sit at power-of-two codeword positions; the
syndrome of a single-bit error equals the flipped position; the overall
parity bit disambiguates single (correctable) from double (detected but
uncorrectable) errors.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..util import check_word, parity
from .base import DetectionOutcome, Inspection, WordCode


def _hamming_check_count(data_bits: int) -> int:
    """Smallest r with 2**r >= data_bits + r + 1."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class SecdedCode(WordCode):
    """SECDED over ``data_bits`` data bits.

    The check word packs the ``r`` Hamming bits in its high-order bits
    (check bit for position mask ``2**i`` at MSB-first index ``i``) and the
    overall parity bit last.
    """

    def __init__(self, data_bits: int = 64):
        if data_bits < 1:
            raise ConfigurationError("SECDED needs at least one data bit")
        r = _hamming_check_count(data_bits)
        super().__init__(data_bits=data_bits, check_bits=r + 1)
        self._r = r
        # Codeword positions 1..n; powers of two are check positions,
        # everything else holds data bits in MSB-first order.
        self._data_positions: List[int] = []
        pos = 1
        while len(self._data_positions) < data_bits:
            if pos & (pos - 1):  # not a power of two
                self._data_positions.append(pos)
            pos += 1
        self._codeword_len = pos - 1
        self._position_of_data = {
            k: p for k, p in enumerate(self._data_positions)
        }
        self._data_of_position = {
            p: k for k, p in enumerate(self._data_positions)
        }

    @property
    def hamming_bits(self) -> int:
        """Number of Hamming check bits (excluding the overall parity)."""
        return self._r

    def _hamming_checks(self, data: int) -> List[int]:
        """Hamming check bit values for ``data`` (index i covers mask 2^i)."""
        checks = [0] * self._r
        for k in range(self.data_bits):
            bit = (data >> (self.data_bits - 1 - k)) & 1
            if not bit:
                continue
            pos = self._position_of_data[k]
            for i in range(self._r):
                if pos & (1 << i):
                    checks[i] ^= 1
        return checks

    def encode(self, data: int) -> int:
        check_word(data, self.data_bits)
        checks = self._hamming_checks(data)
        overall = parity(data)
        for c in checks:
            overall ^= c
        word = 0
        for i, c in enumerate(checks):
            word |= c << (self.check_bits - 1 - i)
        word |= overall  # last bit
        return word

    def _unpack_check(self, check: int) -> tuple:
        checks = [
            (check >> (self.check_bits - 1 - i)) & 1 for i in range(self._r)
        ]
        overall = check & 1
        return checks, overall

    def inspect(self, data: int, check: int) -> Inspection:
        self._validate(data, check)
        stored_checks, stored_overall = self._unpack_check(check)
        computed_checks = self._hamming_checks(data)
        syndrome = 0
        for i in range(self._r):
            if stored_checks[i] != computed_checks[i]:
                syndrome |= 1 << i
        overall_computed = parity(data)
        for c in stored_checks:
            overall_computed ^= c
        overall_mismatch = overall_computed != stored_overall

        if syndrome == 0 and not overall_mismatch:
            return Inspection(outcome=DetectionOutcome.CLEAN)

        if syndrome == 0 and overall_mismatch:
            # The overall parity bit itself flipped; data is intact.
            return Inspection(
                outcome=DetectionOutcome.CORRECTED,
                syndrome=0,
                corrected_data=data,
            )

        if overall_mismatch:
            # Single-bit error at codeword position ``syndrome``.
            if syndrome > self._codeword_len:
                return Inspection(
                    outcome=DetectionOutcome.UNCORRECTABLE, syndrome=syndrome
                )
            if syndrome in self._data_of_position:
                k = self._data_of_position[syndrome]
                repaired = data ^ (1 << (self.data_bits - 1 - k))
                return Inspection(
                    outcome=DetectionOutcome.CORRECTED,
                    syndrome=syndrome,
                    corrected_data=repaired,
                )
            # The error hit a check bit; data is intact.
            return Inspection(
                outcome=DetectionOutcome.CORRECTED,
                syndrome=syndrome,
                corrected_data=data,
            )

        # Non-zero syndrome with matching overall parity: double-bit error.
        return Inspection(
            outcome=DetectionOutcome.UNCORRECTABLE, syndrome=syndrome
        )

    def can_correct(self) -> bool:
        return True
