"""Physical bit interleaving (paper Sections 1 and 6).

With interleaving degree ``k``, the bits of ``k`` logical words are woven
into one physical row: physical column ``j`` holds bit ``j // k`` of
logical word ``j % k``.  A spatial burst of up to ``k`` adjacent physical
columns therefore flips at most one bit per logical word, letting a
per-word SECDED code correct it.

The cost is energy: every access to one logical word precharges the
bitlines of the whole physical row, multiplying bitline energy by ``k``
(paper Section 6.2, following [12]).  The energy model consumes
:attr:`BitInterleaving.bitline_energy_factor`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class BitInterleaving:
    """Descriptor of a physical bit-interleaving layout.

    Attributes:
        degree: number of logical words interleaved per physical row.
        word_bits: width of each logical word.
    """

    degree: int
    word_bits: int = 64

    def __post_init__(self):
        if self.degree < 1:
            raise ConfigurationError("interleaving degree must be >= 1")
        if self.word_bits < 1:
            raise ConfigurationError("word width must be >= 1")

    @property
    def row_bits(self) -> int:
        """Width of one physical row."""
        return self.degree * self.word_bits

    @property
    def bitline_energy_factor(self) -> int:
        """Multiplier on precharged bitlines per logical access."""
        return self.degree

    def physical_column(self, word_index: int, bit_index: int) -> int:
        """Physical column of MSB-first ``bit_index`` of ``word_index``."""
        if not 0 <= word_index < self.degree:
            raise ConfigurationError(
                f"word index {word_index} out of range for degree {self.degree}"
            )
        if not 0 <= bit_index < self.word_bits:
            raise ConfigurationError(
                f"bit index {bit_index} out of range for {self.word_bits} bits"
            )
        return bit_index * self.degree + word_index

    def logical_location(self, column: int) -> Tuple[int, int]:
        """Inverse of :meth:`physical_column`: ``(word_index, bit_index)``."""
        if not 0 <= column < self.row_bits:
            raise ConfigurationError(
                f"column {column} out of range for row of {self.row_bits} bits"
            )
        return column % self.degree, column // self.degree

    def burst_to_word_bits(self, start_column: int, length: int) -> Dict[int, List[int]]:
        """Map a burst of ``length`` adjacent columns to per-word bit flips.

        Returns ``{word_index: [bit_index, ...]}``.  With ``length <=
        degree`` every word receives at most one flipped bit — the property
        that makes interleaved SECDED tolerate spatial bursts.
        """
        if length < 1:
            raise ConfigurationError("burst length must be >= 1")
        hits: Dict[int, List[int]] = {}
        for column in range(start_column, min(start_column + length, self.row_bits)):
            word, bit = self.logical_location(column)
            hits.setdefault(word, []).append(bit)
        return hits

    def max_correctable_burst(self) -> int:
        """Longest spatial burst a per-word SECDED can always repair."""
        return self.degree
