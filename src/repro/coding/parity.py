"""One-dimensional and interleaved parity codes.

``InterleavedParity(ways=8)`` is the paper's 8-way interleaved parity:
``P[i] = XOR(data_bit[i], data_bit[i+8], ..., data_bit[i+56])`` (paper
Section 3.6), i.e. parity group ``i`` covers bit ``i`` of every byte when
bits are indexed MSB-first.  ``ways=1`` degenerates to one parity bit per
word — the classic one-dimensional parity cache.

Interleaved parity detects every spatial burst of up to ``ways`` adjacent
bits inside a word, because such a burst touches each parity group at most
once.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..errors import ConfigurationError
from ..util import get_bit, parity
from .base import DetectionOutcome, Inspection, WordCode


class InterleavedParity(WordCode):
    """k-way interleaved parity over a data word.

    Parity group ``i`` (0-based) covers the MSB-first bit indices
    ``{k : k mod ways == i}``.  The check word stores group 0's bit in its
    MSB-first bit 0, group 1 in bit 1, and so on.
    """

    def __init__(self, data_bits: int = 64, ways: int = 8):
        if ways < 1:
            raise ConfigurationError(f"parity ways must be >= 1, got {ways}")
        if data_bits % ways:
            raise ConfigurationError(
                f"data width {data_bits} must be a multiple of ways {ways}"
            )
        super().__init__(data_bits=data_bits, check_bits=ways)
        self.ways = ways
        # Precompute the mask of each parity group for fast encode.
        self._group_masks: List[int] = []
        for i in range(ways):
            m = 0
            for k in range(i, data_bits, ways):
                m |= 1 << (data_bits - 1 - k)
            self._group_masks.append(m)

    def encode(self, data: int) -> int:
        check = 0
        for i, group_mask in enumerate(self._group_masks):
            bit = parity(data & group_mask)
            check |= bit << (self.ways - 1 - i)
        return check

    def inspect(self, data: int, check: int) -> Inspection:
        self._validate(data, check)
        syndrome = self.encode(data) ^ check
        if syndrome == 0:
            return Inspection(outcome=DetectionOutcome.CLEAN)
        faulty = frozenset(
            i for i in range(self.ways) if get_bit(syndrome, i, self.ways)
        )
        return Inspection(
            outcome=DetectionOutcome.DETECTED,
            syndrome=syndrome,
            faulty_parities=faulty,
        )

    def group_of_bit(self, bit_index: int) -> int:
        """Parity group covering MSB-first data bit ``bit_index``."""
        if not 0 <= bit_index < self.data_bits:
            raise ConfigurationError(
                f"bit index {bit_index} out of range for {self.data_bits} bits"
            )
        return bit_index % self.ways

    def bits_of_group(self, group: int) -> FrozenSet[int]:
        """MSB-first data bit indices covered by parity group ``group``."""
        if not 0 <= group < self.ways:
            raise ConfigurationError(f"parity group {group} out of range")
        return frozenset(range(group, self.data_bits, self.ways))

    def group_mask(self, group: int) -> int:
        """Data-word mask of the bits covered by ``group``."""
        if not 0 <= group < self.ways:
            raise ConfigurationError(f"parity group {group} out of range")
        return self._group_masks[group]


def word_parity_code(data_bits: int = 64) -> InterleavedParity:
    """One parity bit for the entire word (1-D parity)."""
    return InterleavedParity(data_bits=data_bits, ways=1)


def byte_parity_code(data_bits: int = 64) -> InterleavedParity:
    """Eight-way interleaved parity (the paper's CPPC configuration)."""
    return InterleavedParity(data_bits=data_bits, ways=8)
