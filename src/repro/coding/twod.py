"""Two-dimensional parity (horizontal + vertical), paper Section 2 / [12].

Horizontal parity: k-way interleaved parity per row detects errors.
Vertical parity: a register holding the XOR of every data row in the
protected array corrects them — when the horizontal parity flags a row,
XORing the vertical register with all *other* rows reconstructs it.

Keeping the vertical register current requires a read-before-write on
**every** store (old data must be XORed out) and on **every** miss fill
(the whole replaced line must be read and XORed out, the new line XORed
in).  That per-access cost is the energy story of Figures 11 and 12.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError
from ..util import check_word, mask, xor_reduce


class VerticalParity:
    """XOR-of-all-rows register for a two-dimensional parity array.

    One instance protects one array of rows that are ``row_bits`` wide
    (the paper's evaluation uses a single vertical parity row for the
    whole cache).
    """

    def __init__(self, row_bits: int):
        if row_bits < 1:
            raise ConfigurationError("row width must be positive")
        self.row_bits = row_bits
        self._register = 0

    @property
    def value(self) -> int:
        """Current contents of the vertical parity register."""
        return self._register

    def clear(self) -> None:
        """Reset, as if the array were zero-filled."""
        self._register = 0

    def insert(self, row: int) -> None:
        """Account for a new row entering the array (e.g. a line fill)."""
        check_word(row, self.row_bits)
        self._register ^= row

    def remove(self, row: int) -> None:
        """Account for a row leaving the array (e.g. an eviction)."""
        check_word(row, self.row_bits)
        self._register ^= row

    def update(self, old_row: int, new_row: int) -> None:
        """Account for an in-place overwrite: the read-before-write path."""
        check_word(old_row, self.row_bits)
        check_word(new_row, self.row_bits)
        self._register ^= old_row ^ new_row

    def reconstruct(self, other_rows: Iterable[int]) -> int:
        """Rebuild the one faulty row from the register and all other rows."""
        return (self._register ^ xor_reduce(other_rows)) & mask(self.row_bits)

    def matches(self, rows: Iterable[int]) -> bool:
        """True when the register equals the XOR of ``rows`` (no fault)."""
        return self._register == xor_reduce(rows) & mask(self.row_bits)
