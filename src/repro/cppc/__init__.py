"""CPPC core: XOR register pairs, byte shifting, recovery and location."""

from .geometry import PhysicalGeometry
from .locator import FaultLocator, FaultyUnit
from .protection import CppcProtection, l1_cppc, l2_cppc
from .recovery import RecoveryReport, recover
from .registers import RegisterFile, RegisterPair
from .shifting import BarrelShifterModel, RotationScheme
from .tags import TagCppc

__all__ = [
    "PhysicalGeometry",
    "FaultLocator",
    "FaultyUnit",
    "CppcProtection",
    "l1_cppc",
    "l2_cppc",
    "RecoveryReport",
    "recover",
    "RegisterFile",
    "RegisterPair",
    "BarrelShifterModel",
    "RotationScheme",
    "TagCppc",
]
