"""Physical data-array geometry: cache locations <-> array rows.

Spatial multi-bit errors are defined over the *physical* layout: a particle
strike flips bits inside an N x N square of adjacent cells.  This module
fixes a concrete, simple layout:

* each way of the cache is a separate subarray (strikes never span ways);
* inside a way, protection units are stacked one per row, ordered by
  ``set_index * units_per_block + unit_index``;
* columns within a row are the MSB-first bit positions of the unit.

Rotation classes are assigned per row (``row mod num_classes``), matching
paper Figures 6/7 where eight consecutive rows form the eight classes.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List

from ..errors import ConfigurationError
from ..memsim.types import UnitLocation

if TYPE_CHECKING:  # pragma: no cover
    from ..memsim.cache import Cache


@dataclasses.dataclass(frozen=True)
class PhysicalGeometry:
    """Row/column layout of one cache's data arrays."""

    num_sets: int
    ways: int
    units_per_block: int
    unit_bits: int

    def __post_init__(self):
        if min(self.num_sets, self.ways, self.units_per_block, self.unit_bits) < 1:
            raise ConfigurationError("geometry dimensions must be positive")

    @classmethod
    def of_cache(cls, cache: "Cache") -> "PhysicalGeometry":
        """Geometry matching ``cache``'s shape."""
        return cls(
            num_sets=cache.num_sets,
            ways=cache.ways,
            units_per_block=cache.units_per_block,
            unit_bits=cache.unit_bytes * 8,
        )

    @property
    def rows_per_way(self) -> int:
        """Rows in one way's subarray."""
        return self.num_sets * self.units_per_block

    @property
    def total_rows(self) -> int:
        """Rows across all ways."""
        return self.rows_per_way * self.ways

    def row_of(self, loc: UnitLocation) -> int:
        """Physical row (within its way) of the unit at ``loc``."""
        if not 0 <= loc.set_index < self.num_sets:
            raise ConfigurationError(f"set index {loc.set_index} out of range")
        if not 0 <= loc.unit_index < self.units_per_block:
            raise ConfigurationError(f"unit index {loc.unit_index} out of range")
        return loc.set_index * self.units_per_block + loc.unit_index

    def loc_of(self, way: int, row: int) -> UnitLocation:
        """Inverse of :meth:`row_of` for a given way."""
        if not 0 <= way < self.ways:
            raise ConfigurationError(f"way {way} out of range")
        if not 0 <= row < self.rows_per_way:
            raise ConfigurationError(f"row {row} out of range")
        return UnitLocation(
            set_index=row // self.units_per_block,
            way=way,
            unit_index=row % self.units_per_block,
        )

    def rows_in_square(self, way: int, top_row: int, height: int) -> List[UnitLocation]:
        """Locations of the rows a ``height``-row strike touches."""
        rows = range(top_row, min(top_row + height, self.rows_per_way))
        return [self.loc_of(way, r) for r in rows]

    def row_distance(self, a: UnitLocation, b: UnitLocation) -> int:
        """Vertical distance in rows; ways are distinct subarrays.

        Returns a large sentinel (``rows_per_way``) for cross-way pairs so
        callers treating "distance > coverage" as non-spatial do the right
        thing.
        """
        if a.way != b.way:
            return self.rows_per_way
        return abs(self.row_of(a) - self.row_of(b))
