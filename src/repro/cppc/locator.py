"""The CPPC fault locator (paper Section 4.5).

When several dirty words fail parity checks that *share* parity groups,
recovery cannot separate their error patterns directly; CPPC assumes the
event is one spatial multi-bit strike and locates the flipped bits from
three pieces of information:

1. which parity groups each faulty word flagged,
2. the rotation classes of the faulty words, and
3. the register residue ``R3 = R1 ^ R2 ^ XOR(rotated dirty words)``,
   which equals the XOR of the *rotated error patterns*.

A strike contained in an ``N x N`` square hits, within each word, either a
single byte ``b`` or two adjacent bytes ``(b, b+1)`` — the same pair for
every affected row.  The locator enumerates those alignment hypotheses and
runs the paper's iterative peeling for each: repeatedly find a register
byte fed by exactly one unresolved (word, byte) pair, read that word's
error byte straight out of R3, infer its other byte from the still
unexplained parity groups, XOR the word's rotated pattern out of R3 and
continue.  A hypothesis survives only if it explains every flagged parity
group and zeroes R3 exactly.

If no hypothesis survives, or more than one *distinct* error-pattern
assignment survives (e.g. the full ``8x8`` strike, or faults in rows
exactly ``num_classes/2`` apart — the two uncorrectable cases of Section
4.6), the fault is a DUE and :class:`~repro.errors.FaultLocatorError` is
raised.  Note the aliasing hazard of Section 4.7 is faithfully present:
*temporal* faults arranged like a spatial strike resolve to a single
consistent — but wrong — solution and get miscorrected, exactly as the
paper warns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, FaultLocatorError
from ..memsim.types import UnitLocation
from ..util import get_byte
from .shifting import RotationScheme

#: Bits per parity group inside one byte — the locator requires the
#: paper's configuration of one parity bit per byte (8-way interleaving),
#: where parity group ``i`` is bit ``i`` of every byte.
PARITY_WAYS = 8


@dataclasses.dataclass(frozen=True)
class FaultyUnit:
    """One dirty unit whose parity check failed.

    Attributes:
        loc: cache location of the unit.
        rotation_class: its byte-shifting class.
        row: its physical row (within its way).
        stored_value: the (corrupted) value read from the array.
        faulty_parities: indices of the parity groups that flagged.
    """

    loc: UnitLocation
    rotation_class: int
    row: int
    stored_value: int
    faulty_parities: FrozenSet[int]


def _byte_of_groups(groups: FrozenSet[int]) -> int:
    """Byte with bit ``i`` set for every parity group ``i`` in ``groups``."""
    out = 0
    for g in groups:
        out |= 1 << (PARITY_WAYS - 1 - g)
    return out


def _groups_of_byte(byte: int) -> FrozenSet[int]:
    """Inverse of :func:`_byte_of_groups`."""
    return frozenset(
        g for g in range(PARITY_WAYS) if byte & (1 << (PARITY_WAYS - 1 - g))
    )


def _place_byte(byte: int, index: int, nbytes: int) -> int:
    """Value with ``byte`` at MSB-first byte ``index`` and zeros elsewhere."""
    return byte << (8 * (nbytes - 1 - index))


class FaultLocator:
    """Locates spatial multi-bit error patterns from parity + R3 evidence."""

    def __init__(self, rotation: RotationScheme):
        if rotation.unit_bytes * 8 % PARITY_WAYS:
            raise ConfigurationError(
                "locator requires byte-aligned units (8-way parity groups)"
            )
        self.rotation = rotation
        self.nbytes = rotation.unit_bytes

    # ------------------------------------------------------------------
    def locate(
        self, faulty_units: Sequence[FaultyUnit], r3: int
    ) -> Dict[UnitLocation, int]:
        """Return ``{location: error_xor_mask}`` for every faulty unit.

        Raises :class:`FaultLocatorError` when the evidence is ambiguous or
        inconsistent (a DUE in hardware).
        """
        if not faulty_units:
            raise FaultLocatorError("locator invoked with no faulty units")
        if r3 == 0:
            raise FaultLocatorError("locator invoked with a zero residue")
        classes = [u.rotation_class for u in faulty_units]
        if len(set(classes)) != len(classes):
            raise FaultLocatorError(
                "faulty words share a rotation class with overlapping "
                "parity groups; patterns are inseparable"
            )
        for u in faulty_units:
            if not u.faulty_parities:
                raise FaultLocatorError(f"faulty unit {u.loc} flags no parity group")

        single_bytes, pairs = self._alignment_hypotheses(faulty_units, r3)
        # Paper step 3 precedence: a common single byte is tried first;
        # adjacent byte pairs are consulted only when no single-byte
        # alignment explains the evidence.
        for hypothesis_set in (single_bytes, pairs):
            solutions: List[Dict[UnitLocation, int]] = []
            for allowed_bytes in hypothesis_set:
                solution = self._try_hypothesis(faulty_units, r3, allowed_bytes)
                if solution is not None and solution not in solutions:
                    solutions.append(solution)
            if len(solutions) == 1:
                return solutions[0]
            if len(solutions) > 1:
                raise FaultLocatorError(
                    f"{len(solutions)} distinct fault locations are "
                    "consistent with the evidence (e.g. a full-coverage "
                    "strike or rows half a rotation period apart)"
                )
        raise FaultLocatorError(
            "no byte alignment explains the parity flags and R3 residue"
        )

    # ------------------------------------------------------------------
    def _alignment_hypotheses(
        self, faulty_units: Sequence[FaultyUnit], r3: int
    ) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]]]:
        """Candidate fault columns: single bytes and adjacent byte pairs.

        This is steps 1-3 of the paper's procedure: derive each word's
        candidate source bytes from the non-zero R3 bytes, then keep the
        single bytes common to all words (tried first) and the adjacent
        pairs touching every word's candidate set (the fallback).
        """
        nonzero_r3 = [
            r for r in range(self.nbytes) if get_byte(r3, r, self.nbytes)
        ]
        candidate_sets = []
        for u in faulty_units:
            candidates = {
                self.rotation.src_byte(r, u.rotation_class) for r in nonzero_r3
            }
            candidate_sets.append(candidates)
        common = set.intersection(*candidate_sets)
        single_bytes: List[Tuple[int, ...]] = [(b,) for b in sorted(common)]
        pairs: List[Tuple[int, ...]] = []
        for b in range(self.nbytes - 1):
            pair = {b, b + 1}
            if all(s & pair for s in candidate_sets):
                pairs.append((b, b + 1))
        return single_bytes, pairs

    # ------------------------------------------------------------------
    def _try_hypothesis(
        self,
        faulty_units: Sequence[FaultyUnit],
        r3: int,
        allowed_bytes: Tuple[int, ...],
    ) -> Optional[Dict[UnitLocation, int]]:
        """Run the iterative peeling (paper step 4) under one alignment.

        Returns the per-unit error masks, or None when the hypothesis is
        inconsistent.
        """
        remaining_r3 = r3
        unresolved = list(faulty_units)
        deltas: Dict[UnitLocation, int] = {}

        while unresolved:
            picked = self._find_singleton(unresolved, remaining_r3, allowed_bytes)
            if picked is None:
                return None
            unit, src = picked
            dest = self.rotation.dest_byte(src, unit.rotation_class)
            pattern = get_byte(remaining_r3, dest, self.nbytes)
            groups_here = _groups_of_byte(pattern)
            if not groups_here or not groups_here <= unit.faulty_parities:
                return None
            remaining_groups = unit.faulty_parities - groups_here
            delta = _place_byte(pattern, src, self.nbytes)
            if remaining_groups:
                other = [b for b in allowed_bytes if b != src]
                if not other:
                    return None
                delta |= _place_byte(
                    _byte_of_groups(remaining_groups), other[0], self.nbytes
                )
            deltas[unit.loc] = delta
            remaining_r3 ^= self.rotation.rotate_in(delta, unit.rotation_class)
            unresolved.remove(unit)

        if remaining_r3 != 0:
            return None
        return deltas

    def _find_singleton(
        self,
        unresolved: Sequence[FaultyUnit],
        remaining_r3: int,
        allowed_bytes: Tuple[int, ...],
    ) -> Optional[Tuple[FaultyUnit, int]]:
        """Find a non-zero R3 byte fed by exactly one (unit, source byte)."""
        for dest in range(self.nbytes):
            if not get_byte(remaining_r3, dest, self.nbytes):
                continue
            feeders = [
                (u, src)
                for u in unresolved
                for src in allowed_bytes
                if self.rotation.dest_byte(src, u.rotation_class) == dest
            ]
            if len(feeders) == 1:
                return feeders[0]
        return None
