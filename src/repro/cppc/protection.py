"""CPPC as a cache protection scheme — the paper's contribution.

``CppcProtection`` plugs into :class:`repro.memsim.Cache` and implements
the full design:

* interleaved parity per unit for detection (8 parity bits per word in the
  paper's L1, 8 per block in its L2),
* one or more (R1, R2) XOR register pairs tracking dirty data
  (Sections 3.1, 3.4, 4.11),
* byte shifting through the barrel-shifter rotation classes (Section 4.3),
* clean faults converted to misses and re-fetched (Section 3.2),
* dirty faults repaired by the recovery procedure + fault locator
  (Sections 4.4-4.5).

Factory helpers :func:`l1_cppc` and :func:`l2_cppc` return the exact
configurations evaluated in the paper's Section 6.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence

from ..coding import Inspection, InterleavedParity
from ..errors import ConfigurationError, UncorrectableError
from ..memsim.cache import Cache
from ..memsim.protection import CodedProtection, FaultResolution, Resolution
from ..memsim.types import UnitLocation
from ..obs.trail import DEFAULT_TRAIL_MAXLEN, RecoveryAuditTrail, audit_payload
from .geometry import PhysicalGeometry
from .recovery import RecoveryReport, recover
from .registers import RegisterFile
from .shifting import RotationScheme


class CppcProtection(CodedProtection):
    """Correctable Parity Protected Cache protection scheme.

    Args:
        data_bits: protection unit width (64 for an L1 word; the L1 block
            size in bits for an L2, per Section 3.5).
        parity_ways: interleaved parity bits per unit (8 in the paper; the
            locator requires 8).
        num_pairs: (R1, R2) register pairs — 1, 2, 4 or 8 (Sections
            4.6/4.11).
        byte_shifting: rotate values by their row's class before XORing
            into the registers.  Disable only with ``num_pairs == 8``
            (Section 4.11's all-registers variant) or when spatial faults
            are out of scope.
        num_classes: rotation classes / spatial row coverage (8 = the
            paper's 8x8 squares).
        audit_maxlen: recovery reports/audits retained in memory; the
            ``recoveries`` counter stays exact regardless, and an
            attached trace sink streams every audit to disk.
    """

    name = "cppc"

    def __init__(
        self,
        data_bits: int = 64,
        *,
        parity_ways: int = 8,
        num_pairs: int = 1,
        byte_shifting: bool = True,
        num_classes: int = 8,
        code: Optional[InterleavedParity] = None,
        audit_maxlen: int = DEFAULT_TRAIL_MAXLEN,
    ):
        super().__init__(
            code or InterleavedParity(data_bits=data_bits, ways=parity_ways)
        )
        if byte_shifting and self.code.ways != 8:
            raise ConfigurationError(
                "byte shifting requires 8-way interleaved parity "
                f"(one bit per byte), got {self.code.ways}-way"
            )
        self.rotation = RotationScheme(
            unit_bytes=self.code.data_bits // 8,
            num_classes=num_classes,
            enabled=byte_shifting,
        )
        self.registers = RegisterFile(
            width_bits=self.code.data_bits,
            num_pairs=num_pairs,
            num_classes=num_classes,
        )
        self.geometry: Optional[PhysicalGeometry] = None
        #: Completed recovery passes (each may repair several units).
        self.recoveries = 0
        #: The newest ``audit_maxlen`` recovery reports.  Bounded here —
        #: not by callers — so unattended campaigns hold O(1) memory no
        #: matter how many faults they inject.
        self.recovery_log: Deque[RecoveryReport] = deque(maxlen=audit_maxlen)
        #: JSON-safe audit record per recovery, same retention bound.
        self.audit_trail = RecoveryAuditTrail(maxlen=audit_maxlen)
        #: Registers rebuilt after their own parity failed (Section 4.9).
        self.register_repairs = 0

    # ------------------------------------------------------------------
    def attach(self, cache: Cache) -> None:
        super().attach(cache)
        self.geometry = PhysicalGeometry.of_cache(cache)

    def set_observer(self, sink) -> None:
        super().set_observer(sink)
        # The trail streams each audit record out as it is captured, so
        # the bounded deque never loses history when a sink is attached.
        self.audit_trail.sink = sink

    def class_of(self, loc: UnitLocation) -> int:
        """Rotation class of the unit at ``loc``."""
        return self.rotation.class_of_row(self.geometry.row_of(loc))

    def verify_on_store(self, was_dirty: bool, partial: bool = False) -> bool:
        # Stores to already-dirty units read the old data (read-before-
        # write into R2); partial stores to clean units read it to build
        # the full word entering R1.  Both reads check parity, so a latent
        # clean fault is re-fetched before it could be recorded in R1 as
        # if it were the true value.
        return was_dirty or partial

    # ------------------------------------------------------------------
    # Register maintenance
    # ------------------------------------------------------------------
    def on_unit_write(
        self, loc: UnitLocation, old: int, new: int, was_dirty: bool
    ) -> None:
        cls = self.class_of(loc)
        pair = self.registers.pair_of_class(cls)
        if was_dirty:
            # Read-before-write: the displaced dirty value enters R2.
            pair.on_dirty_removed(self.rotation.rotate_in(old, cls))
            self.cache.stats.read_before_writes += 1
        pair.on_written(self.rotation.rotate_in(new, cls))
        if self._obs_on:
            self._obs.emit(
                "cppc.registers",
                "update",
                {
                    "loc": list(loc),
                    "class": cls,
                    "pair": self.registers.pair_index_of_class(cls),
                    "r1": True,
                    "r2": was_dirty,
                },
            )

    def on_evict(
        self,
        set_index: int,
        way: int,
        values: Sequence[int],
        dirty_flags: Sequence[bool],
    ) -> None:
        # Write-back: every dirty unit of the victim enters R2 (done from
        # the victim buffer in hardware, off the critical path).
        for unit_index, (value, dirty) in enumerate(zip(values, dirty_flags)):
            if not dirty:
                continue
            loc = UnitLocation(set_index, way, unit_index)
            cls = self.class_of(loc)
            self.registers.pair_of_class(cls).on_dirty_removed(
                self.rotation.rotate_in(value, cls)
            )
            if self._obs_on:
                self._obs.emit(
                    "cppc.registers",
                    "update",
                    {
                        "loc": list(loc),
                        "class": cls,
                        "pair": self.registers.pair_index_of_class(cls),
                        "r1": False,
                        "r2": True,
                    },
                )

    def on_cleaned(
        self,
        set_index: int,
        way: int,
        values: Sequence[int],
        dirty_flags: Sequence[bool],
    ) -> None:
        # A dirty unit leaving the *dirty population* (write-through
        # propagation, early write-back, coherence downgrade) is exactly a
        # dirty removal: its value moves into R2.
        self.on_evict(set_index, way, values, dirty_flags)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def handle_fault(
        self,
        loc: UnitLocation,
        value: int,
        check: int,
        inspection: Inspection,
        dirty: bool,
    ) -> FaultResolution:
        if not dirty:
            # Clean data: convert to a miss and re-fetch (Section 3.2).
            return FaultResolution(kind=Resolution.REFETCH)
        report: RecoveryReport = recover(self, loc)
        self.recoveries += 1
        self.recovery_log.append(report)
        self.audit_trail.record(audit_payload(report, self))
        return FaultResolution(
            kind=Resolution.CORRECTED, value=report.corrected_value(loc)
        )

    # ------------------------------------------------------------------
    # Register self-protection (paper Section 4.9)
    # ------------------------------------------------------------------
    def verify_registers(self) -> None:
        """Check every register's parity; repair any that fail.

        Called at the start of recovery — the point where the registers
        are read.  A faulty register is rebuilt from its partner plus the
        XOR of the cache's dirty words, which requires those words to be
        fault-free (otherwise: machine check), exactly the caveat the
        paper states.
        """
        for pair_index, pair in enumerate(self.registers.pairs):
            if not pair.r1_intact():
                self.repair_register(pair_index, "r1")
            if not pair.r2_intact():
                self.repair_register(pair_index, "r2")

    def repair_register(self, pair_index: int, which: str) -> None:
        """Rebuild one register from the cache (Section 4.9).

        ``XOR(dirty words) == R1 ^ R2``, so the broken register equals
        that XOR combined with its intact partner.
        """
        if which not in ("r1", "r2"):
            raise ConfigurationError(f"register must be 'r1' or 'r2', not {which}")
        pair = self.registers.pairs[pair_index]
        dirty_xor = 0
        for loc, value, dirty in self.cache.iter_units():
            if not dirty:
                continue
            cls = self.class_of(loc)
            if self.registers.pair_index_of_class(cls) != pair_index:
                continue
            check = self.cache.line(loc.set_index, loc.way).check[loc.unit_index]
            if self.inspect(value, check).detected:
                raise UncorrectableError(
                    "cppc: cannot rebuild a faulty register while dirty "
                    f"word {loc} is itself faulty (Section 4.9 caveat)",
                    detail=loc,
                )
            dirty_xor ^= self.rotation.rotate_in(value, cls)
        if which == "r1":
            pair.r1 = dirty_xor ^ pair.r2
            pair.r1_parity = bin(pair.r1).count("1") & 1
        else:
            pair.r2 = dirty_xor ^ pair.r1
            pair.r2_parity = bin(pair.r2).count("1") & 1
        self.register_repairs += 1
        if self._obs_on:
            self._obs.emit(
                "cppc.registers",
                "repair",
                {"pair": pair_index, "register": which},
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def dirty_xor_expected(self, pair_index: int) -> int:
        """XOR of rotated dirty values the pair *should* hold (testing)."""
        acc = 0
        for loc, value, dirty in self.cache.iter_units():
            if not dirty:
                continue
            cls = self.class_of(loc)
            if self.registers.pair_index_of_class(cls) == pair_index:
                acc ^= self.rotation.rotate_in(value, cls)
        return acc

    @property
    def storage_overhead_bits(self) -> int:
        """Check bits across the array plus register storage."""
        array_bits = self.cache.total_units * self.code.check_bits
        return array_bits + self.registers.storage_bits


def l1_cppc(
    *, num_pairs: int = 1, byte_shifting: bool = True, parity_ways: int = 8
) -> CppcProtection:
    """The paper's L1 CPPC: 64-bit words, 8 parity bits, byte shifting."""
    return CppcProtection(
        data_bits=64,
        parity_ways=parity_ways,
        num_pairs=num_pairs,
        byte_shifting=byte_shifting,
    )


def l2_cppc(
    l1_block_bytes: int = 32,
    *,
    num_pairs: int = 1,
    byte_shifting: bool = True,
    parity_ways: int = 8,
) -> CppcProtection:
    """The paper's L2 CPPC: units and registers sized to an L1 block."""
    return CppcProtection(
        data_bits=l1_block_bytes * 8,
        parity_ways=parity_ways,
        num_pairs=num_pairs,
        byte_shifting=byte_shifting,
    )
