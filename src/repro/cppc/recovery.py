"""CPPC dirty-data error recovery (paper Sections 3.2 and 4.4).

Entry point: :func:`recover`, invoked by the CPPC protection scheme when a
parity check fails on a *dirty* unit.  The procedure follows the paper:

1. Scan every dirty unit in the cache, checking parity, to find all
   concurrently faulty dirty units (step 1 / step 3 of Section 4.4).
2. Per register pair, compute the residue
   ``R3 = R1 ^ R2 ^ XOR(rotated dirty values)`` — the XOR of the rotated
   error patterns of the faulty units in that pair's domain.
3. Resolve each pair's faults:

   * exactly one faulty unit  → its error is ``rotate_out(R3)`` (steps
     1-2 of Section 4.4);
   * several faulty units with pairwise-disjoint faulty parity groups →
     each unit's error is ``rotate_out(R3)`` masked to its own groups
     (step 4: byte rotation never moves a bit out of its parity group, so
     disjoint groups cannot mix);
   * shared parity groups → a presumed spatial strike: check the rows lie
     in one way within the rotation period (step 5), then run the fault
     locator (step 6).

4. Every corrected value must pass its parity check; any inconsistency or
   ambiguity raises :class:`~repro.errors.UncorrectableError` (step 7's
   machine-check DUE).

Recovery repairs *all* faulty units it finds, not just the one whose
access triggered it, and returns the corrected value of the triggering
unit to the cache.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..errors import FaultLocatorError, SimulationError, UncorrectableError
from ..memsim.types import UnitLocation
from ..util import xor_reduce
from .locator import FaultLocator, FaultyUnit

if TYPE_CHECKING:  # pragma: no cover
    from .protection import CppcProtection


@dataclasses.dataclass
class PairAudit:
    """One register pair's slice of a recovery pass.

    Captures everything :func:`repro.obs.verify_audit` needs to re-derive
    the pair's corrections offline: the register contents as read, the
    residue ``R3``, the resolution method and the faulty units with their
    parity syndromes.
    """

    pair_index: int
    r1: int
    r2: int
    residue: int
    method: str
    faulty: List[FaultyUnit] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class RecoveryReport:
    """What one recovery pass found and fixed (for tests and logging)."""

    trigger: UnitLocation
    faulty_units: List[UnitLocation] = dataclasses.field(default_factory=list)
    corrections: Dict[UnitLocation, Tuple[int, int]] = dataclasses.field(
        default_factory=dict
    )
    methods: List[str] = dataclasses.field(default_factory=list)
    #: Units the recovery walk inspected (the whole valid cache: the
    #: dominant cost of the Section 4.4 procedure).
    units_scanned: int = 0
    #: Per-pair audit slices, in resolution order.
    pair_audits: List[PairAudit] = dataclasses.field(default_factory=list)
    #: Registers rebuilt (Section 4.9) before this pass could read them.
    register_repairs: int = 0

    def corrected_value(self, loc: UnitLocation) -> int:
        """The repaired value recovery produced for ``loc``."""
        return self.corrections[loc][1]

    def estimated_cycles(self, per_unit_cycles: int = 4) -> int:
        """Rough cost of this recovery in cycles.

        The paper (Sections 3.2, 5) argues recovery cost is irrelevant
        because the event is extremely rare — whether implemented by a
        micro-engine or a Reliability-Aware Exception handler [7].  The
        estimate charges a read + XOR + bookkeeping per scanned unit.
        """
        return self.units_scanned * per_unit_cycles


def recover(scheme: "CppcProtection", trigger: UnitLocation) -> RecoveryReport:
    """Run full CPPC recovery; see module docstring."""
    cache = scheme.cache
    if cache is None:
        raise SimulationError("CPPC recovery invoked before attach()")
    obs = scheme._obs if scheme._obs_on else None
    # The registers are about to be read: check their own parity first
    # and rebuild any that took a hit (paper Section 4.9).
    repairs_before = scheme.register_repairs
    scheme.verify_registers()
    report = RecoveryReport(trigger=trigger)
    report.register_repairs = scheme.register_repairs - repairs_before

    # Step 1/3: scan all dirty units, grouping by register pair and
    # collecting the ones whose parity check fails.
    dirty_by_pair: Dict[int, List[Tuple[UnitLocation, int, int]]] = {}
    faulty_by_pair: Dict[int, List[FaultyUnit]] = {}
    for loc, value, dirty in cache.iter_units():
        report.units_scanned += 1
        if not dirty:
            continue
        cls = scheme.class_of(loc)
        pair_index = scheme.registers.pair_index_of_class(cls)
        dirty_by_pair.setdefault(pair_index, []).append((loc, value, cls))
        check = cache.line(loc.set_index, loc.way).check[loc.unit_index]
        inspection = scheme.inspect(value, check)
        if inspection.detected:
            faulty_by_pair.setdefault(pair_index, []).append(
                FaultyUnit(
                    loc=loc,
                    rotation_class=cls,
                    row=scheme.geometry.row_of(loc),
                    stored_value=value,
                    faulty_parities=inspection.faulty_parities,
                )
            )
            report.faulty_units.append(loc)

    if not any(
        u.loc == trigger for units in faulty_by_pair.values() for u in units
    ):
        raise SimulationError(
            f"recovery triggered by {trigger} but the scan does not see it "
            "as a faulty dirty unit"
        )
    if obs is not None:
        obs.emit(
            "cppc.recovery",
            "scan",
            {
                "trigger": list(trigger),
                "units_scanned": report.units_scanned,
                "faulty": [list(loc) for loc in report.faulty_units],
                "register_repairs": report.register_repairs,
            },
        )

    # Step 2: per-pair residues, then resolution.
    for pair_index, faulty in faulty_by_pair.items():
        pair = scheme.registers.pairs[pair_index]
        rotated_dirty = (
            scheme.rotation.rotate_in(value, cls)
            for _loc, value, cls in dirty_by_pair.get(pair_index, [])
        )
        r3 = pair.dirty_xor ^ xor_reduce(rotated_dirty)
        if obs is not None:
            obs.emit(
                "cppc.recovery",
                "residue",
                {
                    "pair": pair_index,
                    "r1": pair.r1,
                    "r2": pair.r2,
                    "residue": r3,
                    "faulty": [
                        {
                            "loc": list(u.loc),
                            "parities": sorted(u.faulty_parities),
                        }
                        for u in faulty
                    ],
                },
            )
        deltas = _resolve_pair(scheme, faulty, r3, report)
        report.pair_audits.append(
            PairAudit(
                pair_index=pair_index,
                r1=pair.r1,
                r2=pair.r2,
                residue=r3,
                method=report.methods[-1],
                faulty=list(faulty),
            )
        )
        for unit in faulty:
            corrected = unit.stored_value ^ deltas[unit.loc]
            stored_check = cache.line(
                unit.loc.set_index, unit.loc.way
            ).check[unit.loc.unit_index]
            # Sanity-check the reconstruction.  Any parity group still
            # mismatching must be one that flagged originally — that case
            # is a fault in the *check bits* themselves (the data was
            # intact and reconstruction returns it unchanged; parity is
            # regenerated on repair).  A mismatch in a group that never
            # flagged means the registers disagree with the evidence: the
            # fault exceeded correction capability.
            residual = scheme.inspect(corrected, stored_check)
            if residual.detected and not (
                residual.faulty_parities <= unit.faulty_parities
            ):
                raise UncorrectableError(
                    f"cppc: recovered value for {unit.loc} fails parity in "
                    "unflagged groups — fault exceeds correction capability",
                    detail=unit.loc,
                )
            report.corrections[unit.loc] = (unit.stored_value, corrected)
            if obs is not None:
                obs.emit(
                    "cppc.recovery",
                    "reconstruct",
                    {
                        "loc": list(unit.loc),
                        "method": report.methods[-1],
                        "old": unit.stored_value,
                        "new": corrected,
                        "delta": unit.stored_value ^ corrected,
                    },
                )

    # Apply every repair except the trigger's (the cache applies that one
    # through the normal resolution path).
    for loc, (_old, new) in report.corrections.items():
        if loc != trigger:
            cache.repair_unit(loc, new)
    return report


def _resolve_pair(
    scheme: "CppcProtection",
    faulty: List[FaultyUnit],
    r3: int,
    report: RecoveryReport,
) -> Dict[UnitLocation, int]:
    """Error mask per faulty unit within one register pair's domain."""
    if len(faulty) == 1:
        unit = faulty[0]
        report.methods.append("single")
        return {
            unit.loc: scheme.rotation.rotate_out(r3, unit.rotation_class)
        }

    if _parity_groups_disjoint(faulty):
        # Step 4: disjoint groups never mix under byte rotation, so each
        # unit's pattern is the residue masked to its own groups.
        report.methods.append("disjoint-parity")
        deltas = {}
        for unit in faulty:
            residue = scheme.rotation.rotate_out(r3, unit.rotation_class)
            deltas[unit.loc] = residue & _groups_mask(scheme, unit.faulty_parities)
        return deltas

    # Steps 5-6: presumed spatial strike.
    ways = {u.loc.way for u in faulty}
    if len(ways) > 1:
        raise UncorrectableError(
            "cppc: concurrent faults in different subarrays share parity "
            "groups — not a spatial strike, not separable",
            detail=[u.loc for u in faulty],
        )
    rows = [u.row for u in faulty]
    if max(rows) - min(rows) >= scheme.rotation.num_classes:
        raise UncorrectableError(
            "cppc: faulty rows span more than the rotation period "
            f"({scheme.rotation.num_classes} rows) — beyond spatial "
            "correction capability",
            detail=[u.loc for u in faulty],
        )
    locator = FaultLocator(scheme.rotation)
    try:
        deltas = locator.locate(faulty, r3)
    except FaultLocatorError as exc:
        raise UncorrectableError(
            f"cppc: fault locator failed: {exc}", detail=[u.loc for u in faulty]
        ) from exc
    report.methods.append("spatial-locator")
    return deltas


def _parity_groups_disjoint(faulty: List[FaultyUnit]) -> bool:
    seen: set = set()
    for unit in faulty:
        if seen & unit.faulty_parities:
            return False
        seen |= unit.faulty_parities
    return True


def _groups_mask(scheme: "CppcProtection", groups) -> int:
    """Unit-wide mask of all bits belonging to the given parity groups."""
    out = 0
    for g in groups:
        out |= scheme.code.group_mask(g)
    return out


def amortized_recovery_overhead(
    fault_rate_per_hour: float,
    recovery_cycles: float,
    frequency_hz: float = 3.0e9,
) -> float:
    """Fraction of machine cycles spent in recovery, long-run average.

    Quantifies the paper's Section 5 claim that recovery complexity does
    not matter: even charging a full-cache software scan per fault, the
    expected overhead at realistic SEU rates is far below measurement
    noise.
    """
    if fault_rate_per_hour < 0 or recovery_cycles < 0:
        raise SimulationError("rates and costs must be non-negative")
    cycles_per_hour = frequency_hz * 3600.0
    return fault_rate_per_hour * recovery_cycles / cycles_per_hour
