"""The R1/R2 XOR register pairs at the heart of CPPC (paper Section 3).

``R1`` accumulates the (rotated) value of every unit written into the
cache; ``R2`` accumulates the (rotated) value of every dirty unit removed
from it — overwritten by a store or evicted by a write-back.  At any
instant ``R1 XOR R2`` equals the XOR of the rotated values of every dirty
unit resident in the pair's protection domain, which is what recovery
exploits.

A :class:`RegisterFile` holds 1, 2, 4 or 8 pairs and assigns rotation
classes to pairs the way paper Sections 4.6/4.11 describe: with ``p``
pairs and 8 classes, classes ``[i*8/p, (i+1)*8/p)`` belong to pair ``i``.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..errors import ConfigurationError
from ..util import check_word


@dataclasses.dataclass
class RegisterPair:
    """One (R1, R2) pair protecting a subset of the cache's dirty data.

    Following paper Section 4.9, each register carries its own parity
    bits, maintained incrementally (``parity(x ^ v) = parity(x) ^
    parity(v)``) and checked whenever the register is read for recovery.
    A register whose parity fails can itself be rebuilt from the other
    register plus the cache's dirty words (see
    :meth:`repro.cppc.CppcProtection.repair_register`).
    """

    width_bits: int
    r1: int = 0
    r2: int = 0
    #: Stored parity (one even-parity bit per register); maintained by
    #: delta, so a corruption of the register value becomes detectable.
    r1_parity: int = 0
    r2_parity: int = 0

    def __post_init__(self):
        if self.width_bits < 8 or self.width_bits % 8:
            raise ConfigurationError(
                f"register width must be a positive multiple of 8 bits, "
                f"got {self.width_bits}"
            )

    def on_written(self, rotated_value: int) -> None:
        """A unit value (already rotated) was stored into the domain."""
        check_word(rotated_value, self.width_bits)
        self.r1 ^= rotated_value
        self.r1_parity ^= bin(rotated_value).count("1") & 1

    def on_dirty_removed(self, rotated_value: int) -> None:
        """A dirty unit value (already rotated) left the domain."""
        check_word(rotated_value, self.width_bits)
        self.r2 ^= rotated_value
        self.r2_parity ^= bin(rotated_value).count("1") & 1

    @property
    def dirty_xor(self) -> int:
        """XOR of the rotated values of all dirty units in the domain."""
        return self.r1 ^ self.r2

    def r1_intact(self) -> bool:
        """Whether R1's stored parity matches its contents (Section 4.9)."""
        return (bin(self.r1).count("1") & 1) == self.r1_parity

    def r2_intact(self) -> bool:
        """Whether R2's stored parity matches its contents."""
        return (bin(self.r2).count("1") & 1) == self.r2_parity

    def corrupt_r1(self, xor_mask: int) -> None:
        """Flip register bits without updating parity (fault injection)."""
        check_word(xor_mask, self.width_bits)
        self.r1 ^= xor_mask

    def corrupt_r2(self, xor_mask: int) -> None:
        """Flip R2 bits without updating parity (fault injection)."""
        check_word(xor_mask, self.width_bits)
        self.r2 ^= xor_mask

    def reset(self) -> None:
        """Clear both registers (power-on state)."""
        self.r1 = 0
        self.r2 = 0
        self.r1_parity = 0
        self.r2_parity = 0


class RegisterFile:
    """The set of register pairs of one CPPC, indexed by rotation class."""

    VALID_PAIR_COUNTS = (1, 2, 4, 8)

    def __init__(self, width_bits: int, num_pairs: int = 1, num_classes: int = 8):
        if num_pairs not in self.VALID_PAIR_COUNTS:
            raise ConfigurationError(
                f"num_pairs must be one of {self.VALID_PAIR_COUNTS}, got {num_pairs}"
            )
        if num_classes % num_pairs:
            raise ConfigurationError(
                f"num_pairs {num_pairs} must divide num_classes {num_classes}"
            )
        self.width_bits = width_bits
        self.num_pairs = num_pairs
        self.num_classes = num_classes
        self._classes_per_pair = num_classes // num_pairs
        self.pairs: List[RegisterPair] = [
            RegisterPair(width_bits) for _ in range(num_pairs)
        ]

    def pair_index_of_class(self, rotation_class: int) -> int:
        """Register pair responsible for ``rotation_class``."""
        if not 0 <= rotation_class < self.num_classes:
            raise ConfigurationError(
                f"rotation class {rotation_class} out of range "
                f"[0, {self.num_classes})"
            )
        return rotation_class // self._classes_per_pair

    def pair_of_class(self, rotation_class: int) -> RegisterPair:
        """The :class:`RegisterPair` protecting ``rotation_class``."""
        return self.pairs[self.pair_index_of_class(rotation_class)]

    def classes_of_pair(self, pair_index: int) -> range:
        """Rotation classes assigned to pair ``pair_index``."""
        if not 0 <= pair_index < self.num_pairs:
            raise ConfigurationError(f"pair index {pair_index} out of range")
        start = pair_index * self._classes_per_pair
        return range(start, start + self._classes_per_pair)

    def reset(self) -> None:
        """Clear every pair."""
        for p in self.pairs:
            p.reset()

    @property
    def storage_bits(self) -> int:
        """Total register storage (2 registers per pair)."""
        return 2 * self.num_pairs * self.width_bits
