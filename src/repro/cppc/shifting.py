"""Byte shifting — the barrel-shifter rotation of paper Section 4.

Each data-array row belongs to a *rotation class* (``row mod num_classes``)
and its value is rotated left by ``class`` bytes before entering R1/R2
(paper Figure 6).  Vertically-adjacent bits of different rows thus land in
different register bits, which is what makes vertical spatial multi-bit
errors separable (Figure 5).

:class:`RotationScheme` bundles the rotate-in / rotate-out transforms;
``num_classes=8`` with byte granularity gives the paper's 8x8 spatial
coverage.  The multi-register-pair variant of Section 4.11 sets
``enabled=False`` — classes still partition rows among pairs, but values
enter the registers un-rotated.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..util import rotl_bytes, rotr_bytes


@dataclasses.dataclass(frozen=True)
class RotationScheme:
    """Rotation-class geometry for one CPPC.

    Attributes:
        unit_bytes: width of a protection unit in bytes.
        num_classes: number of rotation classes (spatial rows covered).
        enabled: when False no rotation is applied (Section 4.11 variant).
    """

    unit_bytes: int = 8
    num_classes: int = 8
    enabled: bool = True

    def __post_init__(self):
        if self.unit_bytes < 1:
            raise ConfigurationError("unit_bytes must be positive")
        if not 1 <= self.num_classes:
            raise ConfigurationError("num_classes must be >= 1")
        if self.enabled and self.num_classes > self.unit_bytes:
            raise ConfigurationError(
                f"byte shifting needs num_classes ({self.num_classes}) <= "
                f"unit_bytes ({self.unit_bytes}): each class must rotate by a "
                "distinct byte amount"
            )

    def class_of_row(self, row: int) -> int:
        """Rotation class of physical data-array row ``row``."""
        if row < 0:
            raise ConfigurationError(f"row must be non-negative, got {row}")
        return row % self.num_classes

    def rotate_in(self, value: int, rotation_class: int) -> int:
        """Transform a unit value on its way into R1/R2."""
        if not self.enabled:
            return value
        return rotl_bytes(value, rotation_class, self.unit_bytes)

    def rotate_out(self, value: int, rotation_class: int) -> int:
        """Inverse transform (recovery step 2 of Section 4.4)."""
        if not self.enabled:
            return value
        return rotr_bytes(value, rotation_class, self.unit_bytes)

    def dest_byte(self, src_byte: int, rotation_class: int) -> int:
        """Register byte receiving ``src_byte`` of a class-``c`` unit.

        With a left rotation by ``c`` bytes, source byte ``s`` (MSB-first)
        lands at destination ``(s - c) mod unit_bytes``.
        """
        if not self.enabled:
            return src_byte % self.unit_bytes
        return (src_byte - rotation_class) % self.unit_bytes

    def src_byte(self, dest_byte: int, rotation_class: int) -> int:
        """Unit byte that feeds register byte ``dest_byte`` (inverse map)."""
        if not self.enabled:
            return dest_byte % self.unit_bytes
        return (dest_byte + rotation_class) % self.unit_bytes


@dataclasses.dataclass(frozen=True)
class BarrelShifterModel:
    """Hardware-cost model of the CPPC barrel shifter (paper Section 4.8).

    A CPPC shifter rotates left only and by whole bytes only, so it needs
    ``n/8 * log2(n/8)`` multiplexers in ``log2(n/8)`` stages instead of a
    general shifter's ``n * log2(n)`` / ``log2(n)``.
    """

    width_bits: int = 64
    #: Delay/energy reference points from [9] (32-bit shifter, 90nm).
    reference_delay_ns: float = 0.4
    reference_energy_pj: float = 1.5
    reference_width_bits: int = 32

    def __post_init__(self):
        if self.width_bits < 8 or self.width_bits % 8:
            raise ConfigurationError("shifter width must be a multiple of 8")

    @property
    def num_stages(self) -> int:
        """Multiplexer stages (log2 of the byte count)."""
        nbytes = self.width_bits // 8
        return max(1, (nbytes - 1).bit_length())

    @property
    def num_muxes(self) -> int:
        """Total multiplexers: (n/8) * log2(n/8)."""
        return (self.width_bits // 8) * self.num_stages

    @property
    def general_shifter_muxes(self) -> int:
        """Mux count of a general bit-granular shifter, for comparison."""
        return self.width_bits * max(1, (self.width_bits - 1).bit_length())

    @property
    def delay_ns(self) -> float:
        """Rotation delay, scaled from the 32-bit reference by stage count."""
        ref_stages = max(1, (self.reference_width_bits // 8 - 1).bit_length())
        return self.reference_delay_ns * self.num_stages / ref_stages

    @property
    def energy_pj(self) -> float:
        """Rotation energy, scaled linearly with width from the reference."""
        return self.reference_energy_pj * self.width_bits / self.reference_width_bits
