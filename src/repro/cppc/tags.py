"""CPPC-style protection for the cache *tag array* (paper Section 7).

The paper's future work observes that the CPPC idea transfers naturally to
tags: the clean/dirty distinction does not exist (a lost tag cannot be
re-fetched from anywhere), tags are read-only until replaced, and so no
read-before-write is ever needed — one register pair suffices, with

* ``R1t`` accumulating the XOR of every tag inserted on a fill, and
* ``R2t`` accumulating the XOR of every tag removed on an eviction,

so ``R1t ^ R2t`` always equals the XOR of all currently valid tags.  A
parity bit per tag detects a fault at lookup time; recovery XORs
``R1t ^ R2t`` with every other valid tag to reconstruct the broken one.

Attach a :class:`TagCppc` to a :class:`~repro.memsim.Cache` via its
``tag_protection`` constructor argument.  Fault injection uses
``Cache.corrupt_tag``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..coding import InterleavedParity
from ..errors import ConfigurationError, SimulationError, UncorrectableError
from ..util import check_word

if TYPE_CHECKING:  # pragma: no cover
    from ..memsim.cache import Cache


class TagCppc:
    """One register pair plus per-tag parity protecting a tag array.

    Args:
        tag_bits: width of the protected tag field.  Addresses whose tags
            do not fit raise :class:`ConfigurationError` at insertion.
        parity_ways: interleaved parity bits per tag (1 = plain parity).
    """

    def __init__(self, tag_bits: int = 40, parity_ways: int = 1):
        if tag_bits < 1:
            raise ConfigurationError("tag_bits must be positive")
        if tag_bits % parity_ways:
            raise ConfigurationError(
                f"parity_ways {parity_ways} must divide tag_bits {tag_bits}"
            )
        self.tag_bits = tag_bits
        self.code = InterleavedParity(data_bits=tag_bits, ways=parity_ways)
        self.r1 = 0
        self.r2 = 0
        self.cache: Optional["Cache"] = None
        #: Tag recoveries performed.
        self.recoveries = 0

    # ------------------------------------------------------------------
    def attach(self, cache: "Cache") -> None:
        """Bind to ``cache``; called by the cache constructor."""
        if self.cache is not None:
            raise ConfigurationError("tag protection is already attached")
        self.cache = cache

    @property
    def valid_tag_xor(self) -> int:
        """XOR of all tags the register pair believes are resident."""
        return self.r1 ^ self.r2

    def encode(self, tag: int) -> int:
        """Parity bits for one tag."""
        return self.code.encode(check_word(tag, self.tag_bits))

    # ------------------------------------------------------------------
    # Event hooks (called by the cache)
    # ------------------------------------------------------------------
    def on_insert(self, tag: int) -> None:
        """A fill placed ``tag`` into the tag array."""
        self.r1 ^= check_word(tag, self.tag_bits)

    def on_remove(self, tag: int) -> None:
        """An eviction removed ``tag`` from the tag array."""
        self.r2 ^= check_word(tag, self.tag_bits)

    # ------------------------------------------------------------------
    # Verification and recovery
    # ------------------------------------------------------------------
    def verify(self, set_index: int, way: int, tag: int, tag_check: int) -> Optional[int]:
        """Check one stored tag; returns the recovered tag on a fault.

        Returns None when the tag is clean.  Raises UncorrectableError
        when recovery cannot reconstruct it (e.g. a second concurrent tag
        fault).
        """
        if not self.code.inspect(tag, tag_check).detected:
            return None
        recovered = self.recover(set_index, way)
        self.recoveries += 1
        return recovered

    def recover(self, faulty_set: int, faulty_way: int) -> int:
        """Reconstruct the tag at (set, way) from the registers.

        XORs ``R1t ^ R2t`` with every *other* valid tag; verifies the
        result against the stored parity before accepting it.
        """
        if self.cache is None:
            raise SimulationError("tag recovery invoked before attach()")
        acc = self.valid_tag_xor
        for set_index in range(self.cache.num_sets):
            for way in range(self.cache.ways):
                if set_index == faulty_set and way == faulty_way:
                    continue
                line = self.cache.line(set_index, way)
                if not line.valid:
                    continue
                other = line.tag
                if self.code.inspect(other, line.tag_check).detected:
                    raise UncorrectableError(
                        "tag-cppc: a second concurrent tag fault at "
                        f"set {set_index} way {way} defeats recovery",
                    )
                acc ^= other
        faulty_line = self.cache.line(faulty_set, faulty_way)
        if self.code.inspect(acc, faulty_line.tag_check).detected:
            raise UncorrectableError(
                "tag-cppc: reconstructed tag fails its stored parity",
            )
        return acc
