"""Differential fuzzing: scenario grammar, oracles, shrinker, driver.

The repo maintains several redundant implementations of the same truth
(scalar cache vs. NumPy batch engine, legacy vs. snapshot-fork
campaigns, live recovery vs. audit-trail replay, Monte-Carlo vs.
analytic reliability models).  This package hunts for divergence
between them: :mod:`~repro.crosscheck.scenario` samples random cases
from a weighted grammar, :mod:`~repro.crosscheck.oracles` cross-checks
each case through every applicable pair, :mod:`~repro.crosscheck.shrink`
ddmin-minimizes failures into corpus reproducers, and
:mod:`~repro.crosscheck.fuzz` ties it together under a time budget —
including the ``--mutate`` self-test that proves the harness still
catches seeded bugs (:mod:`~repro.crosscheck.mutations`).
"""

from .fuzz import (
    FuzzFinding,
    FuzzReport,
    MutationOutcome,
    fuzz,
    run_mutation_self_test,
)
from .mutations import MUTATIONS, Mutation, resolve_mutations
from .oracles import Divergence, run_scenario
from .scenario import (
    DEFAULT_KIND_WEIGHTS,
    FORMAT_VERSION,
    SCENARIO_KINDS,
    FaultOp,
    Scenario,
    ScenarioGenerator,
)
from .shrink import (
    corpus_files,
    load_reproducer,
    reproducer_name,
    save_reproducer,
    shrink_scenario,
)

__all__ = [
    "DEFAULT_KIND_WEIGHTS",
    "Divergence",
    "FORMAT_VERSION",
    "FaultOp",
    "FuzzFinding",
    "FuzzReport",
    "MUTATIONS",
    "Mutation",
    "MutationOutcome",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioGenerator",
    "corpus_files",
    "fuzz",
    "load_reproducer",
    "reproducer_name",
    "resolve_mutations",
    "run_mutation_self_test",
    "run_scenario",
    "save_reproducer",
    "shrink_scenario",
]
