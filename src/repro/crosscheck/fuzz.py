"""The fuzz driver: generate, cross-check, shrink, record.

:func:`fuzz` is the clean-run loop — scenarios stream from a
:class:`~repro.crosscheck.scenario.ScenarioGenerator`, each runs through
its differential oracle, and any divergence is ddmin-shrunk and saved as
a corpus reproducer.  :func:`run_mutation_self_test` is the harness's
own regression test: it plants each seeded bug from
:mod:`~repro.crosscheck.mutations` in turn and asserts the loop reports
a divergence within its share of the budget.

Scenario ``index`` is globally meaningful: ``(seed, index)`` pins the
case, so the report alone is enough to regenerate any divergence on
another machine before the reproducer file is even fetched.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

from .mutations import Mutation, active
from .oracles import Divergence, run_scenario
from .scenario import Scenario, ScenarioGenerator
from .shrink import save_reproducer, shrink_scenario


@dataclasses.dataclass
class FuzzFinding:
    """One divergence, after shrinking."""

    index: int
    scenario: Scenario
    divergences: List[Divergence]
    reproducer: Optional[str] = None

    def snapshot(self) -> dict:
        return {
            "index": self.index,
            "scenario": self.scenario.to_json(),
            "divergences": [d.to_json() for d in self.divergences],
            "reproducer": self.reproducer,
        }


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    scenarios_run: int = 0
    elapsed_seconds: float = 0.0
    by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    findings: List[FuzzFinding] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no oracle diverged."""
        return not self.findings

    def snapshot(self) -> dict:
        return {
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "by_kind": dict(self.by_kind),
            "divergences": len(self.findings),
            "findings": [f.snapshot() for f in self.findings],
        }


def fuzz(
    *,
    seed: int = 0,
    time_budget: float = 60.0,
    corpus_dir=None,
    kind_weights: Optional[Dict[str, float]] = None,
    round_robin: bool = False,
    max_scenarios: Optional[int] = None,
    shrink: bool = True,
    shrink_seconds: float = 20.0,
    stop_on_first: bool = False,
    obs=None,
    metrics=None,
    on_progress: Optional[Callable[[FuzzReport], None]] = None,
) -> FuzzReport:
    """Run the differential loop until the time budget expires.

    Args:
        seed: base seed of the scenario stream.
        time_budget: wall-clock seconds of *generation*; a shrink in
            progress may run up to ``shrink_seconds`` past it.
        corpus_dir: when set, shrunk reproducers are written here.
        kind_weights / round_robin: forwarded to the generator.
        max_scenarios: optional hard cap on scenarios (for tests).
        shrink: ddmin-minimize failures before recording them.
        stop_on_first: return at the first divergence (self-test mode).
        obs: optional :class:`~repro.obs.sinks.TraceSink` for per-event
            emission; ``metrics`` an optional
            :class:`~repro.obs.metrics.MetricsRegistry`.
        on_progress: called with the running report after each scenario.
    """
    generator = ScenarioGenerator(
        seed, kind_weights=kind_weights, round_robin=round_robin
    )
    report = FuzzReport(seed=seed)
    sink = obs if obs is not None and obs.enabled else None
    started = time.monotonic()
    index = 0
    while True:
        if max_scenarios is not None and index >= max_scenarios:
            break
        if time.monotonic() - started >= time_budget:
            break
        scenario = generator.generate(index)
        t0 = time.monotonic()
        divergences = run_scenario(scenario)
        report.scenarios_run += 1
        report.by_kind[scenario.kind] = report.by_kind.get(scenario.kind, 0) + 1
        if metrics is not None:
            metrics.counter("fuzz.scenarios").inc()
            metrics.counter(f"fuzz.scenarios.{scenario.kind}").inc()
        if sink is not None:
            sink.span(
                "fuzz",
                f"scenario[{index}]",
                t0 - started,
                time.monotonic() - t0,
                {"kind": scenario.kind, "divergences": len(divergences)},
            )
        if divergences:
            finding = _record_failure(
                index,
                scenario,
                divergences,
                corpus_dir=corpus_dir,
                shrink=shrink,
                shrink_seconds=shrink_seconds,
            )
            report.findings.append(finding)
            if metrics is not None:
                metrics.counter("fuzz.divergences").inc()
            if sink is not None:
                sink.emit("fuzz", "divergence", finding.snapshot())
            if stop_on_first:
                break
        if on_progress is not None:
            on_progress(report)
        index += 1
    report.elapsed_seconds = time.monotonic() - started
    return report


def _record_failure(
    index: int,
    scenario: Scenario,
    divergences: List[Divergence],
    *,
    corpus_dir,
    shrink: bool,
    shrink_seconds: float,
) -> FuzzFinding:
    """Shrink one failing scenario and (optionally) write its reproducer."""
    if shrink:
        shrunk = shrink_scenario(scenario, run_scenario, max_seconds=shrink_seconds)
        final = run_scenario(shrunk)
        # A flaky shrink (predicate stopped failing at the very end)
        # falls back to the original, which definitely failed.
        if final:
            scenario, divergences = shrunk, final
    finding = FuzzFinding(index=index, scenario=scenario, divergences=divergences)
    if corpus_dir is not None:
        finding.reproducer = str(save_reproducer(scenario, divergences, corpus_dir))
    return finding


@dataclasses.dataclass
class MutationOutcome:
    """Self-test verdict for one seeded bug."""

    mutation: str
    description: str
    detected: bool
    scenarios_run: int
    elapsed_seconds: float
    detail: str = ""

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)


def run_mutation_self_test(
    mutations: List[Mutation],
    *,
    seed: int = 0,
    time_budget: float = 120.0,
    obs=None,
    metrics=None,
) -> List[MutationOutcome]:
    """Plant each seeded bug; assert the fuzzer catches it in budget.

    Each mutation gets an equal share of ``time_budget`` and a scenario
    stream restricted to the kinds its oracle can observe (fuzzing
    replay scenarios can never catch an analytic-model bug).  Findings
    are NOT shrunk or written to the corpus — a mutated run records
    deliberately-wrong behaviour, which must never contaminate the
    regression corpus.
    """
    share = time_budget / max(1, len(mutations))
    outcomes: List[MutationOutcome] = []
    for mutation in mutations:
        weights = {kind: 1.0 for kind in mutation.kinds}
        with active(mutation):
            report = fuzz(
                seed=seed,
                time_budget=share,
                corpus_dir=None,
                kind_weights=weights,
                round_robin=len(weights) > 1,
                shrink=False,
                stop_on_first=True,
                obs=obs,
                metrics=metrics,
            )
        detected = not report.clean
        detail = ""
        if detected:
            finding = report.findings[0]
            detail = (
                f"scenario {finding.index} ({finding.scenario.kind}): "
                + finding.divergences[0].details[0]
            )
        outcomes.append(
            MutationOutcome(
                mutation=mutation.name,
                description=mutation.description,
                detected=detected,
                scenarios_run=report.scenarios_run,
                elapsed_seconds=report.elapsed_seconds,
                detail=detail,
            )
        )
        if metrics is not None:
            metrics.counter("fuzz.mutations.tested").inc()
            if detected:
                metrics.counter("fuzz.mutations.detected").inc()
    return outcomes
