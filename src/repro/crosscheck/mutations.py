"""Seeded bugs for the fuzzer's self-test (``run_fuzz --mutate``).

A differential harness that never fires is indistinguishable from one
that works, so its detection power must itself be tested.  Each
:class:`Mutation` here plants one deliberate, realistic bug into exactly
ONE side of a differential pair — the scalar cache but not the batch
engine, the fast campaign path but not the legacy loop, the audit
recorder but not the live recovery — and the self-test asserts the
fuzzer reports a divergence within budget.

The patches are namespace-aware: ``audit_payload`` is imported *by
name* into :mod:`repro.cppc.protection`, so the mutation rebinds it
there (patching the defining module would silently miss the call site).
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Dict, Iterator, List, Tuple

from ..errors import ConfigurationError

#: One attribute rebinding: (owner object, attribute name, replacement).
Patch = Tuple[object, str, object]


@dataclasses.dataclass(frozen=True)
class Mutation:
    """One seeded bug.

    Attributes:
        name: CLI identifier.
        description: what the bug breaks, in one line.
        kinds: scenario kinds able to observe it — the self-test fuzzes
            only these, so every second of budget exercises the one
            oracle that must fire.
        build: returns the patch list (built lazily so importing this
            module never imports numpy et al. eagerly).
    """

    name: str
    description: str
    kinds: Tuple[str, ...]
    build: Callable[[], List[Patch]]


def _skip_byte_rotation() -> List[Patch]:
    """Scalar registers stop byte-rotating values (batch still does)."""
    from ..cppc.shifting import RotationScheme

    def rotate_in(self, value: int, rotation_class: int) -> int:
        return value

    return [(RotationScheme, "rotate_in", rotate_in)]


def _drop_evict_r2() -> List[Patch]:
    """Scalar CPPC forgets to retire evicted words from its registers."""
    from ..cppc.protection import CppcProtection

    def on_evict(self, set_index, way, *args, **kwargs):
        return None

    return [(CppcProtection, "on_evict", on_evict)]


def _rotl_off_by_one() -> List[Patch]:
    """Batch register rotation over-rotates every word by one byte."""
    from ..memsim import batch

    original = batch._rotl_bytes_u64

    def rotl(values, count):
        return original(values, count + 1)

    return [(batch, "_rotl_bytes_u64", rotl)]


def _fast_campaign_seed_skew() -> List[Patch]:
    """Snapshot-fork path injects with the NEXT trial's fault seed."""
    from ..faults.campaign import FaultCampaign

    original = FaultCampaign._classify_trial_fast

    def classify_fast(self, trial, warm=None):
        return original(self, trial + 1, warm)

    return [(FaultCampaign, "_classify_trial_fast", classify_fast)]


def _audit_zero_residue() -> List[Patch]:
    """The audit recorder logs residue 0 for every register pair."""
    from ..cppc import protection

    original = protection.audit_payload

    def zeroed(report, scheme):
        payload = original(report, scheme)
        for pair in payload["pairs"]:
            pair["residue"] = 0
        return payload

    return [(protection, "audit_payload", zeroed)]


def _fast_timing_shadow_leak() -> List[Patch]:
    """Fast backlog resolver drops the miss-shadow drain (scalar keeps it)."""
    from ..timing import fast

    original = fast._resolve_backlog

    def no_shadow(cap, drain, supply, store_demand, miss_demand, miss, shadow):
        return original(
            cap, drain, supply, store_demand, miss_demand, miss, shadow * 0.0
        )

    return [(fast, "_resolve_backlog", no_shadow)]


def _analytic_inflate() -> List[Patch]:
    """The analytical collision model overstates 1/(p*w) eightfold."""
    from ..reliability import montecarlo

    original = montecarlo.analytical_collision_probability

    def inflated(parity_ways: int = 8, num_pairs: int = 1) -> float:
        return min(1.0, 8.0 * original(parity_ways, num_pairs))

    return [(montecarlo, "analytical_collision_probability", inflated)]


MUTATIONS: Dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            "skip-byte-rotation",
            "scalar RotationScheme.rotate_in becomes the identity",
            ("replay",),
            _skip_byte_rotation,
        ),
        Mutation(
            "drop-evict-r2",
            "scalar CppcProtection.on_evict is a no-op",
            ("replay", "recovery"),
            _drop_evict_r2,
        ),
        Mutation(
            "rotl-off-by-one",
            "batch _rotl_bytes_u64 rotates count+1 bytes",
            ("replay",),
            _rotl_off_by_one,
        ),
        Mutation(
            "fast-campaign-seed-skew",
            "fast campaign path uses trial+1's injection seed",
            ("campaign",),
            _fast_campaign_seed_skew,
        ),
        Mutation(
            "audit-zero-residue",
            "audit_payload records residue=0 for every pair",
            ("recovery",),
            _audit_zero_residue,
        ),
        Mutation(
            "analytic-inflate",
            "analytical_collision_probability returns 8x the truth",
            ("doublefault",),
            _analytic_inflate,
        ),
        Mutation(
            "fast-timing-shadow-leak",
            "fast backlog resolver ignores the miss-shadow drain",
            ("timing",),
            _fast_timing_shadow_leak,
        ),
    )
}


def resolve_mutations(selector: str) -> List[Mutation]:
    """``"all"`` or a comma-separated list of mutation names."""
    if selector == "all":
        return list(MUTATIONS.values())
    chosen = []
    for name in selector.split(","):
        name = name.strip()
        if name not in MUTATIONS:
            raise ConfigurationError(
                f"unknown mutation {name!r}; known: "
                f"{', '.join(sorted(MUTATIONS))} (or 'all')"
            )
        chosen.append(MUTATIONS[name])
    return chosen


@contextlib.contextmanager
def active(mutation: Mutation) -> Iterator[None]:
    """Install ``mutation``'s patches for the duration of the block."""
    saved: List[Patch] = []
    for owner, attr, replacement in mutation.build():
        saved.append((owner, attr, getattr(owner, attr)))
        setattr(owner, attr, replacement)
    try:
        yield
    finally:
        for owner, attr, original in reversed(saved):
            setattr(owner, attr, original)
