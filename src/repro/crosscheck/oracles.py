"""Differential oracles: run one scenario through redundant paths.

Each oracle takes a :class:`~repro.crosscheck.scenario.Scenario`, drives
every applicable implementation of the same truth, and returns a list of
human-readable mismatch strings (empty = agreement).  The oracles
mirror the repo's redundant computations:

* :func:`check_replay` — scalar :class:`~repro.memsim.cache.Cache` vs.
  the NumPy :class:`~repro.memsim.batch.BatchReplayEngine`, word for
  word (final contents, dirty bits, check words, stats, registers,
  memory image), via ``FastReplay(equivalence="always")``.
* :func:`check_recovery` — live CPPC recovery vs. an offline replay of
  the audit trail: every recorded pass must satisfy
  :func:`~repro.obs.trail.verify_audit`, its corrections must re-derive
  via :func:`~repro.obs.trail.reconstruct_corrections`, and the final
  flushed state must satisfy the R1^R2 register invariant.  Scenarios
  whose entire fault plan is one temporal data fault additionally
  assert full architectural correctness (single-bit faults are exactly
  what CPPC guarantees to repair).
* :func:`check_campaign` — the legacy warm-every-trial campaign loop
  vs. the snapshot-fork fast path, per-trial bit identity.
* :func:`check_doublefault` — the measured double-fault failure rate
  vs. the ``1/(p*w)`` analytical collision probability, within a
  binomial confidence band.
* :func:`check_chaos` — the same campaign run chaos-free in process
  and through the crash-safe runtime under a survivable
  :class:`~repro.runtime.ChaosPlan` (worker kills, delays, checkpoint
  I/O errors): absorbed faults must be bit-invisible in the result.
* :func:`check_timing` — the scalar Figure-10 timing pipeline
  (``collect_events`` + ``time_events`` per scheme) vs. the columnar
  fast path (:mod:`repro.timing.fast`): events, L1/L2 statistics and
  every scheme's :class:`~repro.timing.model.TimingResult` bit for bit.

:func:`run_scenario` routes a scenario to its oracle and wraps any
mismatch in a :class:`Divergence`.
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
from typing import Callable, Dict, List

from ..cppc.protection import CppcProtection
from ..errors import EquivalenceError, UncorrectableError
from ..faults.campaign import CampaignConfig, FaultCampaign
from ..faults.injector import FaultInjector
from ..faults.models import SpatialFault, TemporalFault
from ..faults.schemes import scheme_factory
from ..faults.warmstate import clear_warm_cache
from ..memsim.cache import Cache
from ..memsim.mainmem import MainMemory
from ..obs.trail import reconstruct_corrections, verify_audit
from ..reliability import fastmc, montecarlo
from ..runtime import CampaignRuntime, ChaosPlan, RetryPolicy
from ..workloads.replay import FastReplay, GoldenMemory, TraceReplayer
from .scenario import FaultOp, Scenario

#: z-score of the binomial confidence band the double-fault oracle
#: allows before calling a measurement inconsistent with the analytic
#: claim (plus a small absolute slack for the locator's rescue of
#: spatially-adjacent collisions, which the algebra counts as failures).
#: The vectorized engine runs ``DOUBLEFAULT_SAMPLE_SCALE`` times the
#: scenario's sample budget, so the bands are far tighter than the old
#: scalar loop's 4.5-sigma + 0.02 slack could afford.
DOUBLEFAULT_Z = 4.0
DOUBLEFAULT_SLACK = 0.005
DOUBLEFAULT_SAMPLE_SCALE = 100
#: Fault pairs replayed through live ``Cache`` recovery per scenario to
#: assert per-sample identity with the vector kernel.
DOUBLEFAULT_EQUIVALENCE_SUBSET = 16


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One oracle disagreement, ready to serialize into a reproducer."""

    oracle: str
    scenario_kind: str
    details: List[str]

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "scenario_kind": self.scenario_kind,
            "details": list(self.details),
        }


# ----------------------------------------------------------------------
# replay: scalar vs. batch
# ----------------------------------------------------------------------
def check_replay(scenario: Scenario) -> List[str]:
    """Word-for-word scalar/batch agreement on the scenario's trace."""
    replayer = FastReplay(
        scenario.size_bytes,
        scenario.ways,
        scenario.block_bytes,
        num_pairs=scenario.num_pairs,
        byte_shifting=scenario.byte_shifting,
        num_classes=scenario.num_classes,
        equivalence="always",
        equivalence_limit=0,
    )
    try:
        replayer.run(scenario.records)
    except EquivalenceError as exc:
        return list(exc.mismatches)
    return []


# ----------------------------------------------------------------------
# recovery: live CPPC recovery vs. audit-trail replay
# ----------------------------------------------------------------------
def _build_scenario_cache(scenario: Scenario) -> Cache:
    protection = CppcProtection(
        data_bits=64,
        num_pairs=scenario.num_pairs,
        byte_shifting=scenario.byte_shifting,
        num_classes=scenario.num_classes,
    )
    return Cache(
        "L1D",
        scenario.size_bytes,
        scenario.ways,
        scenario.block_bytes,
        unit_bytes=8,
        protection=protection,
        next_level=MainMemory(block_bytes=scenario.block_bytes),
        policy=scenario.policy,
        policy_seed=scenario.seed,
    )


def apply_fault(cache: Cache, op: FaultOp) -> int:
    """Apply one fault-plan op to ``cache``; returns bits flipped.

    Targeting is deterministic: ``op.target`` ranks into the cache's
    resident (or dirty) unit list, and all extents are clamped to the
    live geometry, so the same op stays meaningful as a shrinker trims
    the trace around it.
    """
    if op.kind == "spatial":
        injector = FaultInjector(cache, seed=0)
        rows = max(1, injector.geometry.rows_per_way)
        record = injector.inject_spatial(
            SpatialFault(
                way=op.way % cache.ways,
                top_row=op.top_row % rows,
                left_col=op.left_col % cache.unit_bits,
                height=op.height,
                width=op.width,
            )
        )
        return record.total_bits
    if op.dirty_only:
        candidates = [loc for loc, _v in cache.iter_dirty_units()]
    else:
        candidates = cache.resident_locations()
    if not candidates:
        return 0
    loc = candidates[op.target % len(candidates)]
    if op.kind == "temporal":
        flips = FaultInjector(cache, seed=0).inject_temporal(
            TemporalFault(loc, op.bit % cache.unit_bits)
        )
        return flips.total_bits
    # check-bit fault: flip one stored check bit, data untouched
    width = max(1, cache.protection.code.check_bits)
    cache.corrupt_check(loc, 1 << (op.bit % width))
    return 1


def _audit_problems(scheme: CppcProtection) -> List[str]:
    """Offline replay of every recorded recovery pass."""
    problems: List[str] = []
    for index, payload in enumerate(scheme.audit_trail):
        for issue in verify_audit(payload):
            problems.append(f"audit[{index}]: {issue}")
        rebuilt = reconstruct_corrections(payload)
        recorded = {
            tuple(c["loc"]): c["new"]
            for pair in payload["pairs"]
            for c in pair["corrections"]
        }
        if rebuilt != recorded:
            problems.append(
                f"audit[{index}]: reconstructed corrections {rebuilt!r} "
                f"disagree with the recorded values {recorded!r}"
            )
    return problems


def check_recovery(scenario: Scenario) -> List[str]:
    """Drive the trace + fault plan and audit every recovery pass."""
    cache = _build_scenario_cache(scenario)
    scheme: CppcProtection = cache.protection
    golden = GoldenMemory()
    replayer = TraceReplayer(cache, golden=golden, check_loads=True)
    plan = sorted(scenario.faults, key=lambda op: op.at)
    strict = len(plan) == 1 and plan[0].kind == "temporal"
    problems: List[str] = []
    injected_bits = 0
    due: str = ""
    mismatches = 0
    try:
        next_fault = 0
        for index, record in enumerate(scenario.records):
            while next_fault < len(plan) and plan[next_fault].at <= index:
                injected_bits += apply_fault(cache, plan[next_fault])
                next_fault += 1
            if replayer.step(record):
                mismatches += 1
        while next_fault < len(plan):
            injected_bits += apply_fault(cache, plan[next_fault])
            next_fault += 1
        cache.flush()
    except UncorrectableError as exc:
        due = str(exc)

    problems.extend(_audit_problems(scheme))

    if strict and injected_bits:
        # One temporal data fault is CPPC's bread and butter: any DUE,
        # wrong load data, or post-flush corruption is a divergence
        # between the implementation and the scheme's own claim.
        if due:
            problems.append(f"single-bit fault escalated to a DUE: {due}")
        if mismatches:
            problems.append(
                f"{mismatches} load(s) returned corrupt data after a "
                "single-bit fault"
            )
        if not due:
            memory = cache.next_level
            for addr, expected in golden.items():
                if memory.peek(addr, 1)[0] != expected:
                    problems.append(
                        f"memory byte {addr:#x} corrupt after flush "
                        "despite a single-bit fault"
                    )
                    break

    if not due:
        # After a full flush no dirty words remain, so every register
        # pair must have drained to the all-zero state and agree with a
        # fresh scan of the (empty) dirty set.
        for i, pair in enumerate(scheme.registers.pairs):
            expected = scheme.dirty_xor_expected(i)
            if pair.dirty_xor != expected:
                problems.append(
                    f"pair {i}: R1^R2 {pair.dirty_xor:#x} != rescan "
                    f"{expected:#x} after flush"
                )
            if pair.dirty_xor != 0 and expected == 0:
                problems.append(
                    f"pair {i}: registers left residue {pair.dirty_xor:#x} "
                    "after flushing every dirty word"
                )
    return problems


# ----------------------------------------------------------------------
# campaign: legacy loop vs. snapshot-fork fast path
# ----------------------------------------------------------------------
def check_campaign(scenario: Scenario) -> List[str]:
    """Per-trial bit identity of the legacy and fast campaign paths."""
    config = CampaignConfig(
        scheme_factory=scheme_factory(scenario.scheme),
        benchmark=scenario.benchmark,
        trials=scenario.trials,
        warmup_references=scenario.warmup_references,
        post_fault_references=scenario.post_fault_references,
        fault_kind=scenario.fault_kind,
        spatial_shape=tuple(scenario.spatial_shape),
        dirty_only=scenario.dirty_only,
        target_level=scenario.target_level,
        seed=scenario.seed,
        shared_warmup=True,
    )
    clear_warm_cache()
    try:
        legacy = FaultCampaign(config).run()
        fast = FaultCampaign(config, fast=True).run()
    finally:
        clear_warm_cache()
    problems = [
        f"trial {i}: fast={vars(b)!r} legacy={vars(a)!r}"
        for i, (a, b) in enumerate(zip(legacy.trials, fast.trials))
        if vars(a) != vars(b)
    ]
    if len(legacy.trials) != len(fast.trials):
        problems.append(
            f"trial count: fast={len(fast.trials)} legacy={len(legacy.trials)}"
        )
    return problems


# ----------------------------------------------------------------------
# chaos: chaos-free in-process run vs. the runtime under injected faults
# ----------------------------------------------------------------------
def check_chaos(scenario: Scenario) -> List[str]:
    """Survivable chaos must be bit-invisible in the campaign result.

    Every fault in the plan is one the runtime absorbs on its own
    (worker kills and delays via retry, checkpoint I/O errors via the
    appender's rollback-and-retry), so the chaos run must reproduce the
    chaos-free sequential baseline per trial — and own up to the
    absorbed faults in its degradation report.
    """
    config = CampaignConfig(
        scheme_factory=scheme_factory(scenario.scheme),
        benchmark=scenario.benchmark,
        trials=scenario.trials,
        warmup_references=scenario.warmup_references,
        post_fault_references=scenario.post_fault_references,
        fault_kind=scenario.fault_kind,
        spatial_shape=tuple(scenario.spatial_shape),
        dirty_only=scenario.dirty_only,
        target_level=scenario.target_level,
        seed=scenario.seed,
    )
    baseline = FaultCampaign(config).run()
    plan = ChaosPlan(
        seed=scenario.seed,
        kinds=tuple(scenario.chaos_kinds),
        rate=scenario.chaos_rate,
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-oracle-") as tmp:
        with CampaignRuntime(
            jobs=1,
            retry=RetryPolicy(max_attempts=3),
            checkpoint_dir=tmp,
            chaos=plan,
        ) as runtime:
            survived = FaultCampaign(config).run(runtime=runtime)
    problems = [
        f"trial {i}: chaos={vars(b)!r} baseline={vars(a)!r}"
        for i, (a, b) in enumerate(zip(baseline.trials, survived.trials))
        if vars(a) != vars(b)
    ]
    if len(baseline.trials) != len(survived.trials):
        problems.append(
            f"trial count: chaos={len(survived.trials)} "
            f"baseline={len(baseline.trials)}"
        )
    if survived.failures or not survived.complete:
        problems.append(
            f"chaos campaign did not complete cleanly: "
            f"{len(survived.failures)} failure(s), complete="
            f"{survived.complete}"
        )
    if survived.degradation is None:
        problems.append("chaos run attached no degradation report")
    return problems


# ----------------------------------------------------------------------
# doublefault: measured failure rate vs. the 1/(p*w) analytic claim
# ----------------------------------------------------------------------
def check_doublefault(scenario: Scenario) -> List[str]:
    """Binomial consistency of measurement and analytical model.

    The measurement comes from the vectorized engine
    (:mod:`repro.reliability.fastmc`) at ``DOUBLEFAULT_SAMPLE_SCALE``
    times the scenario's scalar sample budget, which tightens the
    confidence band by an order of magnitude; a small randomized subset
    of the sampled fault pairs is additionally replayed through the live
    ``Cache``/``CppcProtection`` machinery, so the oracle cross-checks
    the kernel itself, not only its aggregate.  The measurement
    systematically lands near or *below* the analytic probability (the
    spatial locator rescues some collisions the algebra conservatively
    counts as failures), so the band is asymmetric: a sigma-scaled bound
    above, and only ``analytic / 4`` minus the confidence margin below.
    """
    samples = scenario.samples * DOUBLEFAULT_SAMPLE_SCALE
    estimate = fastmc.estimate_double_fault_failure_fast(
        samples=samples,
        parity_ways=scenario.parity_ways,
        num_pairs=scenario.num_pairs,
        seed=scenario.seed,
        cache_bytes=scenario.size_bytes,
    )
    analytic = montecarlo.analytical_collision_probability(
        scenario.parity_ways, scenario.num_pairs
    )
    sigma = math.sqrt(analytic * (1.0 - analytic) / samples)
    upper = analytic + DOUBLEFAULT_Z * sigma + DOUBLEFAULT_SLACK
    lower = analytic / 4.0 - DOUBLEFAULT_Z * sigma - DOUBLEFAULT_SLACK
    ci_low, ci_high = estimate.failure_rate_ci()
    problems: List[str] = []
    if estimate.failure_rate > upper:
        problems.append(
            f"measured failure rate {estimate.failure_rate:.4f} "
            f"(95% CI [{ci_low:.4f}, {ci_high:.4f}]) exceeds "
            f"the analytic claim 1/(p*w)={analytic:.4f} "
            f"(+{DOUBLEFAULT_Z}-sigma bound {upper:.4f}; n={samples})"
        )
    if lower > 0 and estimate.failure_rate < lower:
        problems.append(
            f"measured failure rate {estimate.failure_rate:.4f} "
            f"(95% CI [{ci_low:.4f}, {ci_high:.4f}]) is "
            f"implausibly far below the analytic claim "
            f"1/(p*w)={analytic:.4f} (floor {lower:.4f}; n={samples})"
        )
    try:
        fastmc.cross_check_live(
            samples=min(samples, 512),
            subset=DOUBLEFAULT_EQUIVALENCE_SUBSET,
            parity_ways=scenario.parity_ways,
            num_pairs=scenario.num_pairs,
            seed=scenario.seed,
            cache_bytes=scenario.size_bytes,
        )
    except EquivalenceError as exc:
        problems.extend(exc.mismatches or [str(exc)])
    return problems


# ----------------------------------------------------------------------
# timing: scalar Figure-10 pipeline vs. columnar fast path
# ----------------------------------------------------------------------
def check_timing(scenario: Scenario) -> List[str]:
    """Bit identity of the scalar and vectorized timing pipelines.

    One shared simulation produces the event stream; every scheme's
    pricing must then agree field for field.  The L2 is scaled 8x over
    the scenario's L1 with matching block size — the only L2 shape the
    scalar hierarchy accepts (its unit must equal the L1 block).
    """
    from ..memsim import CacheGeometry, HierarchyConfig, MemoryHierarchy
    from ..timing import (
        TIMING_POLICIES,
        TimingConfig,
        collect_events,
        time_events,
        time_events_fast,
    )
    from ..timing.fast import EventColumns, collect_run_fast

    config = HierarchyConfig(
        l1d=CacheGeometry(
            scenario.size_bytes,
            scenario.ways,
            scenario.block_bytes,
            unit_bytes=8,
            latency_cycles=2,
        ),
        l2=CacheGeometry(
            scenario.size_bytes * 8,
            4,
            scenario.block_bytes,
            unit_bytes=scenario.block_bytes,
            latency_cycles=8,
        ),
    )
    run = collect_run_fast(scenario.records, config, equivalence="never")
    hierarchy = MemoryHierarchy(config)
    events = collect_events(scenario.records, hierarchy)
    problems = run.events.mismatches(EventColumns.from_events(events))
    if hierarchy.l1d.stats != run.l1:
        problems.append("L1 statistics diverged from the scalar collector")
    if hierarchy.l2.stats != run.l2:
        problems.append("L2 statistics diverged from the scalar collector")
    timing_config = TimingConfig(
        issue_width=scenario.issue_width,
        store_buffer_capacity=scenario.store_buffer,
    )
    for scheme, factory in TIMING_POLICIES.items():
        scalar_result = time_events(
            events,
            factory(),
            timing_config,
            units_per_block=hierarchy.l1d.units_per_block,
        )
        fast_result = time_events_fast(
            run.events,
            factory(),
            timing_config,
            units_per_block=run.units_per_block,
        )
        if scalar_result != fast_result:
            problems.append(f"{scheme}: {scalar_result!r} != {fast_result!r}")
    return problems


#: Oracle registry: scenario kind -> (oracle name, checker).
ORACLES: Dict[str, Callable[[Scenario], List[str]]] = {
    "replay": check_replay,
    "recovery": check_recovery,
    "campaign": check_campaign,
    "doublefault": check_doublefault,
    "chaos": check_chaos,
    "timing": check_timing,
}


def run_scenario(scenario: Scenario) -> List[Divergence]:
    """Route ``scenario`` to its oracle; wrap mismatches as divergences.

    An oracle *crash* (any exception escaping a path that its twin
    survived) is itself a divergence — plausible-but-wrong
    implementations often die instead of disagreeing.
    """
    oracle = ORACLES[scenario.kind]
    try:
        details = oracle(scenario)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        details = [f"oracle crashed: {type(exc).__name__}: {exc}"]
    if not details:
        return []
    return [
        Divergence(
            oracle=scenario.kind,
            scenario_kind=scenario.kind,
            details=details,
        )
    ]
