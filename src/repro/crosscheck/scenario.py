"""Scenario grammar for the differential fuzzer.

A :class:`Scenario` is one self-contained differential test case: enough
to rebuild the system under test (cache geometry, protection scheme,
replacement policy), drive it (an explicit trace or a campaign/sampling
recipe) and perturb it (a fault plan).  Scenarios serialize to plain
JSON, so a shrunk failure becomes a reproducer file under
``tests/corpus/`` that replays anywhere without the generator.

Six scenario kinds, one per differential oracle
(:mod:`repro.crosscheck.oracles`):

* ``replay`` — a trace replayed through the scalar :class:`Cache` and
  the NumPy :class:`~repro.memsim.batch.BatchReplayEngine`.
* ``recovery`` — a trace plus a fault plan driven through a scalar CPPC
  cache; the live recovery passes are replayed offline from the audit
  trail.
* ``campaign`` — one fault-injection campaign run through both the
  legacy warm-every-trial loop and the snapshot-fork fast path.
* ``doublefault`` — a Monte-Carlo double-fault measurement compared to
  the ``1/(p*w)`` analytical collision probability.
* ``chaos`` — one campaign run chaos-free in process and again through
  the crash-safe runtime under a survivable
  :class:`~repro.runtime.ChaosPlan`; recovery must be bit-invisible.
* ``timing`` — the scalar Figure-10 pipeline (``collect_events`` +
  ``time_events`` per scheme) against the columnar fast path
  (:mod:`repro.timing.fast`); events, cache statistics and every
  scheme's :class:`TimingResult` must match bit for bit.

:class:`ScenarioGenerator` samples scenarios from a weighted grammar,
deterministically per ``(seed, index)``: regenerating scenario ``i`` of
seed ``s`` always yields the same case, which is what lets a nightly
fuzz failure be reproduced locally from two integers before the shrunk
reproducer is even downloaded.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..memsim.types import AccessType
from ..util.rng import make_rng, weighted_choice
from ..workloads.store import cached_records
from ..workloads.trace import TraceRecord

#: Serialization format version stamped into every scenario/reproducer.
FORMAT_VERSION = 1

SCENARIO_KINDS = (
    "replay",
    "recovery",
    "campaign",
    "doublefault",
    "chaos",
    "timing",
)

#: Default sampling weight of each scenario kind.  Replay, recovery and
#: timing scenarios are cheap (hundreds of scalar accesses) and carry
#: most of the word-for-word coverage; campaign and double-fault
#: scenarios cost more per case, so they run less often but still every
#: few seconds.  Chaos scenarios spawn worker subprocesses and
#: deliberately kill them, so they are the rarest (and smallest) kind.
DEFAULT_KIND_WEIGHTS: Dict[str, float] = {
    "replay": 0.33,
    "recovery": 0.27,
    "campaign": 0.18,
    "doublefault": 0.09,
    "chaos": 0.05,
    "timing": 0.08,
}

#: Benchmarks with small working sets — fuzz traces are only a few
#: hundred references, so multi-megabyte profiles would never revisit
#: (or evict) anything interesting inside one scenario.
_FUZZ_BENCHMARKS = ("gzip", "crafty", "eon", "twolf", "perlbmk", "gcc")


@dataclasses.dataclass(frozen=True)
class FaultOp:
    """One step of a scenario's fault plan.

    Attributes:
        at: reference index after which the fault is applied (0 means
            before the first reference).
        kind: ``"temporal"`` (one data bit), ``"check"`` (one stored
            check bit) or ``"spatial"`` (an N x M strike rectangle).
        target: rank into the deterministic candidate list (resident
            units, or dirty units under ``dirty_only``); taken modulo
            the list length, so shrunk traces keep the op meaningful.
        bit: bit index within the unit (temporal) or the check word
            (check), taken modulo the width.
        dirty_only: restrict temporal/check targeting to dirty units.
        way / top_row / left_col / height / width: spatial rectangle
            (way and rows are clamped to the target cache's geometry).
    """

    at: int
    kind: str = "temporal"
    target: int = 0
    bit: int = 0
    dirty_only: bool = False
    way: int = 0
    top_row: int = 0
    left_col: int = 0
    height: int = 2
    width: int = 2

    def __post_init__(self):
        if self.kind not in ("temporal", "check", "spatial"):
            raise ConfigurationError(f"unknown fault op kind {self.kind!r}")
        if self.at < 0:
            raise ConfigurationError("fault op index must be >= 0")
        if self.height < 1 or self.width < 1:
            raise ConfigurationError("strike extents must be positive")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One differential test case (see module docstring for the kinds).

    Only the fields relevant to ``kind`` matter; the rest keep their
    defaults so a single flat record serializes cleanly.
    """

    kind: str
    seed: int = 0
    # --- cache geometry (replay / recovery) ---------------------------
    size_bytes: int = 2048
    ways: int = 2
    block_bytes: int = 32
    # --- protection scheme --------------------------------------------
    scheme: str = "cppc"
    num_pairs: int = 1
    byte_shifting: bool = True
    num_classes: int = 8
    policy: str = "lru"
    # --- explicit trace (replay / recovery) ---------------------------
    records: List[TraceRecord] = dataclasses.field(default_factory=list)
    faults: List[FaultOp] = dataclasses.field(default_factory=list)
    # --- campaign recipe ----------------------------------------------
    benchmark: str = "gzip"
    trials: int = 4
    warmup_references: int = 400
    post_fault_references: int = 200
    fault_kind: str = "temporal"
    spatial_shape: tuple = (4, 4)
    dirty_only: bool = False
    target_level: str = "L1D"
    # --- double-fault recipe ------------------------------------------
    samples: int = 48
    parity_ways: int = 8
    # --- chaos recipe -------------------------------------------------
    chaos_rate: float = 0.5
    chaos_kinds: tuple = ("kill", "delay")
    # --- timing recipe ------------------------------------------------
    issue_width: int = 4
    store_buffer: int = 2

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; "
                f"expected one of {SCENARIO_KINDS}"
            )

    # ------------------------------------------------------------------
    # JSON (de)serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-safe dict (records encoded as compact arrays)."""
        out = dataclasses.asdict(self)
        out["spatial_shape"] = list(self.spatial_shape)
        out["chaos_kinds"] = list(self.chaos_kinds)
        out["records"] = [_record_to_json(r) for r in self.records]
        out["faults"] = [dataclasses.asdict(op) for op in self.faults]
        out["version"] = FORMAT_VERSION
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        data = dict(data)
        version = data.pop("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ConfigurationError(f"unsupported scenario format version {version!r}")
        data["records"] = [_record_from_json(r) for r in data.get("records", [])]
        data["faults"] = [FaultOp(**op) for op in data.get("faults", [])]
        data["spatial_shape"] = tuple(data.get("spatial_shape", (4, 4)))
        data["chaos_kinds"] = tuple(data.get("chaos_kinds", ("kill", "delay")))
        return cls(**data)

    def canonical_json(self) -> str:
        """Stable text form (digest / dedup key of this scenario)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def _record_to_json(record: TraceRecord) -> list:
    op = "S" if record.op is AccessType.STORE else "L"
    out = [op, record.addr, record.size, record.gap]
    if record.op is AccessType.STORE:
        out.append(record.value.hex())
    return out


def _record_from_json(fields: list) -> TraceRecord:
    op = AccessType.STORE if fields[0] == "S" else AccessType.LOAD
    value = bytes.fromhex(fields[4]) if op is AccessType.STORE else b""
    return TraceRecord(op, fields[1], fields[2], fields[3], value)


class ScenarioGenerator:
    """Samples scenarios from the weighted grammar.

    Args:
        seed: base seed; scenario ``i`` derives its stream from
            ``(seed, "scenario", i)`` only, so any index regenerates
            identically in any order or process.
        kind_weights: sampling weight per scenario kind (defaults to
            :data:`DEFAULT_KIND_WEIGHTS`).
        round_robin: cycle through the kinds deterministically instead
            of sampling them — the self-test mode uses this so every
            oracle is exercised within a handful of scenarios.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kind_weights: Optional[Dict[str, float]] = None,
        round_robin: bool = False,
    ):
        self.seed = seed
        self.kind_weights = dict(kind_weights or DEFAULT_KIND_WEIGHTS)
        self.round_robin = round_robin
        for kind in self.kind_weights:
            if kind not in SCENARIO_KINDS:
                raise ConfigurationError(f"unknown scenario kind {kind!r}")

    def generate(self, index: int) -> Scenario:
        """Scenario ``index`` of this generator's stream."""
        rng = make_rng((self.seed, "scenario", index))
        if self.round_robin:
            kinds = sorted(self.kind_weights)
            kind = kinds[index % len(kinds)]
        else:
            kind = weighted_choice(rng, self.kind_weights)
        build = getattr(self, f"_gen_{kind}")
        return build(rng, index)

    # ------------------------------------------------------------------
    # Per-kind grammars
    # ------------------------------------------------------------------
    def _geometry(self, rng) -> dict:
        """A small power-of-two geometry the batch engine also accepts."""
        ways = rng.choice((1, 2, 2, 4))
        block = rng.choice((16, 32, 32, 64))
        sets = rng.choice((8, 16, 16, 32, 64))
        return {"size_bytes": sets * ways * block, "ways": ways, "block_bytes": block}

    def _trace(self, rng, length: int) -> List[TraceRecord]:
        benchmark = rng.choice(_FUZZ_BENCHMARKS)
        # Via the columnar trace store when REPRO_TRACE_CACHE is set, so
        # repeated fuzz runs over the same seed reuse on-disk traces.
        return cached_records(
            benchmark, (self.seed, "trace", rng.getrandbits(32)), length
        )

    def _cppc_params(self, rng) -> dict:
        num_pairs = rng.choice((1, 1, 2, 4, 8))
        byte_shifting = True if num_pairs < 8 else rng.random() < 0.5
        return {
            "scheme": "cppc",
            "num_pairs": num_pairs,
            "byte_shifting": byte_shifting,
            "num_classes": 8,
        }

    def _gen_replay(self, rng, index: int) -> Scenario:
        # The batch engine models CPPC over 64-bit units under LRU; the
        # grammar stays inside that envelope and varies everything else.
        return Scenario(
            kind="replay",
            seed=index,
            records=self._trace(rng, rng.randrange(120, 360)),
            **self._geometry(rng),
            **self._cppc_params(rng),
        )

    def _gen_recovery(self, rng, index: int) -> Scenario:
        length = rng.randrange(100, 280)
        records = self._trace(rng, length)
        faults: List[FaultOp] = []
        for _ in range(rng.choice((1, 1, 1, 2))):
            # Leave a tail of references after the last fault so the
            # corruption is actually read back (recovery needs a trigger).
            at = rng.randrange(length // 4, length - length // 4)
            kind = weighted_choice(
                rng, {"temporal": 0.55, "check": 0.2, "spatial": 0.25}
            )
            faults.append(
                FaultOp(
                    at=at,
                    kind=kind,
                    target=rng.getrandbits(16),
                    bit=rng.randrange(64),
                    dirty_only=kind != "spatial" and rng.random() < 0.7,
                    way=rng.randrange(4),
                    top_row=rng.getrandbits(8),
                    left_col=rng.randrange(56),
                    height=rng.randrange(1, 9),
                    width=rng.randrange(1, 9),
                )
            )
        faults.sort(key=lambda op: op.at)
        return Scenario(
            kind="recovery",
            seed=index,
            records=records,
            faults=faults,
            policy=rng.choice(("lru", "lru", "fifo", "random")),
            **self._geometry(rng),
            **self._cppc_params(rng),
        )

    def _gen_campaign(self, rng, index: int) -> Scenario:
        fault_kind = rng.choice(("temporal", "spatial"))
        return Scenario(
            kind="campaign",
            seed=rng.getrandbits(32),
            scheme=weighted_choice(
                rng,
                {
                    "cppc": 0.5,
                    "parity": 0.2,
                    "secded": 0.15,
                    "twod": 0.1,
                    "none": 0.05,
                },
            ),
            benchmark=rng.choice(_FUZZ_BENCHMARKS),
            trials=rng.randrange(3, 7),
            warmup_references=rng.randrange(200, 700),
            post_fault_references=rng.randrange(150, 400),
            fault_kind=fault_kind,
            spatial_shape=(rng.randrange(2, 9), rng.randrange(2, 9)),
            dirty_only=fault_kind == "temporal" and rng.random() < 0.4,
            target_level=rng.choice(("L1D", "L1D", "L2")),
        )

    def _gen_chaos(self, rng, index: int) -> Scenario:
        # Small campaigns only: every chaos trial may cost a worker
        # respawn, so the grammar trades trace length for fault variety.
        # Kinds are any non-empty subset of the survivable worker faults
        # plus the checkpoint I/O faults the appender self-heals.
        survivable = ("kill", "delay", "enospc")
        kinds = tuple(k for k in survivable if rng.random() < 0.5)
        if not kinds:
            kinds = (rng.choice(survivable),)
        return Scenario(
            kind="chaos",
            seed=rng.getrandbits(32),
            scheme=rng.choice(("cppc", "parity", "secded", "none")),
            benchmark=rng.choice(_FUZZ_BENCHMARKS),
            trials=rng.randrange(2, 5),
            warmup_references=rng.randrange(100, 400),
            post_fault_references=rng.randrange(80, 250),
            fault_kind=rng.choice(("temporal", "spatial")),
            spatial_shape=(rng.randrange(2, 9), rng.randrange(2, 9)),
            target_level="L1D",
            chaos_rate=rng.choice((0.5, 1.0)),
            chaos_kinds=kinds,
        )

    def _gen_timing(self, rng, index: int) -> Scenario:
        # The timing collector rides on the batch engine (64-bit L1
        # units, LRU); the grammar varies geometry, trace and the core
        # parameters the backlog recurrence is most sensitive to.
        return Scenario(
            kind="timing",
            seed=index,
            records=self._trace(rng, rng.randrange(120, 360)),
            issue_width=rng.choice((1, 2, 3, 4, 4, 7)),
            store_buffer=rng.choice((1, 2, 2, 3, 8)),
            **self._geometry(rng),
        )

    def _gen_doublefault(self, rng, index: int) -> Scenario:
        return Scenario(
            kind="doublefault",
            seed=rng.getrandbits(32),
            samples=rng.randrange(40, 90),
            num_pairs=rng.choice((1, 1, 1, 2, 4)),
            parity_ways=8,
            size_bytes=rng.choice((2048, 4096)),
        )
