"""Delta-debugging shrinker and reproducer (de)serialization.

A raw fuzz failure is a few hundred trace records plus a fault plan —
too big to eyeball.  :func:`shrink_scenario` minimizes it with the
classic ddmin algorithm (Zeller & Hildebrandt): first the trace, then
the fault plan, then the scalar cost knobs (trials, warmup lengths,
sample counts), re-running the failing predicate after every cut and
keeping only cuts that still fail.  The result serializes as a
self-contained JSON reproducer under ``tests/corpus/`` whose filename is
a digest of its canonical form — re-finding the same minimal case never
creates a duplicate file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .oracles import Divergence
from .scenario import FORMAT_VERSION, Scenario

#: Predicate fed to the shrinker: non-empty result == still failing.
FailureCheck = Callable[[Scenario], List[Divergence]]


class _Budget:
    """Caps shrinking by wall-clock and by predicate invocations."""

    def __init__(self, max_seconds: Optional[float], max_tests: int):
        self.deadline = None if max_seconds is None else time.monotonic() + max_seconds
        self.tests_left = max_tests

    def spent(self) -> bool:
        if self.tests_left <= 0:
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    def charge(self) -> None:
        self.tests_left -= 1


def _ddmin(
    items: Sequence,
    still_fails: Callable[[List], bool],
    budget: _Budget,
) -> List:
    """Minimal failing sublist of ``items`` under ``still_fails``.

    Standard ddmin: partition into ``n`` chunks, try each chunk alone,
    then each complement; on progress reset granularity, otherwise
    double it until chunks are single items.  The budget bounds total
    predicate calls, so worst-case quadratic inputs degrade to a
    partially-shrunk (still failing) result instead of hanging.
    """
    items = list(items)
    n = 2
    while len(items) >= 2 and not budget.spent():
        chunk = max(1, len(items) // n)
        subsets = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        progressed = False
        for i, subset in enumerate(subsets):
            if budget.spent():
                break
            complement = [x for j, s in enumerate(subsets) if j != i for x in s]
            # Try the complement first (drops the most per test); fall
            # back to the subset itself.
            for attempt in (complement, subset):
                if not attempt or len(attempt) == len(items):
                    continue
                if budget.spent():
                    break
                budget.charge()
                if still_fails(attempt):
                    items = attempt
                    n = max(2, len(subsets) - 1) if attempt is complement else 2
                    progressed = True
                    break
            if progressed:
                break
        if not progressed:
            if chunk == 1:
                break
            n = min(len(items), n * 2)
    # Final single-item elimination pass (cheap polish).
    i = 0
    while i < len(items) and len(items) > 1 and not budget.spent():
        candidate = items[:i] + items[i + 1 :]
        budget.charge()
        if still_fails(candidate):
            items = candidate
        else:
            i += 1
    return items


def _shrink_int_field(
    scenario: Scenario,
    field: str,
    floor: int,
    fails: FailureCheck,
    budget: _Budget,
) -> Scenario:
    """Binary-search ``field`` down toward ``floor`` while still failing."""
    low, high = floor, getattr(scenario, field)
    best = scenario
    while low < high and not budget.spent():
        mid = (low + high) // 2
        candidate = dataclasses.replace(best, **{field: mid})
        budget.charge()
        if fails(candidate):
            best, high = candidate, mid
        else:
            low = mid + 1
    return best


#: Per-kind (field, floor) cost knobs the field pass may reduce.
_FIELD_FLOORS = {
    "campaign": (
        ("trials", 1),
        ("warmup_references", 16),
        ("post_fault_references", 8),
    ),
    "doublefault": (("samples", 8),),
    "chaos": (
        ("trials", 1),
        ("warmup_references", 16),
        ("post_fault_references", 8),
    ),
}


def shrink_scenario(
    scenario: Scenario,
    fails: FailureCheck,
    *,
    max_seconds: Optional[float] = 30.0,
    max_tests: int = 250,
) -> Scenario:
    """Minimize a failing scenario; the result is guaranteed to fail.

    Args:
        scenario: a scenario for which ``fails(scenario)`` is non-empty.
        fails: the divergence predicate (usually
            :func:`~repro.crosscheck.oracles.run_scenario`, possibly
            under an active mutation).
        max_seconds / max_tests: shrinking budget; exhausting it returns
            the best (smallest still-failing) scenario found so far.
    """
    if not fails(scenario):
        raise ConfigurationError(
            "shrink_scenario needs a failing scenario to start from"
        )
    budget = _Budget(max_seconds, max_tests)
    best = scenario
    if best.records:
        records = _ddmin(
            best.records,
            lambda recs: bool(
                fails(dataclasses.replace(best, records=list(recs)))
            ),
            budget,
        )
        best = dataclasses.replace(best, records=list(records))
    if len(best.faults) > 1:
        plan = _ddmin(
            best.faults,
            lambda ops: bool(fails(dataclasses.replace(best, faults=list(ops)))),
            budget,
        )
        best = dataclasses.replace(best, faults=list(plan))
    for field, floor in _FIELD_FLOORS.get(best.kind, ()):
        best = _shrink_int_field(best, field, floor, fails, budget)
    return best


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------
def reproducer_payload(scenario: Scenario, divergences: Sequence[Divergence]) -> dict:
    """The JSON body of one corpus reproducer."""
    return {
        "format_version": FORMAT_VERSION,
        "scenario": scenario.to_json(),
        "divergences": [d.to_json() for d in divergences],
    }


def reproducer_name(scenario: Scenario) -> str:
    """Deterministic corpus filename for ``scenario``.

    A digest of the canonical scenario JSON: the same minimal case
    always maps to the same file, so nightly runs that rediscover a
    known failure overwrite rather than accumulate.
    """
    digest = hashlib.sha256(scenario.canonical_json().encode("ascii")).hexdigest()[:12]
    return f"repro-{scenario.kind}-{digest}.json"


def save_reproducer(
    scenario: Scenario,
    divergences: Sequence[Divergence],
    corpus_dir,
) -> Path:
    """Write (or overwrite) the reproducer file; returns its path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / reproducer_name(scenario)
    path.write_text(
        json.dumps(reproducer_payload(scenario, divergences), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def load_reproducer(path) -> Tuple[Scenario, List[dict]]:
    """Parse one reproducer file into its scenario and recorded details."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported reproducer format version {version!r}"
        )
    scenario = Scenario.from_json(data["scenario"])
    return scenario, list(data.get("divergences", []))


def corpus_files(corpus_dir) -> List[Path]:
    """Every reproducer JSON under ``corpus_dir``, sorted by name."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("repro-*.json"))
