"""CACTI-style energy, latency and area models plus per-scheme accounting."""

from .area import AreaReport, area_comparison, scheme_area
from .cacti import CacheEnergyModel
from .model import (
    SCHEMES,
    EnergyBreakdown,
    energy_model_for,
    normalized_energies,
    scheme_energy,
)

__all__ = [
    "AreaReport",
    "area_comparison",
    "scheme_area",
    "CacheEnergyModel",
    "SCHEMES",
    "EnergyBreakdown",
    "energy_model_for",
    "normalized_energies",
    "scheme_energy",
]
