"""Storage/area accounting per protection scheme (paper Section 5.1).

Area is reported as redundant storage bits plus small logic equivalents,
relative to the unprotected data array.  The ordering the paper claims —
parity < CPPC << SECDED and two-dimensional parity (which both add wide
check storage *and* correction logic / an extra parity row) — falls out
of the counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..coding import SecdedCode
from ..cppc.shifting import BarrelShifterModel
from ..errors import ConfigurationError
from ..memsim.hierarchy import CacheGeometry

#: Rough gate-equivalent storage cost of one 2:1 multiplexer, expressed
#: in SRAM-bit equivalents for area bookkeeping.
_MUX_BIT_EQUIVALENT = 0.5
#: Gate-equivalent cost of one SECDED encoder/decoder tree per check bit
#: column, in SRAM-bit equivalents.
_SECDED_LOGIC_BITS_PER_UNIT = 24.0


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """Redundant storage attributable to one scheme on one cache."""

    scheme: str
    check_storage_bits: float
    register_bits: float = 0.0
    logic_bit_equivalents: float = 0.0

    @property
    def total_bits(self) -> float:
        """All redundancy in SRAM-bit equivalents."""
        return self.check_storage_bits + self.register_bits + self.logic_bit_equivalents

    def overhead_vs_data(self, data_bits: int) -> float:
        """Redundancy as a fraction of the protected data array."""
        return self.total_bits / data_bits


def scheme_area(
    scheme: str,
    geometry: CacheGeometry,
    *,
    num_register_pairs: int = 1,
) -> AreaReport:
    """Area report for one scheme on one cache geometry."""
    units = geometry.total_units
    unit_bits = geometry.unit_bytes * 8

    if scheme == "parity":
        return AreaReport(scheme=scheme, check_storage_bits=units * 8.0)

    if scheme == "cppc":
        shifter = BarrelShifterModel(width_bits=unit_bits)
        # Two shifters (R1 and R2 paths) per register pair.
        logic = 2 * num_register_pairs * shifter.num_muxes * _MUX_BIT_EQUIVALENT
        return AreaReport(
            scheme=scheme,
            check_storage_bits=units * 8.0,
            register_bits=2.0 * num_register_pairs * unit_bits,
            logic_bit_equivalents=logic,
        )

    if scheme == "secded":
        check_bits = SecdedCode(data_bits=unit_bits).check_bits
        return AreaReport(
            scheme=scheme,
            check_storage_bits=units * float(check_bits),
            logic_bit_equivalents=units * _SECDED_LOGIC_BITS_PER_UNIT / 64.0,
        )

    if scheme == "2d-parity":
        # Horizontal parity everywhere plus one vertical parity row.
        return AreaReport(
            scheme=scheme,
            check_storage_bits=units * 8.0,
            register_bits=float(unit_bits),
        )

    raise ConfigurationError(f"unknown scheme {scheme!r}")


def area_comparison(
    geometry: CacheGeometry, *, num_register_pairs: int = 1
) -> Dict[str, float]:
    """Overhead fraction of each scheme vs the raw data array."""
    data_bits = geometry.size_bytes * 8
    return {
        scheme: scheme_area(
            scheme, geometry, num_register_pairs=num_register_pairs
        ).overhead_vs_data(data_bits)
        for scheme in ("parity", "cppc", "secded", "2d-parity")
    }
