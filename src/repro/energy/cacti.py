"""CACTI-style analytical cache energy / latency / area model.

The paper feeds event counts into CACTI 5.3 and reports *relative*
energies.  This model reproduces CACTI's role: it decomposes a cache
access into decoder, wordline, bitline, sense-amp, tag and output
components with simple physical scaling, and it exposes the one knob the
paper's comparison turns on — physical bit interleaving multiplies the
precharged-bitline energy by the interleave degree (Section 6.2, after
[12]).

Two coefficients are calibrated against the paper's CACTI outputs: the
absolute access energy (240 pJ for a 32KB 2-way cache at 90nm, Section
4.8) and the bitline share of access energy (~6% at 32KB growing slowly
with cache size, implied by SECDED's +42%/+68% L1/L2 overheads).  The
calibration is documented in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ConfigurationError

#: Reference point from the paper: a 32KB 2-way cache at 90nm costs about
#: 240 pJ per access (Section 4.8).
_REFERENCE_ENERGY_PJ = 240.0
_REFERENCE_TECH_NM = 90.0
_REFERENCE_SETS = 512
_REFERENCE_ACCESS_BITS = 72.0  # 64 data + 8 check
_REFERENCE_WAYS = 2

#: Bitline share of a reference access; SECDED's x8 interleaving turns
#: this into the paper's +42% L1 overhead (7 x 6%).
_BITLINE_SHARE_REFERENCE = 0.06
#: Width-independent share of an access (decoder, tag match, wordline
#: drive, output mux control).  With the remainder split per-bit, wider
#: accesses cost sub-linearly more — a whole-line read of the paper's L1
#: comes out at ~2.7x a word read, and the bitline share of an L2 access
#: lands at ~10%, matching SECDED's +68% L2 overhead.
_FIXED_SHARE_REFERENCE = 0.45


@dataclasses.dataclass(frozen=True)
class CacheEnergyModel:
    """Per-operation dynamic energies for one cache configuration.

    Attributes:
        size_bytes / ways / block_bytes: cache shape.
        unit_bytes: protection-unit width (normal access granularity).
        check_bits_per_unit: redundant bits stored and moved per unit.
        tech_nm: feature size (energy scales as (tech/90)^2).
        bitline_interleave: physical interleaving degree (1 = none); the
            precharged-bitline energy is multiplied by this factor.
    """

    size_bytes: int
    ways: int
    block_bytes: int
    unit_bytes: int = 8
    check_bits_per_unit: int = 8
    tech_nm: float = 32.0
    bitline_interleave: int = 1

    def __post_init__(self):
        if self.size_bytes % (self.ways * self.block_bytes):
            raise ConfigurationError("size must divide into ways * block")
        if self.bitline_interleave < 1:
            raise ConfigurationError("interleave degree must be >= 1")
        if self.tech_nm <= 0:
            raise ConfigurationError("tech_nm must be positive")

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Sets in the array."""
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def unit_access_bits(self) -> float:
        """Bits moved for one protection-unit access (data + check)."""
        return self.unit_bytes * 8 + self.check_bits_per_unit

    @property
    def line_access_bits(self) -> float:
        """Bits moved for a whole-line access."""
        units = self.block_bytes // self.unit_bytes
        return units * self.unit_access_bits

    def _tech_scale(self) -> float:
        return (self.tech_nm / _REFERENCE_TECH_NM) ** 2

    def _fixed_pj(self) -> float:
        """Width-independent access cost (decoder, tag, wordline)."""
        return _REFERENCE_ENERGY_PJ * _FIXED_SHARE_REFERENCE

    def _per_bit_other_pj(self) -> float:
        """Non-bitline per-bit energy (sense amps, write drivers, output)."""
        ref_other = _REFERENCE_ENERGY_PJ * (
            1.0 - _BITLINE_SHARE_REFERENCE - _FIXED_SHARE_REFERENCE
        )
        return ref_other / (_REFERENCE_ACCESS_BITS * _REFERENCE_WAYS)

    def _per_bit_bitline_pj(self) -> float:
        """Bitline precharge + swing energy per accessed bit."""
        ref_bitline = _REFERENCE_ENERGY_PJ * _BITLINE_SHARE_REFERENCE
        return ref_bitline / (_REFERENCE_ACCESS_BITS * _REFERENCE_WAYS)

    def _access_energy_pj(self, access_bits: float) -> float:
        bits = access_bits * self.ways  # all ways are cycled in parallel
        other = bits * self._per_bit_other_pj()
        bitline = bits * self._per_bit_bitline_pj() * self.bitline_interleave
        return (self._fixed_pj() + other + bitline) * self._tech_scale()

    # ------------------------------------------------------------------
    # Public per-operation energies
    # ------------------------------------------------------------------
    @property
    def read_unit_pj(self) -> float:
        """Read of one protection unit (a load, or one read-before-write)."""
        return self._access_energy_pj(self.unit_access_bits)

    @property
    def write_unit_pj(self) -> float:
        """Write of one protection unit (a store)."""
        # Writes drive only the selected way's cells but still precharge
        # the set's bitlines; treat it as the same array cycle.
        return self._access_energy_pj(self.unit_access_bits)

    @property
    def read_line_pj(self) -> float:
        """Read of a whole line (2-D parity's per-miss read-before-write)."""
        return self._access_energy_pj(self.line_access_bits)

    @property
    def write_line_pj(self) -> float:
        """Write of a whole line (a fill)."""
        return self._access_energy_pj(self.line_access_bits)

    @property
    def bitline_fraction(self) -> float:
        """Share of a unit access spent on bitlines (diagnostics)."""
        bits = self.unit_access_bits * self.ways
        bitline = bits * self._per_bit_bitline_pj() * self.bitline_interleave
        total = bitline + bits * self._per_bit_other_pj() + self._fixed_pj()
        return bitline / total

    # ------------------------------------------------------------------
    # Latency and area proxies
    # ------------------------------------------------------------------
    @property
    def access_time_ns(self) -> float:
        """Access latency estimate (decoder + wordline + bitline + sense).

        Calibrated to CACTI's 0.78ns for an 8KB direct-mapped cache at
        90nm (Section 4.8), scaling with array height and feature size.
        """
        ref_ns = 0.78
        ref_sets = 8 * 1024 // 32  # 8KB direct-mapped, 32B lines
        height_scale = math.sqrt(self.num_sets / ref_sets)
        return ref_ns * height_scale * (self.tech_nm / _REFERENCE_TECH_NM)

    @property
    def data_array_bits(self) -> int:
        """Raw data storage bits."""
        return self.size_bytes * 8

    @property
    def check_array_bits(self) -> int:
        """Check-bit storage across the array."""
        units = self.size_bytes // self.unit_bytes
        return units * self.check_bits_per_unit
