"""Per-scheme dynamic energy accounting (paper Section 6.2).

The paper's method: simulate once, count the operations each protection
scheme performs per access, multiply by CACTI per-operation energies.
:func:`scheme_energy` implements the per-scheme operation mix:

============  =================================================================
scheme        operations charged
============  =================================================================
1-D parity    loads x unit-read + stores x unit-write
CPPC          parity + (stores to dirty units) x unit-read (read-before-write)
              + barrel-shifter energy on every store
SECDED        parity's mix with bitlines multiplied by the interleave degree
2-D parity    parity + ALL stores x unit-read + ALL misses x line-read
============  =================================================================

Write-back traffic is not charged, matching the paper ("we do not count
the energy spent in write-back operations").
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..coding import SecdedCode
from ..cppc.shifting import BarrelShifterModel
from ..errors import ConfigurationError
from ..memsim.hierarchy import CacheGeometry
from ..memsim.stats import CacheStats
from .cacti import CacheEnergyModel

#: Scheme identifiers accepted by :func:`scheme_energy`.
SCHEMES = ("parity", "cppc", "secded", "2d-parity")


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic energy of one scheme on one cache for one workload (pJ)."""

    scheme: str
    base_pj: float
    read_before_write_pj: float = 0.0
    miss_line_read_pj: float = 0.0
    shifter_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        """Total dynamic energy."""
        return (
            self.base_pj
            + self.read_before_write_pj
            + self.miss_line_read_pj
            + self.shifter_pj
        )


def _check_bits_for(scheme: str, unit_bytes: int) -> int:
    """Check bits per unit for the paper's Section 6 configurations."""
    if scheme == "secded":
        return SecdedCode(data_bits=unit_bytes * 8).check_bits
    # parity / cppc / 2d-parity all store 8 interleaved parity bits.
    return 8


def energy_model_for(
    scheme: str, geometry: CacheGeometry, tech_nm: float = 32.0
) -> CacheEnergyModel:
    """CACTI model configured for one scheme on one cache geometry."""
    if scheme not in SCHEMES:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; choose from {SCHEMES}"
        )
    return CacheEnergyModel(
        size_bytes=geometry.size_bytes,
        ways=geometry.ways,
        block_bytes=geometry.block_bytes,
        unit_bytes=geometry.unit_bytes,
        check_bits_per_unit=_check_bits_for(scheme, geometry.unit_bytes),
        tech_nm=tech_nm,
        bitline_interleave=8 if scheme == "secded" else 1,
    )


def scheme_energy(
    scheme: str,
    stats: CacheStats,
    geometry: CacheGeometry,
    tech_nm: float = 32.0,
) -> EnergyBreakdown:
    """Dynamic energy ``scheme`` would spend on the counted operations.

    ``stats`` may come from a single neutral (unprotected) simulation: the
    functional access stream is identical across schemes, so one run
    prices all four — exactly the paper's methodology.
    """
    model = energy_model_for(scheme, geometry, tech_nm)
    base = stats.loads * model.read_unit_pj + stats.stores * model.write_unit_pj

    if scheme in ("parity", "secded"):
        return EnergyBreakdown(scheme=scheme, base_pj=base)

    if scheme == "cppc":
        rbw = stats.stores_to_dirty_units * model.read_unit_pj
        shifter = BarrelShifterModel(width_bits=geometry.unit_bytes * 8)
        # Both R1 (every store) and R2 (dirty stores) rotations; the [9]
        # reference numbers are 90nm, scaled like the array energy.
        rotations = stats.stores + stats.stores_to_dirty_units
        shifter_pj = rotations * shifter.energy_pj * (tech_nm / 90.0) ** 2
        return EnergyBreakdown(
            scheme=scheme,
            base_pj=base,
            read_before_write_pj=rbw,
            shifter_pj=shifter_pj,
        )

    # 2-D parity: read-before-write on every store, and the whole victim
    # line must be read on every miss to update the vertical parity.
    rbw = stats.stores * model.read_unit_pj
    line_reads = stats.misses * model.read_line_pj
    return EnergyBreakdown(
        scheme=scheme,
        base_pj=base,
        read_before_write_pj=rbw,
        miss_line_read_pj=line_reads,
    )


def normalized_energies(
    stats: CacheStats, geometry: CacheGeometry, tech_nm: float = 32.0
) -> Dict[str, float]:
    """Every scheme's total energy normalised to 1-D parity (Figures 11/12)."""
    baseline = scheme_energy("parity", stats, geometry, tech_nm).total_pj
    if baseline <= 0:
        raise ConfigurationError("cannot normalise: baseline energy is zero")
    return {
        scheme: scheme_energy(scheme, stats, geometry, tech_nm).total_pj / baseline
        for scheme in SCHEMES
    }
