"""Exception hierarchy for the CPPC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class AlignmentError(ReproError):
    """A memory access violated the alignment rules of the simulator."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class UncorrectableError(ReproError):
    """An error was detected that the active protection scheme cannot correct.

    This models a DUE (Detected Unrecoverable Error) — the machine-check
    exception of paper Section 4.4 step 7.  The simulator raises it so fault
    campaigns can classify the outcome.
    """

    def __init__(self, message: str, *, detail: object = None):
        super().__init__(message)
        self.detail = detail


class FaultLocatorError(UncorrectableError):
    """The spatial fault locator could not uniquely locate the faulty bits."""


class TraceFormatError(ReproError):
    """A trace record or trace file could not be parsed."""


class CampaignRuntimeError(ReproError, RuntimeError):
    """Base class for failures of the campaign *execution layer*.

    These errors are about running trials (worker processes, timeouts,
    checkpoints), never about the simulated architecture itself — an
    :class:`UncorrectableError` is a modeled machine check, a
    :class:`CampaignRuntimeError` is the harness breaking.  Instances
    cross process boundaries, so subclasses must stay picklable; the
    ``__reduce__`` here preserves keyword state through the round trip.
    """

    def __reduce__(self):
        return (_rebuild_error, (self.__class__, self.args, self.__dict__))


def _rebuild_error(cls, args, state):
    """Unpickle helper: rebuild a :class:`CampaignRuntimeError` subclass."""
    err = cls.__new__(cls)
    Exception.__init__(err, *args)
    err.__dict__.update(state)
    return err


class TrialCrashError(CampaignRuntimeError):
    """A campaign trial raised an unexpected exception (or its worker died).

    Carries the trial index and derived seed so drivers can report
    exactly which trial failed and reproduce it in isolation.
    """

    def __init__(self, message: str, *, trial_index=None, seed=None):
        super().__init__(message)
        self.trial_index = trial_index
        self.seed = seed


class TrialTimeoutError(CampaignRuntimeError):
    """A campaign trial exceeded its wall-clock budget and was killed."""

    def __init__(self, message: str, *, trial_index=None, seed=None,
                 timeout_s=None):
        super().__init__(message)
        self.trial_index = trial_index
        self.seed = seed
        self.timeout_s = timeout_s


class TrialHungError(CampaignRuntimeError):
    """A campaign trial's worker stopped heartbeating and was killed.

    Distinct from :class:`TrialTimeoutError`: a hung trial's worker is
    *frozen* (SIGSTOP, deadlock, livelock) rather than merely slow — its
    heartbeat file stopped updating while wall-clock budget may well
    have remained.
    """

    def __init__(self, message: str, *, trial_index=None, seed=None,
                 stale_s=None):
        super().__init__(message)
        self.trial_index = trial_index
        self.seed = seed
        self.stale_s = stale_s


class TrialQuarantinedError(CampaignRuntimeError):
    """A trial exhausted its retry budget and was quarantined.

    Raised only when the circuit breaker (``quarantine=True``) is armed:
    instead of the campaign aborting (or silently degrading), the trial
    is set aside with its last error's classification preserved in
    ``cause_kind`` so the degradation report can account for it.
    """

    def __init__(self, message: str, *, trial_index=None, seed=None,
                 attempts=None, cause_kind=None):
        super().__init__(message)
        self.trial_index = trial_index
        self.seed = seed
        self.attempts = attempts
        self.cause_kind = cause_kind


class CheckpointCorruptError(CampaignRuntimeError):
    """A campaign checkpoint could not be trusted (bad digest, torn
    record in the middle of the log, or a manifest that does not match
    the campaign being resumed)."""


class CheckpointWarning(UserWarning):
    """A checkpoint was readable but imperfect (e.g. a torn tail line
    dropped on load); the affected trial will simply re-execute."""


class SnapshotError(ReproError):
    """A simulator state snapshot could not be taken or restored.

    Raised by :mod:`repro.memsim.snapshot` when a cache uses a protection
    scheme or replacement policy the snapshot layer does not know how to
    serialize, or when a snapshot is restored into a hierarchy whose
    geometry or scheme does not match the one it was taken from.
    """


class EquivalenceError(SimulationError):
    """The batch fast path and the scalar simulator disagreed.

    Raised by :class:`repro.workloads.replay.FastReplay` when its
    cross-check finds any divergence between the two engines; the message
    lists every mismatching line, statistic, register or memory block.
    """

    def __init__(self, message: str, *, mismatches=None):
        super().__init__(message)
        self.mismatches = list(mismatches or [])
