"""Exception hierarchy for the CPPC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class AlignmentError(ReproError):
    """A memory access violated the alignment rules of the simulator."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class UncorrectableError(ReproError):
    """An error was detected that the active protection scheme cannot correct.

    This models a DUE (Detected Unrecoverable Error) — the machine-check
    exception of paper Section 4.4 step 7.  The simulator raises it so fault
    campaigns can classify the outcome.
    """

    def __init__(self, message: str, *, detail: object = None):
        super().__init__(message)
        self.detail = detail


class FaultLocatorError(UncorrectableError):
    """The spatial fault locator could not uniquely locate the faulty bits."""


class TraceFormatError(ReproError):
    """A trace record or trace file could not be parsed."""


class EquivalenceError(SimulationError):
    """The batch fast path and the scalar simulator disagreed.

    Raised by :class:`repro.workloads.replay.FastReplay` when its
    cross-check finds any divergence between the two engines; the message
    lists every mismatching line, statistic, register or memory block.
    """

    def __init__(self, message: str, *, mismatches=None):
        super().__init__(message)
        self.mismatches = list(mismatches or [])
