"""Fault models, injection, and Monte-Carlo campaign machinery."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    Outcome,
    TrialFailure,
    TrialResult,
)
from .fitrate import FitEstimate, estimate_fit
from .injector import FaultInjector, InjectionRecord
from .models import BitFlip, SpatialFault, TemporalFault
from .schemes import SCHEMES, SchemeFactory, scheme_factory
from .warmstate import (
    WarmState,
    build_warm_state,
    clear_warm_cache,
    warm_cache,
    warm_key,
    warm_state_for,
)

__all__ = [
    "WarmState",
    "build_warm_state",
    "clear_warm_cache",
    "warm_cache",
    "warm_key",
    "warm_state_for",
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "Outcome",
    "TrialFailure",
    "TrialResult",
    "SCHEMES",
    "SchemeFactory",
    "scheme_factory",
    "FitEstimate",
    "estimate_fit",
    "FaultInjector",
    "InjectionRecord",
    "BitFlip",
    "SpatialFault",
    "TemporalFault",
]
