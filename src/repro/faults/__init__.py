"""Fault models, injection, and Monte-Carlo campaign machinery."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    Outcome,
    TrialResult,
)
from .fitrate import FitEstimate, estimate_fit
from .injector import FaultInjector, InjectionRecord
from .models import BitFlip, SpatialFault, TemporalFault

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "Outcome",
    "TrialResult",
    "FitEstimate",
    "estimate_fit",
    "FaultInjector",
    "InjectionRecord",
    "BitFlip",
    "SpatialFault",
    "TemporalFault",
]
