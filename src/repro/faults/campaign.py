"""Monte-Carlo fault-injection campaigns with outcome classification.

Each trial builds a fresh hierarchy, warms it up with a workload prefix
(tracking a golden memory image), injects one fault, keeps executing, and
classifies the outcome:

* ``DUE`` — the protection scheme raised
  :class:`~repro.errors.UncorrectableError` (machine check);
* ``SDC`` — a load returned wrong data, or wrong data survived to memory
  after the final flush, without a DUE (includes miscorrections such as
  the Section 4.7 aliasing hazard);
* ``CORRECTED`` — a fault was detected and everything ended
  architecturally correct;
* ``BENIGN`` — the flipped bits were overwritten or discarded before any
  access noticed them.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    ConfigurationError,
    EquivalenceError,
    TrialCrashError,
    UncorrectableError,
)
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.protection import CacheProtection
from ..util.rng import split_seed
from ..workloads.replay import GoldenMemory, TraceReplayer
from ..workloads.spec import make_workload
from .injector import FaultInjector, InjectionRecord


class Outcome(enum.Enum):
    """Architectural result of one injected fault."""

    BENIGN = "benign"
    CORRECTED = "corrected"
    DUE = "due"
    SDC = "sdc"


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one injection campaign.

    Attributes:
        scheme_factory: builds a fresh protection scheme per level per
            trial (signature: level name, unit bits).
        benchmark: workload profile name.
        trials: number of injections.
        warmup_references: references replayed before the injection.
        post_fault_references: references replayed after it.
        fault_kind: "temporal" (one bit) or "spatial" (a rectangle).
        spatial_shape: (height, width) for spatial faults.
        dirty_only: restrict temporal faults to dirty units.
        target_level: "L1D" or "L2".
        seed: base seed; trial ``i`` derives its own streams.
        shared_warmup: drive every trial with the *same* workload trace
            (seeded once per campaign) instead of a fresh trace per
            trial.  Injection seeds stay per-trial, so trials remain
            independent samples over fault sites; sharing the trace is
            what lets the snapshot-fork fast path warm up once (see
            :mod:`repro.faults.warmstate`).
    """

    scheme_factory: Callable[[str, int], CacheProtection]
    benchmark: str = "gcc"
    trials: int = 50
    warmup_references: int = 3000
    post_fault_references: int = 2000
    fault_kind: str = "temporal"
    spatial_shape: Tuple[int, int] = (8, 8)
    dirty_only: bool = False
    target_level: str = "L1D"
    seed: int = 0
    shared_warmup: bool = False

    def __post_init__(self):
        if self.fault_kind not in ("temporal", "spatial"):
            raise ConfigurationError(
                f"fault_kind must be 'temporal' or 'spatial', got {self.fault_kind}"
            )
        if self.target_level not in ("L1D", "L2"):
            raise ConfigurationError(
                f"target_level must be 'L1D' or 'L2', got {self.target_level}"
            )
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")

    def trial_seed(self, trial: int) -> int:
        """Stable 64-bit identity of trial ``trial``'s seed material.

        Derived by :func:`repro.util.rng.split_seed`, so it is identical
        across processes and runs — checkpoints key on it, retry jitter
        derives from it, and resumed campaigns verify it before trusting
        a recorded trial.
        """
        return split_seed(self.seed, "trial", trial)

    def workload_seed(self, trial: int):
        """Seed material for trial ``trial``'s workload trace.

        Per-trial by default; one shared stream under ``shared_warmup``
        (the injection seed stays per-trial either way).
        """
        if self.shared_warmup:
            return (self.seed, "shared-warmup")
        return (self.seed, trial)


@dataclasses.dataclass
class TrialResult:
    """One injection's classification and evidence."""

    outcome: Outcome
    injected_bits: int = 0
    touched_units: int = 0
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class TrialFailure:
    """A trial the execution layer could not complete.

    Recorded after the retry policy is exhausted, so a campaign degrades
    to partial results with explicit accounting instead of dying.

    Attributes:
        trial_index: which trial failed.
        seed: the trial's derived seed identity
            (:meth:`CampaignConfig.trial_seed`).
        kind: ``"crash"``, ``"timeout"``, ``"hung"`` (heartbeat lost) or
            ``"quarantined"`` (circuit breaker tripped).
        attempts: how many attempts were made before giving up.
        message: last error message observed.
    """

    trial_index: int
    seed: int
    kind: str
    attempts: int
    message: str = ""


@dataclasses.dataclass
class CampaignResult:
    """Aggregated campaign outcome counts plus execution-layer failures.

    ``trials`` holds every *completed* trial; ``failures`` holds trials
    the runtime gave up on (crash/timeout after retries).  Outcome rates
    are over completed trials only, so partial campaigns stay valid
    estimates with an explicit denominator.

    ``degradation`` is the runtime's structured account of absorbed
    faults (chaos injections, lane kills, quarantined trials, checkpoint
    self-heals; see :class:`repro.runtime.health.DegradationReport`) —
    populated only by runtime-backed runs with a resilience feature
    active, None otherwise.
    """

    config: CampaignConfig
    trials: List[TrialResult] = dataclasses.field(default_factory=list)
    failures: List[TrialFailure] = dataclasses.field(default_factory=list)
    degradation: Optional[dict] = None

    @property
    def counts(self) -> Dict[Outcome, int]:
        """Outcome histogram."""
        out = {o: 0 for o in Outcome}
        for t in self.trials:
            out[t.outcome] += 1
        return out

    @property
    def completed(self) -> int:
        """Number of trials that ran to classification."""
        return len(self.trials)

    @property
    def failed(self) -> int:
        """Number of trials abandoned by the execution layer."""
        return len(self.failures)

    @property
    def complete(self) -> bool:
        """True when every configured trial produced an outcome."""
        return not self.failures and len(self.trials) == self.config.trials

    def rate(self, outcome: Outcome) -> float:
        """Fraction of completed trials ending in ``outcome``."""
        return self.counts[outcome] / len(self.trials) if self.trials else 0.0

    def summary(self) -> Dict[str, float]:
        """Outcome rates keyed by name."""
        return {o.value: self.rate(o) for o in Outcome}

    def snapshot(self) -> dict:
        """JSON-exact view of the campaign outcome (shared metrics schema)."""
        return {
            "benchmark": self.config.benchmark,
            "fault_kind": self.config.fault_kind,
            "target_level": self.config.target_level,
            "configured_trials": self.config.trials,
            "completed": self.completed,
            "failed": self.failed,
            "counts": {o.value: n for o, n in self.counts.items()},
            "rates": self.summary(),
        }

    def export_metrics(self, registry, prefix: str = "campaign.") -> None:
        """Fold outcome counts/rates into a :class:`repro.obs.MetricsRegistry`."""
        for outcome, count in self.counts.items():
            registry.counter(f"{prefix}{outcome.value}").inc(count)
        for outcome, rate in self.summary().items():
            registry.gauge(f"{prefix}{outcome}_rate").set(rate)
        registry.counter(f"{prefix}completed").inc(self.completed)
        registry.counter(f"{prefix}failed").inc(self.failed)


class FaultCampaign:
    """Runs the Monte-Carlo campaign described by a :class:`CampaignConfig`.

    Args:
        config: the campaign parameters.
        obs: optional :class:`repro.obs.TraceSink`.  Sequential runs
            attach it to every trial's hierarchy (hit/miss/recovery
            events stream out live) and wrap each trial in a span.
        fast: fork every trial from a cached warm snapshot instead of
            re-simulating the warmup prefix (requires
            ``config.shared_warmup``; see :mod:`repro.faults.warmstate`).
            Per-trial results are bit-identical to the legacy path.
        fast_equivalence: ``"never"`` (default) trusts the fast path;
            ``"always"`` *also* runs the legacy warm-every-trial path for
            every trial and raises :class:`~repro.errors.EquivalenceError`
            on any per-trial divergence (validation harness mode).
    """

    EQUIVALENCE_MODES = ("never", "always")

    def __init__(
        self,
        config: CampaignConfig,
        obs=None,
        *,
        fast: bool = False,
        fast_equivalence: str = "never",
    ):
        if fast and not config.shared_warmup:
            raise ConfigurationError(
                "the snapshot-fork fast path needs shared_warmup=True: "
                "per-trial workload traces have nothing to share"
            )
        if fast_equivalence not in self.EQUIVALENCE_MODES:
            raise ConfigurationError(
                f"fast_equivalence must be one of {self.EQUIVALENCE_MODES}, "
                f"got {fast_equivalence!r}"
            )
        self.config = config
        self.obs = obs
        self.fast = fast
        self.fast_equivalence = fast_equivalence

    def _obs_or_none(self):
        return self.obs if self.obs is not None and self.obs.enabled else None

    def run(self, runtime=None) -> CampaignResult:
        """Execute every trial and return the aggregate.

        With ``runtime=None`` trials run sequentially in-process and any
        trial crash raises :class:`~repro.errors.TrialCrashError` (naming
        the trial) out of the sweep.  Passing a
        :class:`repro.runtime.CampaignRuntime` instead runs each trial in
        a worker subprocess with timeout/retry/checkpoint handling, and
        crashes degrade to :class:`TrialFailure` records.
        """
        if runtime is not None:
            from ..runtime.campaign import run_campaign

            return run_campaign(
                self.config,
                runtime,
                obs=self.obs,
                fast=self.fast,
                fast_equivalence=self.fast_equivalence,
            )
        obs = self._obs_or_none()
        result = CampaignResult(config=self.config)
        for trial in range(self.config.trials):
            start = time.perf_counter() if obs is not None else 0.0
            outcome = self._run_trial(trial)
            result.trials.append(outcome)
            if obs is not None:
                obs.span(
                    "campaign",
                    f"trial[{trial}]",
                    start,
                    time.perf_counter() - start,
                    {
                        "outcome": outcome.outcome.value,
                        "injected_bits": outcome.injected_bits,
                        "touched_units": outcome.touched_units,
                    },
                )
        return result

    # ------------------------------------------------------------------
    def _run_trial(self, trial: int, warm=None) -> TrialResult:
        """Run one trial; unexpected exceptions become structured crashes.

        ``KeyboardInterrupt`` is always re-raised (an interrupt is a user
        action, never an outcome); any other unexpected exception is
        wrapped in a :class:`TrialCrashError` carrying the trial index
        and derived seed so drivers can report *which* trial died.

        ``warm`` optionally supplies a pre-built
        :class:`~repro.faults.warmstate.WarmState` for the fast path
        (worker processes pass their digest-cached one); without it the
        fast path consults the module-level warm cache.
        """
        try:
            if self.fast:
                result = self._classify_trial_fast(trial, warm)
                if self.fast_equivalence == "always":
                    _check_trial_equivalence(
                        trial, result, self._classify_trial(trial)
                    )
            else:
                result = self._classify_trial(trial)
            return result
        except KeyboardInterrupt:
            raise
        except EquivalenceError:
            raise
        except UncorrectableError as exc:
            # A DUE escaping the classification paths below would be a
            # harness bug; surface it as a crash, not a hang or mis-count.
            raise TrialCrashError(
                f"trial {trial}: unhandled machine check: {exc}",
                trial_index=trial,
                seed=self.config.trial_seed(trial),
            ) from exc
        except TrialCrashError:
            raise
        except Exception as exc:
            raise TrialCrashError(
                f"trial {trial} crashed: {type(exc).__name__}: {exc}",
                trial_index=trial,
                seed=self.config.trial_seed(trial),
            ) from exc

    def _classify_trial(self, trial: int) -> TrialResult:
        cfg = self.config
        obs = self._obs_or_none()
        hierarchy = MemoryHierarchy(protection_factory=cfg.scheme_factory)
        if obs is not None:
            hierarchy.set_observer(obs)
        golden = GoldenMemory()
        replayer = TraceReplayer(
            hierarchy, golden=golden, check_loads=True
        )
        workload = make_workload(cfg.benchmark, seed=cfg.workload_seed(trial))
        records = workload.records(
            cfg.warmup_references + cfg.post_fault_references
        )
        warmup = itertools.islice(records, cfg.warmup_references)

        try:
            for record in warmup:
                if replayer.step(record):
                    return TrialResult(
                        outcome=Outcome.SDC, detail="mismatch before injection"
                    )
        except UncorrectableError as exc:
            return TrialResult(outcome=Outcome.DUE, detail=f"warmup: {exc}")

        return self._finish_trial(trial, hierarchy, golden, replayer, records)

    def _classify_trial_fast(self, trial: int, warm=None) -> TrialResult:
        """Fork the cached warm state and simulate only the suffix.

        Bit-identical to :meth:`_classify_trial` under ``shared_warmup``:
        the restored hierarchy, golden image and cycle clock match the
        warmed-up originals exactly, and the injection RNG depends only
        on ``(seed, trial)`` plus the (identical) resident cache state.
        The observer, if any, sees injection/classification events but
        not the warmup prefix (simulated once, not per trial).
        """
        if warm is None:
            from .warmstate import warm_state_for

            warm = warm_state_for(self.config)
        hierarchy, golden, replayer = warm.fork()
        obs = self._obs_or_none()
        if obs is not None:
            hierarchy.set_observer(obs)
        return self._finish_trial(
            trial, hierarchy, golden, replayer, iter(warm.suffix_records)
        )

    def _finish_trial(
        self, trial: int, hierarchy, golden, replayer, records
    ) -> TrialResult:
        """Inject into a warmed-up hierarchy, replay the suffix, classify.

        ``records`` yields the post-warmup suffix only — the shared tail
        of the legacy and snapshot-fork paths.
        """
        cfg = self.config
        obs = self._obs_or_none()
        target = hierarchy.l1d if cfg.target_level == "L1D" else hierarchy.l2
        injector = FaultInjector(target, seed=(cfg.seed, trial))
        injection = self._inject(injector)
        if injection is None or not injection.flips:
            return TrialResult(outcome=Outcome.BENIGN, detail="no resident target")
        if obs is not None:
            obs.emit(
                "campaign",
                "inject",
                {
                    "trial": trial,
                    "level": cfg.target_level,
                    "kind": cfg.fault_kind,
                    "bits": injection.total_bits,
                    "units": len(injection.touched_units),
                },
            )

        detected_before = target.stats.detected_faults
        try:
            for record in records:  # the remaining post-fault slice
                if replayer.step(record):
                    return TrialResult(
                        outcome=Outcome.SDC,
                        injected_bits=injection.total_bits,
                        touched_units=len(injection.touched_units),
                        detail="load returned corrupted data",
                    )
            hierarchy.flush()
        except UncorrectableError as exc:
            return TrialResult(
                outcome=Outcome.DUE,
                injected_bits=injection.total_bits,
                touched_units=len(injection.touched_units),
                detail=str(exc),
            )

        for addr, expected in golden.items():
            if hierarchy.memory.peek(addr, 1)[0] != expected:
                return TrialResult(
                    outcome=Outcome.SDC,
                    injected_bits=injection.total_bits,
                    touched_units=len(injection.touched_units),
                    detail=f"latent corruption at {addr:#x} after flush",
                )

        detected = target.stats.detected_faults > detected_before
        return TrialResult(
            outcome=Outcome.CORRECTED if detected else Outcome.BENIGN,
            injected_bits=injection.total_bits,
            touched_units=len(injection.touched_units),
        )

    def _inject(self, injector: FaultInjector) -> Optional[InjectionRecord]:
        cfg = self.config
        if cfg.fault_kind == "temporal":
            return injector.random_temporal(dirty_only=cfg.dirty_only)
        height, width = cfg.spatial_shape
        return injector.random_spatial(height=height, width=width)


def _check_trial_equivalence(
    trial: int, fast: TrialResult, legacy: TrialResult
) -> None:
    """Raise :class:`EquivalenceError` when the two paths disagree."""
    mismatches = [
        f"trial {trial} {field.name}: fast={mine!r} legacy={theirs!r}"
        for field in dataclasses.fields(TrialResult)
        for mine, theirs in [
            (getattr(fast, field.name), getattr(legacy, field.name))
        ]
        if mine != theirs
    ]
    if mismatches:
        raise EquivalenceError(
            "snapshot-fork trial diverged from the legacy path:\n  "
            + "\n  ".join(mismatches),
            mismatches=mismatches,
        )
