"""FIT-rate estimation from injection campaigns.

A campaign (:mod:`repro.faults.campaign`) classifies what happens *given*
a fault; combining those conditional outcomes with the raw upset rate
yields absolute DUE and SDC FIT rates — the industrial metric behind the
paper's MTTF comparisons:

    DUE FIT = raw_bit_FIT * resident_bits * P(outcome = DUE | fault)
    SDC FIT = raw_bit_FIT * resident_bits * P(outcome = SDC | fault)

Corrected and benign outcomes contribute nothing.  The derived
``mttf_years`` uses the standard 1e9-hours-per-FIT conversion.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ConfigurationError
from ..util import FIT_HOURS, hours_to_years
from .campaign import CampaignResult, Outcome


@dataclasses.dataclass(frozen=True)
class FitEstimate:
    """Absolute failure rates derived from one campaign."""

    due_fit: float
    sdc_fit: float
    resident_bits: int
    raw_fit_per_bit: float

    @property
    def total_fit(self) -> float:
        """DUE + SDC failures per 1e9 device-hours."""
        return self.due_fit + self.sdc_fit

    @property
    def mttf_years(self) -> float:
        """Mean time to any failure."""
        if self.total_fit <= 0:
            return math.inf
        return hours_to_years(FIT_HOURS / self.total_fit)

    @property
    def due_mttf_years(self) -> float:
        """Mean time to a detected-unrecoverable failure."""
        if self.due_fit <= 0:
            return math.inf
        return hours_to_years(FIT_HOURS / self.due_fit)


def estimate_fit(
    result: CampaignResult,
    *,
    resident_bits: int,
    raw_fit_per_bit: float = 0.001,
) -> FitEstimate:
    """Convert a campaign's conditional outcomes into absolute FIT rates.

    Args:
        result: a completed campaign (its trials define the conditional
            outcome probabilities).
        resident_bits: bits exposed to upsets (e.g. the cache's data
            array, or its average dirty bits for dirty-only campaigns).
        raw_fit_per_bit: raw upset rate (paper: 0.001 FIT/bit).
    """
    if not result.trials:
        raise ConfigurationError("campaign has no trials")
    if resident_bits < 1:
        raise ConfigurationError("resident_bits must be positive")
    if raw_fit_per_bit <= 0:
        raise ConfigurationError("raw_fit_per_bit must be positive")
    fault_fit = raw_fit_per_bit * resident_bits
    return FitEstimate(
        due_fit=fault_fit * result.rate(Outcome.DUE),
        sdc_fit=fault_fit * result.rate(Outcome.SDC),
        resident_bits=resident_bits,
        raw_fit_per_bit=raw_fit_per_bit,
    )
