"""Fault injection into a live cache.

The injector flips bits of the *stored* data without touching the stored
check bits — exactly what a particle strike does — so the next access that
reads the unit sees a parity/ECC mismatch and the protection scheme reacts.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..coding import BitInterleaving
from ..cppc.geometry import PhysicalGeometry
from ..errors import SimulationError
from ..memsim.cache import Cache
from ..memsim.types import UnitLocation
from ..util import Seed, make_rng
from .models import BitFlip, SpatialFault, TemporalFault


@dataclasses.dataclass(frozen=True)
class InjectionRecord:
    """What an injection actually changed (some strike rows may miss
    invalid lines or clean-only regions and flip nothing)."""

    flips: List[BitFlip]

    @property
    def touched_units(self) -> List[UnitLocation]:
        """Units whose stored data changed."""
        return [f.loc for f in self.flips]

    @property
    def total_bits(self) -> int:
        """Total bits flipped."""
        return sum(bin(f.mask).count("1") for f in self.flips)


class FaultInjector:
    """Injects temporal and spatial faults into one cache."""

    def __init__(self, cache: Cache, seed: Seed = 0):
        self.cache = cache
        self.geometry = PhysicalGeometry.of_cache(cache)
        self._rng = make_rng((seed, cache.name, "faults"))

    # ------------------------------------------------------------------
    # Deterministic injections
    # ------------------------------------------------------------------
    def inject_temporal(self, fault: TemporalFault) -> InjectionRecord:
        """Apply one single-bit fault."""
        flips = fault.flips(self.cache.unit_bits)
        for flip in flips:
            self.cache.corrupt_data(flip.loc, flip.mask)
        return InjectionRecord(flips=flips)

    @property
    def interleaving_degree(self) -> int:
        """Physical bit-interleaving degree of the target cache's arrays.

        Schemes that interleave (the paper's SECDED configuration) expose
        ``interleaving_degree``; everyone else stores words contiguously.
        """
        return getattr(self.cache.protection, "interleaving_degree", 1)

    def inject_spatial(self, fault: SpatialFault) -> InjectionRecord:
        """Apply one spatial strike; rows over invalid lines flip nothing.

        With physical bit interleaving (degree k) one physical row holds k
        logical units woven bit-by-bit, so the strike's columns map to at
        most one bit per unit for bursts up to k wide — the mechanism that
        lets interleaved SECDED ride out spatial MBEs.
        """
        degree = self.interleaving_degree
        if degree == 1:
            return self._inject_contiguous(fault)
        return self._inject_interleaved(fault, degree)

    def _inject_contiguous(self, fault: SpatialFault) -> InjectionRecord:
        flips: List[BitFlip] = []
        for row, mask in fault.row_masks(self.cache.unit_bits).items():
            if row >= self.geometry.rows_per_way:
                continue
            loc = self.geometry.loc_of(fault.way, row)
            line = self.cache.line(loc.set_index, loc.way)
            if not line.valid:
                continue
            self.cache.corrupt_data(loc, mask)
            flips.append(BitFlip(loc, mask))
        return InjectionRecord(flips=flips)

    def _inject_interleaved(
        self, fault: SpatialFault, degree: int
    ) -> InjectionRecord:
        layout = BitInterleaving(degree=degree, word_bits=self.cache.unit_bits)
        physical_rows = self.geometry.rows_per_way // degree
        flips: List[BitFlip] = []
        for physical_row in range(fault.top_row, fault.top_row + fault.height):
            if physical_row >= physical_rows:
                continue
            width = min(fault.width, layout.row_bits - fault.left_col)
            if width <= 0:
                continue
            hits = layout.burst_to_word_bits(fault.left_col, width)
            for word_offset, bits in hits.items():
                row = physical_row * degree + word_offset
                loc = self.geometry.loc_of(fault.way, row)
                line = self.cache.line(loc.set_index, loc.way)
                if not line.valid:
                    continue
                mask = 0
                for bit in bits:
                    mask |= 1 << (self.cache.unit_bits - 1 - bit)
                self.cache.corrupt_data(loc, mask)
                flips.append(BitFlip(loc, mask))
        return InjectionRecord(flips=flips)

    # ------------------------------------------------------------------
    # Random injections
    # ------------------------------------------------------------------
    def random_temporal(self, dirty_only: bool = False) -> Optional[InjectionRecord]:
        """Flip a random bit of a random resident unit.

        Returns None when nothing qualifies (e.g. empty cache).
        """
        if dirty_only:
            candidates = [loc for loc, _v in self.cache.iter_dirty_units()]
        else:
            candidates = self.cache.resident_locations()
        if not candidates:
            return None
        loc = self._rng.choice(candidates)
        bit = self._rng.randrange(self.cache.unit_bits)
        return self.inject_temporal(TemporalFault(loc, bit))

    def random_spatial(
        self, height: int = 8, width: int = 8
    ) -> Optional[InjectionRecord]:
        """Strike a random position with a ``height x width`` fault.

        The anchor is drawn uniformly over the physical array; the record
        reports which resident units actually lost bits (possibly none).
        """
        if height < 1 or width < 1:
            raise SimulationError("strike extents must be positive")
        degree = self.interleaving_degree
        way = self._rng.randrange(self.cache.ways)
        physical_rows = self.geometry.rows_per_way // degree
        top_row = self._rng.randrange(max(1, physical_rows - height + 1))
        row_bits = self.cache.unit_bits * degree
        left_col = self._rng.randrange(max(1, row_bits - width + 1))
        return self.inject_spatial(
            SpatialFault(way=way, top_row=top_row, left_col=left_col,
                         height=height, width=width)
        )
