"""Fault models: temporal single-bit upsets and spatial multi-bit strikes.

A *temporal* fault (classic SEU) flips one bit of one resident unit.  A
*spatial* fault models a single energetic particle upsetting a rectangle
of adjacent cells (paper Section 4): ``height`` consecutive physical rows
of one way, each losing the bits in columns ``[left_col, left_col +
width)``.  The paper's coverage target is the 8x8 square.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..memsim.types import UnitLocation


@dataclasses.dataclass(frozen=True)
class BitFlip:
    """One unit-level corruption: XOR ``mask`` into the unit at ``loc``."""

    loc: UnitLocation
    mask: int


@dataclasses.dataclass(frozen=True)
class TemporalFault:
    """Single-event upset of one bit.

    Attributes:
        loc: target unit.
        bit_index: MSB-first bit within the unit.
    """

    loc: UnitLocation
    bit_index: int

    def flips(self, unit_bits: int) -> List[BitFlip]:
        """Unit-level corruption list for this fault."""
        if not 0 <= self.bit_index < unit_bits:
            raise ConfigurationError(
                f"bit index {self.bit_index} out of range for {unit_bits}-bit unit"
            )
        return [BitFlip(self.loc, 1 << (unit_bits - 1 - self.bit_index))]


@dataclasses.dataclass(frozen=True)
class SpatialFault:
    """A particle strike over a ``height x width`` rectangle of cells.

    Attributes:
        way: subarray struck (strikes never span ways).
        top_row: first physical row affected.
        left_col: first MSB-first bit column affected.
        height: rows affected (vertical extent).
        width: columns affected (horizontal extent).
    """

    way: int
    top_row: int
    left_col: int
    height: int
    width: int

    def __post_init__(self):
        if self.height < 1 or self.width < 1:
            raise ConfigurationError("spatial fault extents must be positive")
        if self.top_row < 0 or self.left_col < 0 or self.way < 0:
            raise ConfigurationError("spatial fault coordinates must be non-negative")

    def row_masks(self, unit_bits: int) -> Dict[int, int]:
        """Per-row XOR masks, clipped to the unit width.

        Returns ``{row: mask}``; rows whose column span falls entirely
        outside the unit are omitted.
        """
        masks: Dict[int, int] = {}
        lo = self.left_col
        hi = min(self.left_col + self.width, unit_bits)
        if lo >= unit_bits:
            return masks
        mask = 0
        for col in range(lo, hi):
            mask |= 1 << (unit_bits - 1 - col)
        for row in range(self.top_row, self.top_row + self.height):
            masks[row] = mask
        return masks

    @property
    def footprint(self) -> Tuple[int, int]:
        """(height, width) of the strike."""
        return (self.height, self.width)
