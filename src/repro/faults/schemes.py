"""Picklable protection-scheme factories for campaign configs.

Campaign workers run in ``spawn``-context subprocesses, so a
:class:`~repro.faults.campaign.CampaignConfig` must survive pickling —
which the ad-hoc closures previously built by every driver did not.
:class:`SchemeFactory` is the shared, picklable replacement: it names a
scheme, builds a fresh protection instance per cache level, pickles by
value, and has a stable ``repr`` so checkpoint digests of the same
campaign match across processes and runs.
"""

from __future__ import annotations

from ..cppc import CppcProtection
from ..errors import ConfigurationError
from ..memsim import NoProtection, ParityProtection, SecdedProtection
from ..memsim.protection import CacheProtection, TwoDParityProtection

SCHEMES = ("none", "parity", "secded", "cppc", "twod")


class SchemeFactory:
    """Builds a named protection scheme; safe to pickle into workers."""

    def __init__(self, scheme: str):
        if scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown protection scheme {scheme!r}; expected one of "
                f"{SCHEMES}"
            )
        self.scheme = scheme

    def __call__(self, level: str, unit_bits: int) -> CacheProtection:
        if self.scheme == "cppc":
            return CppcProtection(data_bits=unit_bits)
        if self.scheme == "parity":
            return ParityProtection(data_bits=unit_bits)
        if self.scheme == "secded":
            return SecdedProtection(data_bits=unit_bits)
        if self.scheme == "twod":
            return TwoDParityProtection(data_bits=unit_bits)
        return NoProtection()

    def __repr__(self) -> str:
        return f"SchemeFactory({self.scheme!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, SchemeFactory) and other.scheme == self.scheme

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.scheme))


def scheme_factory(name: str) -> SchemeFactory:
    """Per-level protection factory for one scheme name."""
    return SchemeFactory(name)
