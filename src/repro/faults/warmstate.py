"""Warm-once campaign state: build one snapshot, fork it per trial.

Under ``CampaignConfig.shared_warmup`` every trial of a campaign replays
the *same* fault-free warmup prefix.  :func:`build_warm_state` simulates
that prefix exactly once and captures everything a trial needs:

* a :class:`~repro.memsim.snapshot.HierarchySnapshot` of the warmed-up
  caches, protection state and main memory,
* the golden memory image after the prefix's stores,
* the materialized post-warmup suffix records, and
* the cycle clock at the fork point.

:meth:`WarmState.fork` then rebuilds a live hierarchy in milliseconds —
restore into a freshly constructed hierarchy is far cheaper than
re-simulating thousands of references — and the forked trial is
bit-identical to a legacy warm-every-trial one (same resident units in
the same iteration order, so the per-trial injection RNG sees the same
sample space; same statistics baselines; same cycle clock).

Where the L1 scheme is batch-compatible (CPPC over 64-bit units under
LRU — the configuration :mod:`repro.memsim.batch` vectorizes), the
warmup itself runs through the :class:`~repro.memsim.batch.BatchReplayEngine`:
the engine produces the final L1 state directly, and the next-level
traffic it captures (:class:`~repro.memsim.batch.ReplayCapture`) is
replayed through the scalar L2 in original access order to warm the rest
of the hierarchy.  Everything else falls back to a scalar warmup.

:func:`warm_state_for` memoizes warm states in a bounded module-level
:class:`~repro.memsim.snapshot.SnapshotCache`, keyed by everything the
warm image depends on — scheme factory, benchmark, prefix length, trace
length and workload seed stream.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Dict, List, Tuple

from ..cppc.protection import CppcProtection
from ..memsim.batch import BatchReplayEngine, BatchTrace, ReplayCapture
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.replacement import LRUPolicy
from ..memsim.snapshot import (
    HierarchySnapshot,
    SnapshotCache,
    restore_hierarchy,
    snapshot_hierarchy,
)
from ..memsim.types import AccessType
from ..workloads.replay import GoldenMemory, TraceReplayer
from ..workloads.store import cached_records
from ..workloads.trace import TraceRecord
from .campaign import CampaignConfig


@dataclasses.dataclass
class WarmState:
    """One warmed-up campaign image, ready to fork per trial.

    Attributes:
        key: the :func:`warm_key` this state was built for.
        config: the campaign configuration (supplies the scheme factory
            for forked hierarchies).
        snapshot: the post-warmup hierarchy state.
        golden_image: golden memory bytes after the warmup stores, in
            store order (dict order matters for bit-identical SDC
            details).
        suffix_records: the post-warmup trace suffix, shared read-only
            across trials.
        start_cycle: cycle clock at the fork point.
        warm_engine: how the prefix was simulated — ``"batch"``,
            ``"scalar"`` or ``"pristine"`` (zero-length warmup).
        size_bytes: pickled size (cache accounting and lane shipping).
    """

    key: tuple
    config: CampaignConfig
    snapshot: HierarchySnapshot
    golden_image: Dict[int, int]
    suffix_records: List[TraceRecord]
    start_cycle: int
    warm_engine: str
    size_bytes: int = 0

    def fork(self) -> Tuple[MemoryHierarchy, GoldenMemory, TraceReplayer]:
        """A fresh live ``(hierarchy, golden, replayer)`` at the fork point."""
        hierarchy = MemoryHierarchy(protection_factory=self.config.scheme_factory)
        restore_hierarchy(self.snapshot, hierarchy)
        golden = GoldenMemory()
        golden.restore(self.golden_image)
        replayer = TraceReplayer(
            hierarchy,
            golden=golden,
            check_loads=True,
            start_cycle=self.start_cycle,
        )
        return hierarchy, golden, replayer


def warm_key(config: CampaignConfig) -> tuple:
    """Everything the warm image depends on (the memoization key).

    ``post_fault_references`` is included because the workload generator
    is seeded once for the whole trace — the suffix records depend on the
    total length requested, not only on the prefix.
    """
    return (
        repr(config.scheme_factory),
        config.benchmark,
        config.warmup_references,
        config.post_fault_references,
        repr(config.workload_seed(0)),
    )


def _batch_compatible(l1) -> bool:
    """Whether the batch engine models this L1 exactly."""
    prot = l1.protection
    return (
        isinstance(prot, CppcProtection)
        and l1.unit_bytes == 8
        and prot.code.ways == 8
        and isinstance(l1.policy, LRUPolicy)
        and not l1.write_through
        and l1.allocate_on_write
        and l1.tag_protection is None
    )


def _words_to_bytes(words: List[int]) -> bytes:
    return b"".join(int(w).to_bytes(8, "big") for w in words)


def _batch_warm(hierarchy: MemoryHierarchy, warm_records: List[TraceRecord]) -> None:
    """Warm ``hierarchy`` through the batch engine (L1) plus event replay.

    The engine resolves the whole L1 access stream vectorized and
    captures its next-level block traffic; replaying those events
    through the scalar L2 in original access order reproduces exactly
    the L2/memory state of a scalar warmup, because the scalar L1 would
    have issued exactly these reads and write-backs at these cycles.
    """
    l1 = hierarchy.l1d
    prot = l1.protection
    engine = BatchReplayEngine(
        l1.size_bytes,
        l1.ways,
        l1.block_bytes,
        num_pairs=prot.registers.num_pairs,
        byte_shifting=prot.rotation.enabled,
        num_classes=prot.registers.num_classes,
    )
    capture = ReplayCapture()
    result = engine.replay(BatchTrace.from_records(warm_records), capture=capture)

    for _index, kind, slot, now, words in capture.events:
        addr = capture.slot_addr[slot]
        if kind == 0:
            hierarchy.l2.read_block(addr, cycle=now)
        else:
            hierarchy.l2.write_block(addr, _words_to_bytes(words), cycle=now)

    for (set_index, way), state in result.lines.items():
        ln = l1.line(set_index, way)
        ln.valid = True
        ln.tag = state.tag
        ln.data[:] = state.data
        ln.dirty = list(state.dirty)
        ln.check = list(state.check)
        ln.last_dirty_access = list(capture.line_last[set_index][way])
    for set_index, order in capture.lru.items():
        l1.policy._order[set_index] = list(order)
    stats = result.stats
    # The scalar cache keeps integer cycle stamps; normalize the one
    # float the reducer produces so snapshots compare field-for-field.
    stats._last_event_cycle = int(stats._last_event_cycle)
    l1.stats = stats
    l1._access_counter = capture.final_cycle
    for pair, src in zip(prot.registers.pairs, result.registers.pairs):
        pair.r1 = src.r1
        pair.r2 = src.r2
        pair.r1_parity = src.r1_parity
        pair.r2_parity = src.r2_parity


def build_warm_state(config: CampaignConfig) -> WarmState:
    """Simulate the shared warmup prefix once and package the result."""
    # cached_records goes through the columnar trace store when
    # REPRO_TRACE_CACHE is set, so campaigns sharing a workload decode
    # one on-disk trace instead of regenerating it per process.
    records = cached_records(
        config.benchmark,
        config.workload_seed(0),
        config.warmup_references + config.post_fault_references,
    )
    warm_records = records[: config.warmup_references]
    suffix_records = records[config.warmup_references :]

    golden = GoldenMemory()
    for record in warm_records:
        if record.op is AccessType.STORE:
            golden.store(record.addr, record.value)
    start_cycle = sum(r.instructions for r in warm_records)

    hierarchy = MemoryHierarchy(protection_factory=config.scheme_factory)
    if not warm_records:
        warm_engine = "pristine"
    elif _batch_compatible(hierarchy.l1d):
        _batch_warm(hierarchy, warm_records)
        warm_engine = "batch"
    else:
        TraceReplayer(hierarchy).run(warm_records)
        warm_engine = "scalar"

    state = WarmState(
        key=warm_key(config),
        config=config,
        snapshot=snapshot_hierarchy(hierarchy),
        golden_image=golden.snapshot(),
        suffix_records=suffix_records,
        start_cycle=start_cycle,
        warm_engine=warm_engine,
    )
    state.size_bytes = len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    return state


#: Campaign-side warm-state memo, bounded so sweeps over many
#: configurations cannot grow without bound.
_WARM_CACHE = SnapshotCache(max_entries=8, max_bytes=1 << 30)


def warm_cache() -> SnapshotCache:
    """The module-level warm-state cache (metrics export, tests)."""
    return _WARM_CACHE


def clear_warm_cache() -> None:
    """Drop every memoized warm state (benchmarks and tests)."""
    _WARM_CACHE.clear()


def warm_state_for(config: CampaignConfig) -> WarmState:
    """The memoized warm state for ``config`` (built on first use)."""
    key = warm_key(config)
    state = _WARM_CACHE.get(key)
    if state is None:
        state = build_warm_state(config)
        _WARM_CACHE.put(key, state, state.size_bytes)
    return state
