"""Experiment harness: one runner per paper table/figure plus reporting."""

from .experiments import (
    DEFAULT_REFERENCES,
    FIG10_SCHEMES,
    PAPER_TABLE2_L1,
    PAPER_TABLE2_L2,
    BenchmarkRun,
    EnergyFigureResult,
    Figure10Result,
    Table2Result,
    Table3Result,
    figure10,
    figure11,
    figure12,
    run_all_benchmarks,
    run_benchmark,
    table2,
    table3,
)
from .figures import bar_chart, grouped_bar_chart
from .reporting import format_table, format_value
from .resilience import ResilienceMatrix, resilience_matrix, scheme_factory
from .scorecard import Claim, Scorecard, scorecard
from .sensitivity import (
    SweepResult,
    sweep_interleaving,
    sweep_l1_size,
    sweep_seu_rate,
)

__all__ = [
    "DEFAULT_REFERENCES",
    "FIG10_SCHEMES",
    "PAPER_TABLE2_L1",
    "PAPER_TABLE2_L2",
    "BenchmarkRun",
    "EnergyFigureResult",
    "Figure10Result",
    "Table2Result",
    "Table3Result",
    "figure10",
    "figure11",
    "figure12",
    "run_all_benchmarks",
    "run_benchmark",
    "table2",
    "table3",
    "format_table",
    "format_value",
    "bar_chart",
    "grouped_bar_chart",
    "SweepResult",
    "sweep_interleaving",
    "sweep_l1_size",
    "sweep_seu_rate",
    "ResilienceMatrix",
    "resilience_matrix",
    "scheme_factory",
    "Claim",
    "Scorecard",
    "scorecard",
]
