"""Experiment runners: one per table/figure of the paper's evaluation.

Every runner follows the paper's simulate-once methodology: each
benchmark's trace is replayed one time on an unprotected hierarchy to
collect operation counts and timing events (:class:`BenchmarkRun`), and
the per-scheme models — timing policies for Figure 10, energy accounting
for Figures 11/12, MTTF for Table 3 — are evaluated on those shared
counts.

All runners take ``n_references`` so tests can run tiny and the benchmark
harness can run at scale.
"""

from __future__ import annotations

import dataclasses
import itertools
import statistics
import time
from typing import Dict, List, Optional, Sequence

from ..energy import SCHEMES, normalized_energies
from ..memsim.hierarchy import PAPER_CONFIG, HierarchyConfig, MemoryHierarchy
from ..memsim.stats import CacheStats
from ..reliability import (
    ReliabilityInputs,
    mttf_aliasing_years,
    mttf_cppc_years,
    mttf_parity_years,
    mttf_secded_years,
)
from ..timing import (
    AccessEvent,
    TimingConfig,
    collect_events,
    time_events,
    timing_policy,
)
from ..workloads import benchmark_names, make_workload
from .reporting import format_table

#: Default trace length for full experiment runs (kept SimPoint-like in
#: spirit but laptop-sized; tests pass much smaller values).
DEFAULT_REFERENCES = 200_000


@dataclasses.dataclass
class BenchmarkRun:
    """One benchmark's shared simulation products.

    ``events`` is a plain ``AccessEvent`` list from the scalar collector
    or an :class:`~repro.timing.fast.EventColumns` from the batch fast
    path; both iterate as the same event tuples.
    """

    name: str
    references: int
    l1: CacheStats
    l2: CacheStats
    events: Sequence[AccessEvent]
    units_per_block: int


def run_benchmark(
    name: str,
    n_references: int = DEFAULT_REFERENCES,
    seed: int = 0,
    config: HierarchyConfig = PAPER_CONFIG,
    warmup_fraction: float = 0.25,
    fast: bool = False,
) -> BenchmarkRun:
    """Replay one benchmark once and capture everything the models need.

    The first ``warmup_fraction`` of the trace fills the caches and is
    excluded from the counters (the role SimPoint fast-forwarding plays in
    the paper's setup); the timing events cover only the measured window.

    With ``fast=True`` the replay runs on the vectorized batch engine
    (:func:`repro.timing.fast.collect_run_fast`), producing bit-identical
    statistics and an :class:`~repro.timing.fast.EventColumns` event
    stream that every scalar consumer still accepts.
    """
    workload = make_workload(name, seed=seed)
    warmup = int(n_references * warmup_fraction)
    # ``records(...)`` is documented as a generator, but guard against a
    # workload handing back a sequence: without ``iter`` the warmup
    # prefix would be replayed a second time into the measured window.
    records = iter(workload.records(n_references + warmup))
    if fast:
        from ..timing.fast import collect_run_fast

        run = collect_run_fast(records, config, warmup=warmup)
        return BenchmarkRun(
            name=name,
            references=n_references,
            l1=run.l1,
            l2=run.l2,
            events=run.events,
            units_per_block=run.units_per_block,
        )
    hierarchy = MemoryHierarchy(config)
    if warmup:
        collect_events(itertools.islice(records, warmup), hierarchy)
        hierarchy.l1d.reset_stats()
        hierarchy.l2.reset_stats()
    events = collect_events(records, hierarchy)
    return BenchmarkRun(
        name=name,
        references=n_references,
        l1=hierarchy.l1d.stats,
        l2=hierarchy.l2.stats,
        events=events,
        units_per_block=hierarchy.l1d.units_per_block,
    )


def run_all_benchmarks(
    n_references: int = DEFAULT_REFERENCES,
    seed: int = 0,
    benchmarks: Optional[Sequence[str]] = None,
    config: HierarchyConfig = PAPER_CONFIG,
    obs=None,
    fast: bool = False,
) -> List[BenchmarkRun]:
    """Shared simulations for every benchmark in evaluation order.

    ``obs`` (a :class:`repro.obs.TraceSink`) gets one span per benchmark
    simulation — coarse progress marks, not per-access events, so the
    trace stays small at full experiment scale.  ``fast`` selects the
    batch-engine replay for every benchmark (see :func:`run_benchmark`).
    """
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    live = obs is not None and obs.enabled
    runs = []
    for name in names:
        start = time.perf_counter() if live else 0.0
        run = run_benchmark(name, n_references, seed, config, fast=fast)
        if live:
            obs.span(
                "experiment",
                f"benchmark[{name}]",
                start,
                time.perf_counter() - start,
                {
                    "references": run.references,
                    "l1_miss_rate": run.l1.miss_rate,
                    "l2_miss_rate": run.l2.miss_rate,
                },
            )
        runs.append(run)
    return runs


# ----------------------------------------------------------------------
# Figure 10: CPI normalised to the 1-D parity cache
# ----------------------------------------------------------------------

FIG10_SCHEMES = ("parity", "cppc", "2d-parity")


def _fig10_overhead_schemes() -> List[str]:
    """Schemes shown against the parity baseline, in figure order."""
    return [s for s in FIG10_SCHEMES if s != "parity"]


@dataclasses.dataclass
class Figure10Result:
    """Normalised CPIs per benchmark (paper Figure 10)."""

    per_benchmark: Dict[str, Dict[str, float]]

    def normalized(self, scheme: str, benchmark: str) -> float:
        """CPI of ``scheme`` over the parity baseline for ``benchmark``."""
        row = self.per_benchmark[benchmark]
        return row[scheme] / row["parity"]

    def average_overhead(self, scheme: str) -> float:
        """Mean normalised-CPI overhead of ``scheme`` across benchmarks."""
        return statistics.mean(
            self.normalized(scheme, b) - 1.0 for b in self.per_benchmark
        )

    def max_overhead(self, scheme: str) -> float:
        """Worst-case normalised-CPI overhead of ``scheme``."""
        return max(self.normalized(scheme, b) - 1.0 for b in self.per_benchmark)

    def to_text(self) -> str:
        """Paper-style table: normalised CPIs per benchmark."""
        schemes = _fig10_overhead_schemes()
        rows = []
        for bench in self.per_benchmark:
            rows.append(
                [bench] + [self.normalized(s, bench) for s in schemes]
            )
        rows.append(
            ["average"]
            + [1.0 + self.average_overhead(s) for s in schemes]
        )
        return format_table(
            ["benchmark"] + schemes,
            rows,
            title="Figure 10: CPI normalised to 1-D parity L1",
            precision=4,
        )

    def to_chart(self) -> str:
        """ASCII grouped-bar rendering of the figure."""
        from .figures import grouped_bar_chart

        benchmarks = list(self.per_benchmark)
        series = {
            scheme: [self.normalized(scheme, b) for b in benchmarks]
            for scheme in _fig10_overhead_schemes()
        }
        return grouped_bar_chart(
            "Figure 10: CPI normalised to 1-D parity L1",
            benchmarks, series, baseline=1.0,
        )


def figure10(
    runs: Sequence[BenchmarkRun],
    timing_config: Optional[TimingConfig] = None,
) -> Figure10Result:
    """Price each benchmark's event stream under each scheme's ports.

    Columnar event streams (from ``run_benchmark(fast=True)``) are
    priced by the bit-identical vectorized engine; scalar lists take the
    reference loop.
    """
    from ..timing.fast import EventColumns, time_events_fast

    per_benchmark: Dict[str, Dict[str, float]] = {}
    for run in runs:
        pricer = (
            time_events_fast
            if isinstance(run.events, EventColumns)
            else time_events
        )
        row = {}
        for scheme in FIG10_SCHEMES:
            result = pricer(
                run.events,
                timing_policy(scheme),
                timing_config,
                units_per_block=run.units_per_block,
            )
            row[scheme] = result.cpi
        per_benchmark[run.name] = row
    return Figure10Result(per_benchmark=per_benchmark)


# ----------------------------------------------------------------------
# Figures 11/12: dynamic energy normalised to the 1-D parity cache
# ----------------------------------------------------------------------


@dataclasses.dataclass
class EnergyFigureResult:
    """Normalised energies per benchmark (paper Figures 11 and 12)."""

    level: str
    per_benchmark: Dict[str, Dict[str, float]]

    def average(self, scheme: str) -> float:
        """Mean normalised energy of ``scheme`` across benchmarks."""
        return statistics.mean(
            row[scheme] for row in self.per_benchmark.values()
        )

    def to_text(self) -> str:
        """Paper-style table of normalised energies."""
        schemes = [s for s in SCHEMES if s != "parity"]
        rows = [
            [bench] + [row[s] for s in schemes]
            for bench, row in self.per_benchmark.items()
        ]
        rows.append(["average"] + [self.average(s) for s in schemes])
        figure = "11" if self.level == "L1" else "12"
        return format_table(
            ["benchmark"] + schemes,
            rows,
            title=(
                f"Figure {figure}: {self.level} dynamic energy normalised "
                "to 1-D parity"
            ),
        )

    def to_chart(self) -> str:
        """ASCII grouped-bar rendering of the figure."""
        from .figures import grouped_bar_chart

        figure = "11" if self.level == "L1" else "12"
        benchmarks = list(self.per_benchmark)
        schemes = [s for s in SCHEMES if s != "parity"]
        series = {
            scheme: [self.per_benchmark[b][scheme] for b in benchmarks]
            for scheme in schemes
        }
        return grouped_bar_chart(
            f"Figure {figure}: {self.level} energy normalised to 1-D parity",
            benchmarks, series, baseline=1.0,
        )


def _energy_figure(
    runs: Sequence[BenchmarkRun], level: str, config: HierarchyConfig
) -> EnergyFigureResult:
    geometry = config.l1d if level == "L1" else config.l2
    per_benchmark = {}
    for run in runs:
        stats = run.l1 if level == "L1" else run.l2
        per_benchmark[run.name] = normalized_energies(stats, geometry)
    return EnergyFigureResult(level=level, per_benchmark=per_benchmark)


def figure11(
    runs: Sequence[BenchmarkRun], config: HierarchyConfig = PAPER_CONFIG
) -> EnergyFigureResult:
    """L1 dynamic energy per scheme, normalised to 1-D parity."""
    return _energy_figure(runs, "L1", config)


def figure12(
    runs: Sequence[BenchmarkRun], config: HierarchyConfig = PAPER_CONFIG
) -> EnergyFigureResult:
    """L2 dynamic energy per scheme, normalised to 1-D parity."""
    return _energy_figure(runs, "L2", config)


# ----------------------------------------------------------------------
# Table 2: dirty-data percentage and Tavg
# ----------------------------------------------------------------------


@dataclasses.dataclass
class Table2Result:
    """Measured dirty residency and scrub intervals (paper Table 2)."""

    per_benchmark: Dict[str, Dict[str, float]]

    def average(self, key: str) -> float:
        """Mean of one column across benchmarks."""
        return statistics.mean(row[key] for row in self.per_benchmark.values())

    def reliability_inputs(
        self, level: str, config: HierarchyConfig = PAPER_CONFIG
    ) -> ReliabilityInputs:
        """Bundle the measured averages for the Table 3 models."""
        geometry = config.l1d if level == "L1" else config.l2
        prefix = "l1" if level == "L1" else "l2"
        return ReliabilityInputs(
            size_bits=geometry.size_bytes * 8,
            dirty_fraction=max(1e-6, self.average(f"{prefix}_dirty_fraction")),
            tavg_cycles=max(1.0, self.average(f"{prefix}_tavg_cycles")),
            frequency_hz=config.frequency_hz,
        )

    def to_text(self) -> str:
        """Paper-style Table 2 with per-benchmark detail."""
        rows = [
            [
                bench,
                100.0 * row["l1_dirty_fraction"],
                100.0 * row["l2_dirty_fraction"],
                row["l1_tavg_cycles"],
                row["l2_tavg_cycles"],
            ]
            for bench, row in self.per_benchmark.items()
        ]
        rows.append(
            [
                "average",
                100.0 * self.average("l1_dirty_fraction"),
                100.0 * self.average("l2_dirty_fraction"),
                self.average("l1_tavg_cycles"),
                self.average("l2_tavg_cycles"),
            ]
        )
        return format_table(
            ["benchmark", "L1 dirty %", "L2 dirty %", "L1 Tavg", "L2 Tavg"],
            rows,
            title="Table 2: dirty-data residency and Tavg",
        )


def table2(runs: Sequence[BenchmarkRun]) -> Table2Result:
    """Collect the Table 2 metrics from the shared simulations."""
    per_benchmark = {}
    for run in runs:
        per_benchmark[run.name] = {
            "l1_dirty_fraction": run.l1.dirty_fraction,
            "l2_dirty_fraction": run.l2.dirty_fraction,
            "l1_tavg_cycles": run.l1.tavg_cycles,
            "l2_tavg_cycles": run.l2.tavg_cycles,
        }
    return Table2Result(per_benchmark=per_benchmark)


# ----------------------------------------------------------------------
# Table 3: MTTF against temporal multi-bit errors
# ----------------------------------------------------------------------

#: The paper's own Table 2 averages, used when reproducing Table 3 with
#: the authors' inputs rather than freshly measured ones.
PAPER_TABLE2_L1 = ReliabilityInputs(
    size_bits=32 * 1024 * 8, dirty_fraction=0.16, tavg_cycles=1828
)
PAPER_TABLE2_L2 = ReliabilityInputs(
    size_bits=1024 * 1024 * 8, dirty_fraction=0.35, tavg_cycles=378997
)


@dataclasses.dataclass
class Table3Result:
    """MTTF (years) per scheme and level (paper Table 3)."""

    mttf_years: Dict[str, Dict[str, float]]  # scheme -> level -> years
    aliasing_l2_years: float

    def to_text(self) -> str:
        """Paper-style Table 3."""
        rows = [
            [scheme, values["L1"], values["L2"]]
            for scheme, values in self.mttf_years.items()
        ]
        table = format_table(
            ["cache", "MTTF of L1 (years)", "MTTF of L2 (years)"],
            rows,
            title="Table 3: MTTF against temporal MBE faults",
        )
        return (
            table
            + "\n\nSection 4.7 aliasing MTTF (L2, one register pair): "
            + f"{self.aliasing_l2_years:.3g} years"
        )


def table3(
    l1_inputs: ReliabilityInputs = PAPER_TABLE2_L1,
    l2_inputs: ReliabilityInputs = PAPER_TABLE2_L2,
    config: HierarchyConfig = PAPER_CONFIG,
) -> Table3Result:
    """Evaluate the analytical MTTF models for every scheme and level."""
    l1_unit_bits = config.l1d.unit_bytes * 8
    l2_unit_bits = config.l2.unit_bytes * 8
    mttf = {
        "one-dimensional parity": {
            "L1": mttf_parity_years(l1_inputs),
            "L2": mttf_parity_years(l2_inputs),
        },
        "cppc": {
            "L1": mttf_cppc_years(l1_inputs),
            "L2": mttf_cppc_years(l2_inputs),
        },
        "secded": {
            "L1": mttf_secded_years(l1_inputs, l1_unit_bits),
            "L2": mttf_secded_years(l2_inputs, l2_unit_bits),
        },
    }
    return Table3Result(
        mttf_years=mttf,
        aliasing_l2_years=mttf_aliasing_years(l2_inputs),
    )
