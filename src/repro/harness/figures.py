"""Plain-text (ASCII) chart rendering for experiment results.

The paper presents Figures 10-12 as grouped bar charts; these helpers
render the same shape in a terminal so the benches' archived outputs are
readable without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError

#: Glyph per series, cycled.
_GLYPHS = "#*+o@%"


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    baseline: float = 0.0,
) -> str:
    """One horizontal bar per (label, value).

    ``baseline`` shifts the bar origin (1.0 renders normalised overheads:
    a value of 1.14 draws 14% of the full-scale bar).
    """
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not values:
        raise ConfigurationError("nothing to chart")
    span = max(abs(v - baseline) for v in values) or 1.0
    label_width = max(len(str(lab)) for lab in labels)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        magnitude = int(round(abs(value - baseline) / span * width))
        lines.append(
            f"{str(label):>{label_width}s} | "
            f"{'#' * magnitude}{' ' * (width - magnitude)} {value:.3f}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 40,
    baseline: float = 0.0,
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series."""
    if not series:
        raise ConfigurationError("no series to chart")
    for name, values in series.items():
        if len(values) != len(groups):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    flat: List[float] = [v for values in series.values() for v in values]
    span = max(abs(v - baseline) for v in flat) or 1.0
    name_width = max(len(n) for n in series)
    lines = [title, "=" * len(title)]
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for glyph, (name, values) in zip(
            _cycle_glyphs(len(series)), series.items()
        ):
            value = values[index]
            magnitude = int(round(abs(value - baseline) / span * width))
            lines.append(
                f"  {name:>{name_width}s} | "
                f"{glyph * magnitude}{' ' * (width - magnitude)} {value:.3f}"
            )
    legend = "  ".join(
        f"{glyph}={name}"
        for glyph, name in zip(_cycle_glyphs(len(series)), series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def _cycle_glyphs(n: int) -> List[str]:
    return [(_GLYPHS[i % len(_GLYPHS)]) for i in range(n)]
