"""Plain-text table rendering for experiment output."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats compactly, huge/tiny floats scientifically."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """ASCII table with per-column alignment (numbers right, text left)."""
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], source_row: Optional[Sequence[object]] = None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            is_num = source_row is not None and isinstance(
                source_row[i], (int, float)
            ) and not isinstance(source_row[i], bool)
            parts.append(cell.rjust(widths[i]) if is_num else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    for raw, row in zip(rows, rendered):
        lines.append(fmt_row(row, raw))
    return "\n".join(lines)
