"""Empirical resilience matrix: campaigns across schemes and fault models.

The paper compares schemes analytically (Table 3); this experiment is the
empirical counterpart — the same four schemes face identical injected
faults and the outcome distributions plus derived FIT rates land in one
matrix.  It doubles as an end-to-end regression: CPPC and SECDED must
never produce an SDC under single-bit faults, parity must convert dirty
faults into DUEs, and an unprotected cache must leak corruption.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..faults import CampaignConfig, FaultCampaign, Outcome
from ..faults.fitrate import FitEstimate, estimate_fit
from ..faults.schemes import SCHEMES, scheme_factory
from ..memsim.hierarchy import PAPER_CONFIG
from .reporting import format_table

__all__ = [
    "SCHEMES",
    "ResilienceMatrix",
    "resilience_matrix",
    "scheme_factory",
]


@dataclasses.dataclass
class ResilienceMatrix:
    """Outcome rates and FIT estimates per (scheme, fault kind)."""

    rates: Dict[Tuple[str, str], Dict[str, float]]
    fits: Dict[Tuple[str, str], FitEstimate]
    trials: int

    def rate(self, scheme: str, fault: str, outcome: Outcome) -> float:
        """Outcome probability for one cell."""
        return self.rates[(scheme, fault)][outcome.value]

    def to_text(self) -> str:
        """Rendered matrix."""
        rows: List[list] = []
        for (scheme, fault), rates in self.rates.items():
            fit = self.fits[(scheme, fault)]
            rows.append(
                [
                    scheme,
                    fault,
                    rates["benign"],
                    rates["corrected"],
                    rates["due"],
                    rates["sdc"],
                    fit.due_fit,
                    fit.sdc_fit,
                ]
            )
        return format_table(
            ["scheme", "fault", "benign", "corrected", "due", "sdc",
             "DUE FIT", "SDC FIT"],
            rows,
            title=(
                f"Empirical resilience matrix ({self.trials} trials/cell, "
                "dirty-data single bits + 4x4 strikes)"
            ),
        )


def resilience_matrix(
    *,
    trials: int = 20,
    benchmark: str = "gcc",
    warmup_references: int = 1500,
    post_fault_references: int = 1000,
    seed: int = 0,
    runtime=None,
) -> ResilienceMatrix:
    """Run the full scheme x fault-kind campaign grid.

    ``runtime`` (a :class:`repro.runtime.CampaignRuntime`) runs every
    cell's trials on isolated worker subprocesses with timeout/retry
    and — given a checkpoint directory — makes the whole grid resumable;
    its worker lanes are shared across cells, so startup cost is paid
    once.  Cell results are identical either way: trial seeds depend
    only on the cell config, never on scheduling.
    """
    dirty_bits = int(
        PAPER_CONFIG.l1d.size_bytes * 8 * 0.16  # the paper's L1 dirty share
    )
    rates: Dict[Tuple[str, str], Dict[str, float]] = {}
    fits: Dict[Tuple[str, str], FitEstimate] = {}
    for scheme in SCHEMES:
        for fault, shape in (("temporal", (1, 1)), ("spatial4x4", (4, 4))):
            config = CampaignConfig(
                scheme_factory=scheme_factory(scheme),
                benchmark=benchmark,
                trials=trials,
                warmup_references=warmup_references,
                post_fault_references=post_fault_references,
                fault_kind="temporal" if fault == "temporal" else "spatial",
                spatial_shape=shape,
                dirty_only=(fault == "temporal"),
                seed=seed,
            )
            result = FaultCampaign(config).run(runtime=runtime)
            rates[(scheme, fault)] = result.summary()
            fits[(scheme, fault)] = estimate_fit(
                result, resident_bits=dirty_bits
            )
    return ResilienceMatrix(rates=rates, fits=fits, trials=trials)
