"""The paper scorecard: every reproduced claim, checked in one call.

:func:`scorecard` runs the whole evaluation at a configurable scale and
grades each claim of the paper against an acceptance band — the same
bands the benches assert, gathered into a single pass/fail artifact.
Useful as a quick regression gate (``python -m repro.tools.run_scorecard``)
and as the one-page summary of what this reproduction does and does not
claim.

Bands are deliberately *shape* bands (who wins, by roughly what factor),
not absolute-number matches: the substrates are simulators, not the
authors' testbed (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..reliability import (
    analytical_collision_probability,
    estimate_double_fault_failure_fast,
    mttf_aliasing_years,
    mttf_cppc_years,
    mttf_parity_years,
    mttf_secded_years,
)
from .experiments import (
    PAPER_TABLE2_L1,
    PAPER_TABLE2_L2,
    BenchmarkRun,
    figure10,
    figure11,
    figure12,
    run_all_benchmarks,
    table2,
)
from .reporting import format_table


@dataclasses.dataclass(frozen=True)
class Claim:
    """One graded claim."""

    section: str
    statement: str
    expected: str
    measured: str
    passed: bool


@dataclasses.dataclass
class Scorecard:
    """All graded claims plus rendering."""

    claims: List[Claim]

    @property
    def passed(self) -> bool:
        """True when every claim holds."""
        return all(c.passed for c in self.claims)

    @property
    def pass_count(self) -> int:
        """Number of claims that hold."""
        return sum(1 for c in self.claims if c.passed)

    def to_text(self) -> str:
        """Rendered scorecard table."""
        rows = [
            [c.section, c.statement, c.expected, c.measured,
             "PASS" if c.passed else "FAIL"]
            for c in self.claims
        ]
        table = format_table(
            ["paper", "claim", "expected", "measured", "grade"],
            rows,
            title="CPPC reproduction scorecard",
        )
        return (
            table
            + f"\n\n{self.pass_count}/{len(self.claims)} claims hold"
        )


def _within(value: float, low: float, high: float) -> bool:
    return low <= value <= high


def scorecard(
    runs: Optional[Sequence[BenchmarkRun]] = None,
    *,
    n_references: int = 20_000,
    seed: int = 0,
) -> Scorecard:
    """Grade every claim; pass ``runs`` to reuse existing simulations."""
    if runs is None:
        runs = run_all_benchmarks(n_references=n_references, seed=seed)
    claims: List[Claim] = []

    def grade(section, statement, expected, measured, passed):
        claims.append(Claim(section, statement, expected, str(measured), passed))

    # ---- Figure 10 ----------------------------------------------------
    f10 = figure10(runs)
    cppc_cpi = f10.average_overhead("cppc")
    twod_cpi = f10.average_overhead("2d-parity")
    grade("Fig 10", "CPPC CPI overhead tiny", "< 1% avg",
          f"{cppc_cpi:.2%}", cppc_cpi < 0.01)
    grade("Fig 10", "2-D parity costs more CPI than CPPC", ">= CPPC",
          f"{twod_cpi:.2%}", twod_cpi >= cppc_cpi)

    # ---- Figures 11/12 -----------------------------------------------
    f11, f12 = figure11(runs), figure12(runs)
    grade("Fig 11", "L1 CPPC energy ~ +14%", "1.05-1.35x",
          f"{f11.average('cppc'):.3f}", _within(f11.average("cppc"), 1.05, 1.35))
    grade("Fig 11", "L1 SECDED energy ~ +42%", "1.36-1.48x",
          f"{f11.average('secded'):.3f}", _within(f11.average("secded"), 1.36, 1.48))
    grade("Fig 11", "L1 ordering parity<CPPC<SECDED<2D", "strict",
          f"{f11.average('cppc'):.2f}<{f11.average('secded'):.2f}"
          f"<{f11.average('2d-parity'):.2f}",
          f11.average("cppc") < f11.average("secded") < f11.average("2d-parity"))
    grade("Fig 12", "L2 CPPC energy ~ +7%", "1.0-1.25x",
          f"{f12.average('cppc'):.3f}", _within(f12.average("cppc"), 1.0, 1.25))
    grade("Fig 12", "L2 SECDED energy ~ +68%", "1.60-1.78x",
          f"{f12.average('secded'):.3f}", _within(f12.average("secded"), 1.60, 1.78))
    grade("Fig 12", "CPPC relatively cheaper at L2 than L1", "L2 < L1",
          f"{f12.average('cppc'):.3f} vs {f11.average('cppc'):.3f}",
          f12.average("cppc") < f11.average("cppc"))
    twod_l2 = {b: row["2d-parity"] / row["cppc"]
               for b, row in f12.per_benchmark.items()}
    worst = sorted(twod_l2, key=twod_l2.get, reverse=True)[:3]
    grade("Fig 12", "mcf among the worst 2-D benchmarks", "top 3 by 2D/CPPC",
          f"rank set {worst}", "mcf" in worst)

    # ---- Table 2 ------------------------------------------------------
    t2 = table2(runs)
    l1_dirty = t2.average("l1_dirty_fraction")
    grade("Table 2", "L1 dirty residency band", "5-45%",
          f"{l1_dirty:.1%}", _within(l1_dirty, 0.05, 0.45))
    grade("Table 2", "dirty L2 units touched far less often than L1's",
          "L2 Tavg > 3x L1 Tavg",
          f"{t2.average('l2_tavg_cycles'):.0f} vs "
          f"{t2.average('l1_tavg_cycles'):.0f}",
          t2.average("l2_tavg_cycles") > 3 * t2.average("l1_tavg_cycles"))

    # ---- Table 3 (paper inputs) ---------------------------------------
    table3_expectations = [
        ("parity L1", mttf_parity_years(PAPER_TABLE2_L1), 4490.0),
        ("parity L2", mttf_parity_years(PAPER_TABLE2_L2), 64.0),
        ("CPPC L1", mttf_cppc_years(PAPER_TABLE2_L1), 8.02e21),
        ("CPPC L2", mttf_cppc_years(PAPER_TABLE2_L2), 8.07e15),
        ("SECDED L1", mttf_secded_years(PAPER_TABLE2_L1, 64), 6.2e23),
        ("SECDED L2", mttf_secded_years(PAPER_TABLE2_L2, 256), 1.1e19),
    ]
    for label, ours, paper in table3_expectations:
        grade("Table 3", f"MTTF {label} within 2x of paper",
              f"{paper:.3g} y", f"{ours:.3g} y",
              paper / 2 <= ours <= paper * 2)

    # ---- Section 6.3 (Monte-Carlo vs. the collision model) -------------
    # The vectorized engine affords field-study sample counts, so the
    # structural 1/(p*w) claim is graded against a tight absolute band
    # (the seeds are deterministic, so these measurements are stable).
    mc = estimate_double_fault_failure_fast(samples=120_000, seed=seed)
    analytic = analytical_collision_probability(8, 1)
    ci_low, ci_high = mc.failure_rate_ci()
    grade("Sec 6.3", "double-fault failure rate tracks 1/(p*w)",
          f"{analytic:.4f} +/- 0.01",
          f"{mc.failure_rate:.4f} (CI [{ci_low:.4f}, {ci_high:.4f}])",
          _within(mc.failure_rate, analytic - 0.01, analytic + 0.01))
    mc8 = estimate_double_fault_failure_fast(
        samples=120_000, num_pairs=8, seed=seed
    )
    grade("Sec 6.3", "aliasing SDC vanishes at 8 register pairs",
          "SDC rate == 0", f"{mc8.sdc_rate:.6f} (n=120000)",
          mc8.sdc_rate == 0.0)

    # ---- Section 4.7 ---------------------------------------------------
    aliasing = mttf_aliasing_years(PAPER_TABLE2_L2)
    grade("Sec 4.7", "aliasing MTTF within 3x of 4.19e20 y", "1.4e20-1.3e21",
          f"{aliasing:.3g} y", _within(aliasing, 4.19e20 / 3, 4.19e20 * 3))

    return Scorecard(claims=claims)
