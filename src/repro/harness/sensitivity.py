"""Sensitivity analyses around the paper's single design point.

The paper evaluates one configuration (Table 1, 0.001 FIT/bit, 8-way
interleaving).  These sweeps probe how its conclusions move with the
assumptions:

* :func:`sweep_l1_size` — cache size vs miss rate, dirty residency and
  the CPPC energy overhead (larger L1s keep more dirty data but miss
  less);
* :func:`sweep_seu_rate` — Table 3 under different raw upset rates (all
  MTTFs scale, orderings never change);
* :func:`sweep_interleaving` — SECDED's energy overhead vs physical
  interleaving degree, the paper's Section 5.3 point that interleaved
  SECDED scales badly exactly when spatial MBEs demand wider coverage.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..energy import CacheEnergyModel, normalized_energies
from ..memsim.hierarchy import CacheGeometry, HierarchyConfig, PAPER_CONFIG
from ..reliability import (
    ReliabilityInputs,
    mttf_cppc_years,
    mttf_parity_years,
    mttf_secded_years,
)
from ..util import KB
from .experiments import run_benchmark
from .reporting import format_table


@dataclasses.dataclass
class SweepResult:
    """Rows plus the rendered table of one sweep."""

    headers: List[str]
    rows: List[list]
    title: str

    def to_text(self) -> str:
        """Rendered ASCII table."""
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> List[float]:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def _l1_size_row(size_kb: int, benchmark: str, n_references: int, seed: int):
    """One row of the L1-capacity sweep.

    Module-level (not a closure) so :class:`repro.runtime.TrialExecutor`
    workers can unpickle it; returns plain floats so the row crosses the
    process boundary unchanged.
    """
    geometry = CacheGeometry(
        size_bytes=size_kb * KB, ways=2, block_bytes=32, unit_bytes=8,
        latency_cycles=2,
    )
    config = HierarchyConfig(l1d=geometry, l2=PAPER_CONFIG.l2)
    run = run_benchmark(benchmark, n_references, seed, config)
    energies = normalized_energies(run.l1, geometry)
    return [
        size_kb,
        float(run.l1.miss_rate),
        float(run.l1.dirty_fraction),
        float(energies["cppc"]),
        float(energies["2d-parity"]),
    ]


def sweep_l1_size(
    sizes_kb=(16, 32, 64),
    benchmark: str = "gcc",
    n_references: int = 20_000,
    seed: int = 0,
    runtime=None,
) -> SweepResult:
    """L1 capacity sweep: miss rate, dirty residency, CPPC energy.

    ``runtime`` (a :class:`repro.runtime.CampaignRuntime`) distributes
    the per-size simulations across isolated worker subprocesses with
    timeout/retry; rows are identical to the sequential path because
    each row's seed is independent of execution order.
    """
    argses = [(size_kb, benchmark, n_references, seed) for size_kb in sizes_kb]
    if runtime is None:
        rows = [_l1_size_row(*args) for args in argses]
    else:
        rows = runtime.map(_l1_size_row, argses, seed=seed)
    return SweepResult(
        headers=["L1 KB", "miss rate", "dirty fraction", "cppc energy",
                 "2d energy"],
        rows=rows,
        title=f"Sensitivity: L1 capacity ({benchmark})",
    )


def sweep_seu_rate(
    fit_rates=(1e-4, 1e-3, 1e-2),
    base: ReliabilityInputs = None,
) -> SweepResult:
    """Raw upset-rate sweep over the Table 3 models."""
    if base is None:
        base = ReliabilityInputs(
            size_bits=32 * 1024 * 8, dirty_fraction=0.16, tavg_cycles=1828
        )
    rows = []
    for fit in fit_rates:
        inputs = dataclasses.replace(base, seu_fit_per_bit=fit)
        rows.append(
            [
                fit,
                mttf_parity_years(inputs),
                mttf_cppc_years(inputs),
                mttf_secded_years(inputs, 64),
            ]
        )
    return SweepResult(
        headers=["FIT/bit", "parity (years)", "cppc (years)",
                 "secded (years)"],
        rows=rows,
        title="Sensitivity: raw SEU rate (L1 inputs)",
    )


def sweep_interleaving(degrees=(1, 2, 4, 8, 16)) -> SweepResult:
    """SECDED access energy vs physical interleaving degree (Section 5.3).

    CPPC's spatial coverage scales by adding parity bits at ~constant
    energy; interleaved SECDED pays ``degree`` x the bitline energy.
    """
    rows = []
    base = CacheEnergyModel(
        size_bytes=32 * KB, ways=2, block_bytes=32, unit_bytes=8,
        check_bits_per_unit=8, bitline_interleave=1,
    )
    for degree in degrees:
        model = dataclasses.replace(base, bitline_interleave=degree)
        rows.append(
            [
                degree,
                model.read_unit_pj,
                model.read_unit_pj / base.read_unit_pj,
            ]
        )
    return SweepResult(
        headers=["interleave degree", "access pJ", "vs degree 1"],
        rows=rows,
        title="Sensitivity: SECDED bit-interleaving degree (Section 5.3)",
    )
