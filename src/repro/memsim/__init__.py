"""Trace-driven cache simulator: caches, hierarchy, protection plumbing."""

from .address import AddressMapper
from .buffers import BoundedQueue, PendingStore, PendingVictim, StoreBuffer, VictimBuffer
from .cache import Cache, CacheLine
from .coherence import BusStats, CoherentSystem, small_coherent_config
from .hierarchy import (
    PAPER_CONFIG,
    PAPER_CONFIG_WITH_L3,
    CacheGeometry,
    HierarchyConfig,
    MemoryHierarchy,
)
from .mainmem import MainMemory
from .protection import (
    CacheProtection,
    FaultResolution,
    NoProtection,
    ParityProtection,
    Resolution,
    SecdedProtection,
    TwoDParityProtection,
)
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    available_policies,
    make_policy,
)
from .scrub import EarlyWritebackScrubber, ScrubberStats
from .snapshot import (
    CacheSnapshot,
    HierarchySnapshot,
    LineSnapshot,
    MemorySnapshot,
    PolicySnapshot,
    SnapshotCache,
    restore_cache,
    restore_hierarchy,
    restore_memory,
    snapshot_cache,
    snapshot_hierarchy,
    snapshot_memory,
)
from .stats import CacheStats
from .types import AccessResult, AccessType, UnitLocation

# Imported last: repro.cppc (needed for register bookkeeping) itself
# imports this package's submodules.
from .batch import (  # noqa: E402
    BatchReplayEngine,
    BatchReplayResult,
    BatchTrace,
    LineState,
    ReplayCapture,
    cross_check_scalar,
    snapshot_scalar_cache,
)

__all__ = [
    "AddressMapper",
    "BatchReplayEngine",
    "BatchReplayResult",
    "BatchTrace",
    "LineState",
    "ReplayCapture",
    "cross_check_scalar",
    "snapshot_scalar_cache",
    "CacheSnapshot",
    "HierarchySnapshot",
    "LineSnapshot",
    "MemorySnapshot",
    "PolicySnapshot",
    "SnapshotCache",
    "restore_cache",
    "restore_hierarchy",
    "restore_memory",
    "snapshot_cache",
    "snapshot_hierarchy",
    "snapshot_memory",
    "BoundedQueue",
    "PendingStore",
    "PendingVictim",
    "StoreBuffer",
    "VictimBuffer",
    "Cache",
    "CacheLine",
    "BusStats",
    "CoherentSystem",
    "small_coherent_config",
    "EarlyWritebackScrubber",
    "ScrubberStats",
    "PAPER_CONFIG",
    "PAPER_CONFIG_WITH_L3",
    "CacheGeometry",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MainMemory",
    "CacheProtection",
    "FaultResolution",
    "NoProtection",
    "ParityProtection",
    "Resolution",
    "SecdedProtection",
    "TwoDParityProtection",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "available_policies",
    "make_policy",
    "CacheStats",
    "AccessResult",
    "AccessType",
    "UnitLocation",
]
