"""Address arithmetic for set-associative caches."""

from __future__ import annotations

import dataclasses

from ..errors import AlignmentError, ConfigurationError


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclasses.dataclass(frozen=True)
class AddressMapper:
    """Splits a byte address into tag / set index / block offset fields.

    Attributes:
        block_bytes: cache line size in bytes (power of two).
        num_sets: number of sets (power of two).
        unit_bytes: protection/dirty-bit granularity in bytes (power of
            two, divides ``block_bytes``).  A word for an L1 cache, an L1
            block for an L2 cache (paper Section 3.5).
    """

    block_bytes: int
    num_sets: int
    unit_bytes: int = 8

    def __post_init__(self):
        for name in ("block_bytes", "num_sets", "unit_bytes"):
            value = getattr(self, name)
            if not _is_pow2(value):
                raise ConfigurationError(f"{name} must be a power of two, got {value}")
        if self.unit_bytes > self.block_bytes:
            raise ConfigurationError(
                f"unit ({self.unit_bytes}B) cannot exceed block ({self.block_bytes}B)"
            )

    @property
    def units_per_block(self) -> int:
        """Number of protection units in one cache line."""
        return self.block_bytes // self.unit_bytes

    def block_address(self, addr: int) -> int:
        """Address of the first byte of the line containing ``addr``."""
        return addr & ~(self.block_bytes - 1)

    def block_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` within its line."""
        return addr & (self.block_bytes - 1)

    def set_index(self, addr: int) -> int:
        """Set holding the line that contains ``addr``."""
        return (addr // self.block_bytes) % self.num_sets

    def tag(self, addr: int) -> int:
        """Tag of the line containing ``addr``."""
        return addr // self.block_bytes // self.num_sets

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Block address from a (tag, set) pair — inverse of tag/set_index."""
        return (tag * self.num_sets + set_index) * self.block_bytes

    def unit_index(self, addr: int) -> int:
        """Protection unit within the line that contains ``addr``."""
        return self.block_offset(addr) // self.unit_bytes

    def byte_in_unit(self, addr: int) -> int:
        """Byte offset of ``addr`` within its protection unit."""
        return addr & (self.unit_bytes - 1)

    def check_access(self, addr: int, size: int) -> None:
        """Validate a naturally-aligned access that stays inside one line."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr}")
        if size < 1 or not _is_pow2(size):
            raise AlignmentError(f"access size must be a power of two, got {size}")
        if size > self.block_bytes:
            raise AlignmentError(
                f"access of {size}B exceeds block size {self.block_bytes}B"
            )
        if addr % size:
            raise AlignmentError(f"address {addr:#x} not aligned to {size}B")

    def units_touched(self, addr: int, size: int) -> range:
        """Unit indices covered by an access of ``size`` bytes at ``addr``."""
        self.check_access(addr, size)
        first = self.unit_index(addr)
        last = self.unit_index(addr + size - 1)
        return range(first, last + 1)
