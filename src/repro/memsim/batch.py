"""NumPy-vectorized batch trace replay — the scalar ``Cache`` fast path.

The object-model :class:`~repro.memsim.cache.Cache` walks every access one
word at a time, which caps fault-injection campaigns and dirty-data sweeps
at toy trace sizes.  This module replays a *whole trace* through a
single-level write-back cache in bulk phases:

1. **Decompose** — the trace becomes structured arrays
   (:class:`BatchTrace`) and every address is split into tag / set / unit
   / byte-offset fields with vectorized shifts and masks, mirroring
   :class:`~repro.memsim.address.AddressMapper`.
2. **Resolve** — accesses are grouped by set (``np.argsort``) and each
   set's hit / miss / eviction / LRU sequence is resolved over flat array
   state, logging dirty-word movement as event streams instead of
   mutating Python objects.
3. **Accumulate** — CPPC's R1/R2 registers (including the byte rotation
   by ``row mod num_classes`` of :mod:`repro.cppc.shifting`), the
   dirty-occupancy integral, and the Tavg interval histogram are reduced
   from the event streams with ``np.bitwise_xor.reduce`` / ``np.cumsum``
   / ``np.bincount``.

The engine reproduces the scalar semantics *exactly* — same hit/miss
stream, same statistics (including the Table 2 dirty-data metrics), same
final data, dirty bits and check words, and bit-identical R1/R2 register
contents — which :func:`cross_check_scalar` verifies word-for-word
against a real :class:`~repro.memsim.cache.Cache`.

Scope: fault-free replay of 64-bit-unit caches (the paper's L1 shape)
under LRU with write-allocate.  Fault injection, wider units and other
policies stay on the scalar path; :class:`repro.workloads.replay.FastReplay`
enforces the boundary.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..cppc.registers import RegisterFile
from ..errors import AlignmentError, ConfigurationError, TraceFormatError
from ..util import WORD_BYTES
from .address import AddressMapper
from .stats import CacheStats
from .types import AccessType

#: Power-of-two boundaries used to bucket Tavg intervals exactly
#: (``searchsorted`` beats float ``log2`` because it cannot misround).
_POW2 = np.array([1 << b for b in range(63)], dtype=np.int64)

#: All-ones byte masks indexed by access size (0..8 bytes).
_SIZE_MASKS = np.array(
    [(1 << (8 * s)) - 1 for s in range(WORD_BYTES + 1)], dtype=np.uint64
)


def _fold_check_words(values: np.ndarray) -> np.ndarray:
    """8-way interleaved parity of 64-bit words, vectorized.

    Folding the eight bytes of a word with XOR leaves parity group ``i``
    (MSB-first bit ``i`` of every byte) in check-bit position ``i`` —
    exactly :meth:`repro.coding.InterleavedParity.encode` for the
    ``data_bits=64, ways=8`` configuration.
    """
    v = values.astype(np.uint64, copy=True)
    v ^= v >> np.uint64(32)
    v ^= v >> np.uint64(16)
    v ^= v >> np.uint64(8)
    return v & np.uint64(0xFF)


def _rotl_bytes_u64(values: np.ndarray, count: int) -> np.ndarray:
    """Rotate 64-bit words left by ``count`` bytes (vectorized)."""
    count %= 8
    if count == 0:
        return values
    shift = np.uint64(8 * count)
    inv = np.uint64(64 - 8 * count)
    return (values << shift) | (values >> inv)


@dataclasses.dataclass(frozen=True)
class BatchTrace:
    """A memory trace as structured arrays (one row per reference).

    Attributes:
        addr: byte addresses (``int64``).
        size: access sizes in bytes (``int64``, powers of two ≤ 8).
        is_store: store flags (``bool``).
        gap: non-memory instruction gaps (``int64``).
        value_word: store bytes positioned inside their 64-bit unit
            (``uint64``, zero for loads).
        value_mask: byte mask of the store inside its unit (``uint64``).
    """

    addr: np.ndarray
    size: np.ndarray
    is_store: np.ndarray
    gap: np.ndarray
    value_word: np.ndarray
    value_mask: np.ndarray

    def __len__(self) -> int:
        return len(self.addr)

    @property
    def instructions(self) -> int:
        """Instructions the trace accounts for (gaps plus references)."""
        return int(self.gap.sum()) + len(self)

    @classmethod
    def from_records(cls, records: Iterable) -> "BatchTrace":
        """Pack :class:`~repro.workloads.trace.TraceRecord` objects.

        Every access must stay inside one 64-bit unit (size a power of
        two ≤ 8, naturally aligned) — the precondition of the batch
        engine's single-unit access path.  Store bytes are positioned
        inside their unit with vectorized shifts; only the raw field
        extraction walks the record objects.
        """
        records = list(records)
        n = len(records)
        store_op = AccessType.STORE
        is_store = np.fromiter(
            (r.op is store_op for r in records),
            dtype=bool,
            count=n,
        )
        addr = np.fromiter((r.addr for r in records), dtype=np.int64, count=n)
        size = np.fromiter((r.size for r in records), dtype=np.int64, count=n)
        gap = np.fromiter((r.gap for r in records), dtype=np.int64, count=n)
        raw = np.fromiter(
            (int.from_bytes(r.value, "big") for r in records),
            dtype=np.uint64,
            count=n,
        )
        return cls.from_columns(addr, size, is_store, gap, raw)

    @classmethod
    def from_columns(
        cls,
        addr: np.ndarray,
        size: np.ndarray,
        is_store: np.ndarray,
        gap: np.ndarray,
        raw: np.ndarray,
    ) -> "BatchTrace":
        """Build a trace straight from column arrays (no record objects).

        ``raw`` carries each store's value bytes as a right-aligned
        big-endian integer (zero for loads) — the representation the
        columnar trace store (:mod:`repro.workloads.store`) decodes from
        its value heap.  Input arrays may be read-only views (e.g. into
        an mmap); they are adopted without copying.
        """
        addr = np.asarray(addr, dtype=np.int64)
        size = np.asarray(size, dtype=np.int64)
        is_store = np.asarray(is_store, dtype=bool)
        gap = np.asarray(gap, dtype=np.int64)
        raw = np.asarray(raw, dtype=np.uint64)
        n = len(addr)
        trace = cls(
            addr=addr,
            size=size,
            is_store=is_store,
            gap=gap,
            value_word=np.zeros(n, dtype=np.uint64),
            value_mask=np.zeros(n, dtype=np.uint64),
        )
        trace.validate()
        # A store of `size` bytes lands at byte offset `addr mod 8` of its
        # big-endian unit: left-shift the value and an all-ones byte mask
        # into position, in bulk.
        shift = (8 * (WORD_BYTES - (addr & 7) - size)).astype(np.uint64)
        trace.value_word[:] = raw << shift
        np.copyto(
            trace.value_mask,
            _SIZE_MASKS[size] << shift,
            where=is_store,
        )
        return trace

    def slice(self, start: int, stop: int) -> "BatchTrace":
        """A zero-copy view of rows ``[start:stop)``."""
        return BatchTrace(
            addr=self.addr[start:stop],
            size=self.size[start:stop],
            is_store=self.is_store[start:stop],
            gap=self.gap[start:stop],
            value_word=self.value_word[start:stop],
            value_mask=self.value_mask[start:stop],
        )

    def to_records(self) -> List:
        """The exact :class:`~repro.workloads.trace.TraceRecord` list.

        Inverse of :meth:`from_records`: store values are recovered by
        shifting each positioned unit word back down to its raw bytes,
        so ``BatchTrace.from_records(t.to_records())`` is bit-identical
        to ``t``.
        """
        from ..workloads.trace import TraceRecord

        shift = (8 * (WORD_BYTES - (self.addr & 7) - self.size)).astype(
            np.uint64
        )
        raw = (self.value_word >> shift).tolist()
        records = []
        for a, s, st, g, v in zip(
            self.addr.tolist(),
            self.size.tolist(),
            self.is_store.tolist(),
            self.gap.tolist(),
            raw,
        ):
            if st:
                records.append(
                    TraceRecord(
                        AccessType.STORE, a, s, g, int(v).to_bytes(s, "big")
                    )
                )
            else:
                records.append(TraceRecord(AccessType.LOAD, a, s, g))
        return records

    def validate(self) -> None:
        """Bulk-check the single-unit access preconditions."""
        if len(self) and int(self.addr.min()) < 0:
            raise TraceFormatError("batch trace addresses must be non-negative")
        sizes = self.size
        if len(self) and (
            int(sizes.min()) < 1
            or int(sizes.max()) > WORD_BYTES
            or bool(np.any(sizes & (sizes - 1)))
        ):
            raise AlignmentError(
                "batch replay needs power-of-two access sizes of at most "
                f"{WORD_BYTES} bytes"
            )
        if len(self) and bool(np.any(self.addr % sizes)):
            raise AlignmentError("batch replay needs naturally aligned accesses")


class ReplayCapture:
    """Side-channel record of everything :class:`BatchReplayResult` omits.

    A campaign warm-up replayed through the batch engine must afterwards
    be *rehydrated* into a full scalar hierarchy (see
    :mod:`repro.faults.warmstate`).  The result bundle carries final L1
    lines, stats and registers, but not the next-level traffic (needed to
    warm the L2 behind it), the per-unit ``Tavg`` timestamps, or the
    final LRU orders.  Passing a capture to :meth:`BatchReplayEngine.replay`
    collects them:

    Attributes:
        events: next-level block traffic, one tuple per miss read /
            dirty write-back — ``(access_index, kind, mem_slot, cycle,
            block_words)`` with ``kind`` 0 for a read (``block_words``
            None) and 1 for a write.  Sorted into global access order
            (stable, so a miss's read precedes its victim's write-back,
            exactly the scalar ``Cache`` order).
        lru: final MRU-to-LRU way order per touched set.
        line_last: final ``[set][way] -> [unit] -> last dirty cycle``
            state (None for never-filled ways).
        slot_addr: byte address of each memory-image slot.
        final_cycle: cycle of the last access (0 for an empty trace).
        dirty_stores: access indices of stores that hit an already-dirty
            unit (sorted) — the per-access view of the
            ``stores_to_dirty`` counter, which the timing fast path
            turns into ``AccessEvent.was_dirty``.
    """

    def __init__(self):
        self.events: List[tuple] = []
        self.lru: Dict[int, List[int]] = {}
        self.line_last: Optional[list] = None
        self.slot_addr: Optional[List[int]] = None
        self.final_cycle: int = 0
        self.dirty_stores: List[int] = []


@dataclasses.dataclass(frozen=True)
class LineState:
    """Final contents of one cache line after a batch replay."""

    tag: int
    data: bytes
    dirty: Tuple[bool, ...]
    check: Tuple[int, ...]


@dataclasses.dataclass
class BatchReplayResult:
    """Everything a batch replay produced.

    ``stats`` and ``registers`` are the *same types* the scalar simulator
    uses (:class:`~repro.memsim.stats.CacheStats`,
    :class:`~repro.cppc.registers.RegisterFile`), populated to be
    field-for-field comparable.
    """

    references: int
    loads: int
    stores: int
    instructions: int
    stats: CacheStats
    registers: RegisterFile
    lines: Dict[Tuple[int, int], LineState]
    memory: Dict[int, bytes]
    memory_reads: int
    memory_writes: int

    @property
    def dirty_xor(self) -> Dict[int, int]:
        """R1 ^ R2 per register pair (the recovery invariant)."""
        return {i: p.dirty_xor for i, p in enumerate(self.registers.pairs)}


class BatchReplayEngine:
    """Vectorized single-level cache replay with CPPC register tracking.

    Mirrors a :class:`~repro.memsim.cache.Cache` built with
    ``unit_bytes=8``, LRU replacement, write-back / write-allocate, a
    :class:`~repro.cppc.CppcProtection` scheme and a
    :class:`~repro.memsim.mainmem.MainMemory` next level.

    Args:
        size_bytes: total data capacity.
        ways: associativity.
        block_bytes: line size.
        num_pairs: CPPC (R1, R2) register pairs (1, 2, 4 or 8).
        byte_shifting: rotate values by their row's class before XORing.
        num_classes: rotation classes (``row mod num_classes``).
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        block_bytes: int,
        *,
        unit_bytes: int = 8,
        num_pairs: int = 1,
        byte_shifting: bool = True,
        num_classes: int = 8,
        policy: str = "lru",
    ):
        if unit_bytes != WORD_BYTES:
            raise ConfigurationError(
                "the batch engine replays 64-bit protection units only "
                f"(unit_bytes=8); got {unit_bytes}"
            )
        if policy.lower() != "lru":
            raise ConfigurationError(
                f"the batch engine models LRU replacement only, got {policy!r}"
            )
        if size_bytes % (ways * block_bytes):
            raise ConfigurationError(
                f"size {size_bytes} not divisible by ways*block "
                f"({ways}*{block_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.unit_bytes = unit_bytes
        self.num_sets = size_bytes // (ways * block_bytes)
        self.mapper = AddressMapper(
            block_bytes=block_bytes, num_sets=self.num_sets, unit_bytes=unit_bytes
        )
        self.units_per_block = self.mapper.units_per_block
        self.num_pairs = num_pairs
        self.byte_shifting = byte_shifting
        self.num_classes = num_classes
        # Validates the pair/class geometry exactly like CppcProtection.
        RegisterFile(64, num_pairs=num_pairs, num_classes=num_classes)
        #: Optional :class:`repro.obs.TraceSink`.  When absent or
        #: disabled, :meth:`replay` runs the single-chunk uninstrumented
        #: path — no timing calls, no extra per-set work.
        self.obs = None

    #: Set-range chunks per replay when a sink is attached (each chunk
    #: becomes one span in the trace).
    OBS_CHUNKS = 8

    # ------------------------------------------------------------------
    # Phase 1 — bulk address decomposition
    # ------------------------------------------------------------------
    def decompose(
        self, trace: BatchTrace
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split every address into (set, tag, unit, rotation class)."""
        block_shift = self.block_bytes.bit_length() - 1
        set_bits = self.num_sets.bit_length() - 1
        blocks = trace.addr >> block_shift
        set_idx = blocks & (self.num_sets - 1)
        tags = blocks >> set_bits
        units = (trace.addr & (self.block_bytes - 1)) >> 3
        classes = (set_idx * self.units_per_block + units) % self.num_classes
        return set_idx, tags, units, classes

    # ------------------------------------------------------------------
    # Phases 2+3 — per-set resolution and bulk reduction
    # ------------------------------------------------------------------
    def replay(
        self,
        trace: BatchTrace,
        capture: Optional[ReplayCapture] = None,
    ) -> BatchReplayResult:
        """Replay ``trace`` and return the full result bundle.

        With a :class:`ReplayCapture`, the next-level traffic and final
        microarchitectural details needed to rebuild a scalar hierarchy
        are recorded as a side effect (simulation outcomes unchanged).
        """
        state = _ReplayState(self, capture)
        self._feed(state, trace)
        return self._finish(state)

    def replay_chunks(
        self,
        chunks: Iterable[BatchTrace],
        capture: Optional[ReplayCapture] = None,
    ) -> BatchReplayResult:
        """Replay a trace streamed as consecutive :class:`BatchTrace` chunks.

        Cache, register and statistics state persist across chunk
        boundaries, so the result is bit-identical to a one-shot
        :meth:`replay` of the concatenated trace — only peak memory
        differs (one chunk of columns at a time plus the cache state).
        This is how a :class:`repro.workloads.store.ColumnarTraceReader`
        replays traces far larger than the Python-object path allows.
        """
        state = _ReplayState(self, capture)
        for chunk in chunks:
            self._feed(state, chunk)
        return self._finish(state)

    # ------------------------------------------------------------------
    # Incremental streaming API
    # ------------------------------------------------------------------
    def begin(self, capture: Optional[ReplayCapture] = None) -> "_ReplayState":
        """Open a persistent replay: feed chunks, then :meth:`finish`.

        Unlike :meth:`replay_chunks`, the caller holds the state between
        chunks and may observe it mid-stream (via
        :meth:`_ReplayState.checkpoint`) — how the timing fast path
        splits one replay into a warmup and a measured window without
        replaying anything twice.
        """
        return _ReplayState(self, capture)

    def feed(self, state: "_ReplayState", trace: BatchTrace) -> None:
        """Advance an open replay by one :class:`BatchTrace` chunk."""
        self._feed(state, trace)

    def finish(self, state: "_ReplayState") -> BatchReplayResult:
        """Close an open replay and fold it into the result bundle."""
        return self._finish(state)

    def close(self, state: "_ReplayState") -> None:
        """Seal an open replay's capture without building a result.

        The timing fast path reads its statistics from checkpoints and
        only needs the capture finalized; skipping the line/register/
        memory snapshots :meth:`finish` performs removes the dominant
        fixed cost at that call site.
        """
        self._seal_capture(state)

    def _feed(self, state: "_ReplayState", trace: BatchTrace) -> None:
        """Resolve one chunk of accesses against the persistent state."""
        trace.validate()
        n = len(trace)
        if n == 0:
            return
        obs = self.obs if self.obs is not None and self.obs.enabled else None
        t_phase = time.perf_counter() if obs is not None else 0.0
        offset = state.references
        set_idx, tags, units, classes = self.decompose(trace)
        cycles = state.last_cycle + np.cumsum(trace.gap + 1)
        # Every block the chunk can touch, mapped to a persistent dense
        # memory-image slot so the replay loop never hashes an address.
        block_addrs = trace.addr >> (self.block_bytes.bit_length() - 1)
        unique_blocks, inverse = np.unique(block_addrs, return_inverse=True)
        upb = self.units_per_block
        block_slot = state.block_slot
        lookup = np.empty(len(unique_blocks), dtype=np.int64)
        for j, block in enumerate(unique_blocks.tolist()):
            slot = block_slot.get(block)
            if slot is None:
                slot = len(state.memimg)
                block_slot[block] = slot
                state.slot_blocks.append(block)
                state.memimg.append([0] * upb)
            lookup[j] = slot
        mem_slot = lookup[inverse]

        r1_vals: List[int] = []
        r1_cls: List[int] = []
        r2_vals: List[int] = []
        r2_cls: List[int] = []
        intervals: List[int] = []
        delta_idx: List[int] = []
        delta_val: List[int] = []

        order = np.argsort(set_idx, kind="stable")
        bounds = np.searchsorted(set_idx[order], np.arange(self.num_sets + 1))
        if obs is None:
            # Uninstrumented path: one span, zero timing calls.
            set_ranges = [(0, self.num_sets)]
        else:
            obs.span(
                "batch",
                "decompose",
                t_phase,
                time.perf_counter() - t_phase,
                {"references": n, "offset": offset},
            )
            step = -(-self.num_sets // self.OBS_CHUNKS)
            set_ranges = [
                (c0, min(c0 + step, self.num_sets))
                for c0 in range(0, self.num_sets, step)
            ]
        for c0, c1 in set_ranges:
            t_chunk = time.perf_counter() if obs is not None else 0.0
            for s in range(c0, c1):
                lo, hi = int(bounds[s]), int(bounds[s + 1])
                if lo == hi:
                    continue
                state.touched.add(s)
                sub = order[lo:hi]
                self._replay_set(
                    s,
                    (sub + offset).tolist(),
                    tags[sub].tolist(),
                    units[sub].tolist(),
                    classes[sub].tolist(),
                    trace.is_store[sub].tolist(),
                    cycles[sub].tolist(),
                    mem_slot[sub].tolist(),
                    trace.value_word[sub].tolist(),
                    trace.value_mask[sub].tolist(),
                    state.memimg,
                    (
                        state.line_tag[s],
                        state.line_data[s],
                        state.line_dirty[s],
                        state.line_last[s],
                        state.line_slot[s],
                        state.line_ndirty[s],
                        state.lru[s],
                    ),
                    state.counters,
                    r1_vals,
                    r1_cls,
                    r2_vals,
                    r2_cls,
                    intervals,
                    delta_idx,
                    delta_val,
                    capture=state.capture,
                )
            if obs is not None:
                obs.span(
                    "batch",
                    f"resolve-sets[{c0}:{c1}]",
                    t_chunk,
                    time.perf_counter() - t_chunk,
                    {
                        "sets": c1 - c0,
                        "references": int(bounds[c1] - bounds[c0]),
                    },
                )

        t_phase = time.perf_counter() if obs is not None else 0.0
        # Dirty-occupancy integral: the count in force over the interval
        # ending at access i is the cumulative delta through access i-1
        # (the scalar cache integrates *before* applying an access's
        # dirty-bit changes).  The per-chunk increment telescopes to the
        # one-shot reduction exactly because both are integer sums.
        deltas = np.zeros(n, dtype=np.int64)
        if delta_idx:
            np.add.at(
                deltas,
                np.array(delta_idx, dtype=np.int64) - offset,
                np.array(delta_val, dtype=np.int64),
            )
        counts = state.dirty_count + np.cumsum(deltas)
        prev_counts = np.concatenate(([state.dirty_count], counts[:-1]))
        spans = np.diff(np.concatenate(([state.last_cycle], cycles)))
        state.integral += int(np.dot(spans, prev_counts))
        state.dirty_count = int(counts[-1])
        state.last_cycle = int(cycles[-1])
        if intervals:
            arr = np.array(intervals, dtype=np.int64)
            state.interval_sum += int(arr.sum())
            state.interval_count += len(arr)
            buckets = np.maximum(
                np.searchsorted(_POW2, arr, side="right") - 1, 0
            )
            hist = state.interval_hist
            for b, count in enumerate(np.bincount(buckets)):
                if count:
                    hist[int(b)] = hist.get(int(b), 0) + int(count)
        self._fold_stream(state.r1_acc, r1_vals, r1_cls)
        self._fold_stream(state.r2_acc, r2_vals, r2_cls)
        state.references += n
        state.stores += int(trace.is_store.sum())
        state.instructions += int(trace.gap.sum()) + n
        if obs is not None:
            obs.span(
                "batch",
                "accumulate",
                t_phase,
                time.perf_counter() - t_phase,
                {"references": n},
            )

    def _seal_capture(self, state: "_ReplayState") -> None:
        """Finalize the capture attached to an open replay, if any."""
        capture = state.capture
        bb = self.block_bytes
        if capture is not None:
            # Stable sort: within one access the miss read was appended
            # before the victim write-back, matching the scalar order.
            capture.events.sort(key=lambda e: e[0])
            capture.dirty_stores.sort()
            capture.line_last = state.line_last
            capture.slot_addr = [int(b) * bb for b in state.slot_blocks]
            capture.final_cycle = state.last_cycle
            for s in sorted(state.touched):
                capture.lru[s] = state.lru[s]

    def _finish(self, state: "_ReplayState") -> BatchReplayResult:
        """Fold the accumulated state into the result bundle."""
        self._seal_capture(state)
        bb = self.block_bytes
        capture = state.capture
        stats = CacheStats()
        stats.configure(self.num_sets * self.ways * self.units_per_block)
        c = state.counters
        stats.read_hits = c.read_hits
        stats.read_misses = c.read_misses
        stats.write_hits = c.write_hits
        stats.write_misses = c.write_misses
        stats.fills = c.fills
        stats.writebacks = c.writebacks
        stats.evictions_clean = c.evictions_clean
        stats.evictions_dirty = c.evictions_dirty
        stats.read_before_writes = c.read_before_writes
        stats.stores_to_dirty_units = c.stores_to_dirty
        if state.references:
            stats.dirty_time_integral = float(state.integral)
            stats.observed_cycles = float(state.last_cycle)
            stats._last_event_cycle = float(state.last_cycle)
            stats._current_dirty_units = state.dirty_count
        if state.interval_count:
            stats.dirty_interval_sum = float(state.interval_sum)
            stats.dirty_interval_count = state.interval_count
            stats.dirty_interval_histogram = dict(
                sorted(state.interval_hist.items())
            )
        registers = RegisterFile(
            64, num_pairs=self.num_pairs, num_classes=self.num_classes
        )
        classes_per_pair = self.num_classes // self.num_pairs
        for pair_index, pair in enumerate(registers.pairs):
            for rotation_class in range(
                pair_index * classes_per_pair,
                (pair_index + 1) * classes_per_pair,
            ):
                pair.r1 ^= state.r1_acc[rotation_class]
                pair.r2 ^= state.r2_acc[rotation_class]
            # Incremental event parity telescopes to the parity of the
            # final register value (popcount is linear over XOR mod 2).
            pair.r1_parity = bin(pair.r1).count("1") & 1
            pair.r2_parity = bin(pair.r2).count("1") & 1
        lines = self._snapshot_lines(
            state.line_tag, state.line_data, state.line_dirty
        )
        if state.memimg:
            raw = np.array(state.memimg, dtype=np.uint64).astype(">u8").tobytes()
        else:
            raw = b""
        memory = {
            int(block) * bb: raw[slot * bb : (slot + 1) * bb]
            for slot, block in enumerate(state.slot_blocks)
        }
        return BatchReplayResult(
            references=state.references,
            loads=state.references - state.stores,
            stores=state.stores,
            instructions=state.instructions,
            stats=stats,
            registers=registers,
            lines=lines,
            memory=memory,
            memory_reads=c.mem_reads,
            memory_writes=c.mem_writes,
        )

    def _fold_stream(
        self,
        acc: List[int],
        values: List[int],
        stream_classes: List[int],
    ) -> None:
        """XOR one chunk's rotated value stream into the per-class accs."""
        if not values:
            return
        vals = np.array(values, dtype=np.uint64)
        cls = np.array(stream_classes, dtype=np.int64)
        for rotation_class in range(self.num_classes):
            selected = vals[cls == rotation_class]
            if not len(selected):
                continue
            if self.byte_shifting:
                selected = _rotl_bytes_u64(selected, rotation_class)
            acc[rotation_class] ^= int(np.bitwise_xor.reduce(selected))

    # ------------------------------------------------------------------
    def _replay_set(
        self,
        s: int,
        idxs: List[int],
        tags: List[int],
        units: List[int],
        classes: List[int],
        is_store: List[bool],
        cycles: List[int],
        slots: List[int],
        words: List[int],
        masks: List[int],
        memimg: List[List[int]],
        state,
        c: "_Counters",
        r1_vals: List[int],
        r1_cls: List[int],
        r2_vals: List[int],
        r2_cls: List[int],
        intervals: List[int],
        delta_idx: List[int],
        delta_val: List[int],
        capture: Optional[ReplayCapture] = None,
    ) -> None:
        """Resolve one set's access sequence over flat list state.

        Sets are independent subproblems — a block address maps to
        exactly one set, so cache *and* memory-image state touched here
        is disjoint from every other set's.  The per-access work is a
        handful of integer operations; everything reducible is deferred
        to the bulk phases.  ``state`` (including the LRU order) lives in
        the caller's :class:`_ReplayState`, so consecutive chunks of one
        streamed trace resume exactly where the previous chunk stopped.
        """
        ltag, ldata, ldirty, llast, lslot, lndirty, lru = state
        ways = self.ways
        way_range = range(ways)
        upb = self.units_per_block
        num_classes = self.num_classes
        cls_base = (s * upb) % num_classes
        r1v = r1_vals.append
        r1c = r1_cls.append
        r2v = r2_vals.append
        r2c = r2_cls.append
        iva = intervals.append
        dia = delta_idx.append
        dva = delta_val.append
        ev = capture.events.append if capture is not None else None
        dsa = capture.dirty_stores.append if capture is not None else None

        for i, t, u, cls_i, st, now, slot, word, msk in zip(
            idxs, tags, units, classes, is_store, cycles, slots, words, masks
        ):
            # Tag match across the ways (scalar Cache._find order).
            w = -1
            for cand in way_range:
                if ltag[cand] == t:
                    w = cand
                    break
            if w >= 0:
                if st:
                    c.write_hits += 1
                else:
                    c.read_hits += 1
            else:
                if st:
                    c.write_misses += 1
                else:
                    c.read_misses += 1
                c.mem_reads += 1
                if ev is not None:
                    ev((i, 0, slot, now, None))
                # Victim: first invalid way, else LRU tail.
                v = -1
                for cand in way_range:
                    if ltag[cand] == -1:
                        v = cand
                        break
                if v < 0:
                    v = lru[-1]
                    nd = lndirty[v]
                    if nd:
                        victim_data = ldata[v]
                        victim_dirty = ldirty[v]
                        for uu in range(upb):
                            if victim_dirty[uu]:
                                r2v(victim_data[uu])
                                r2c((cls_base + uu) % num_classes)
                        memimg[lslot[v]] = victim_data
                        if ev is not None:
                            ev((i, 1, lslot[v], now, victim_data))
                        c.mem_writes += 1
                        c.writebacks += 1
                        c.evictions_dirty += 1
                        dia(i)
                        dva(-nd)
                    else:
                        c.evictions_clean += 1
                ltag[v] = t
                ldata[v] = memimg[slot][:]
                ldirty[v] = [False] * upb
                llast[v] = [None] * upb
                lslot[v] = slot
                lndirty[v] = 0
                c.fills += 1
                w = v
            drow = ldirty[w]
            was_dirty = drow[u]
            if st:
                vrow = ldata[w]
                lrow = llast[w]
                old = vrow[u]
                if was_dirty:
                    c.stores_to_dirty += 1
                    c.read_before_writes += 1
                    if dsa is not None:
                        dsa(i)
                    r2v(old)
                    r2c(cls_i)
                new = (old & ~msk) | word
                r1v(new)
                r1c(cls_i)
                vrow[u] = new
                if not was_dirty:
                    drow[u] = True
                    lndirty[w] += 1
                    dia(i)
                    dva(1)
                last = lrow[u]
                if last is not None:
                    iva(now - last)
                lrow[u] = now
            elif was_dirty:
                lrow = llast[w]
                iva(now - lrow[u])
                lrow[u] = now
            if lru[0] != w:
                lru.remove(w)
                lru.insert(0, w)

    def _snapshot_lines(
        self, line_tag, line_data, line_dirty
    ) -> Dict[Tuple[int, int], LineState]:
        """Final per-line state with check words re-encoded in bulk."""
        lines: Dict[Tuple[int, int], LineState] = {}
        for s in range(self.num_sets):
            for w in range(self.ways):
                if line_tag[s][w] == -1:
                    continue
                values = np.array(line_data[s][w], dtype=np.uint64)
                # Fault-free replay of a linear code: the check word of
                # every unit equals a fresh encode of its value.
                checks = _fold_check_words(values)
                lines[(s, w)] = LineState(
                    tag=line_tag[s][w],
                    data=values.astype(">u8").tobytes(),
                    dirty=tuple(line_dirty[s][w]),
                    check=tuple(int(x) for x in checks),
                )
        return lines


class _Counters:
    """Scalar event counters accumulated by the replay loop."""

    __slots__ = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "fills",
        "writebacks",
        "evictions_clean",
        "evictions_dirty",
        "read_before_writes",
        "stores_to_dirty",
        "mem_reads",
        "mem_writes",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)


class _ReplayState:
    """Cache state and reduction accumulators carried across chunks.

    One instance spans one logical trace; :meth:`BatchReplayEngine._feed`
    advances it by a chunk at a time and
    :meth:`BatchReplayEngine._finish` folds it into a
    :class:`BatchReplayResult`.  Everything whose size would otherwise
    grow with the *trace* (event streams, interval lists, delta lists)
    is reduced per chunk, so peak memory is one chunk of columns plus
    the cache-sized state — the property that lets the columnar store
    replay traces far larger than RAM-resident record lists.
    """

    __slots__ = (
        "capture",
        "counters",
        "line_tag",
        "line_data",
        "line_dirty",
        "line_last",
        "line_slot",
        "line_ndirty",
        "lru",
        "touched",
        "block_slot",
        "slot_blocks",
        "memimg",
        "references",
        "stores",
        "instructions",
        "last_cycle",
        "integral",
        "dirty_count",
        "interval_sum",
        "interval_count",
        "interval_hist",
        "r1_acc",
        "r2_acc",
    )

    def __init__(self, engine: BatchReplayEngine, capture):
        num_sets, ways = engine.num_sets, engine.ways
        self.capture = capture
        self.counters = _Counters()
        # Per-[set][way] line state, plus per-set MRU-to-LRU way order.
        self.line_tag = [[-1] * ways for _ in range(num_sets)]
        self.line_data = [[None] * ways for _ in range(num_sets)]
        self.line_dirty = [[None] * ways for _ in range(num_sets)]
        self.line_last = [[None] * ways for _ in range(num_sets)]
        self.line_slot = [[-1] * ways for _ in range(num_sets)]
        self.line_ndirty = [[0] * ways for _ in range(num_sets)]
        self.lru = [list(range(ways)) for _ in range(num_sets)]
        self.touched = set()
        # Dense memory image, grown as new blocks appear.
        self.block_slot = {}
        self.slot_blocks = []
        self.memimg = []
        # Reduction carries.
        self.references = 0
        self.stores = 0
        self.instructions = 0
        self.last_cycle = 0
        self.integral = 0
        self.dirty_count = 0
        self.interval_sum = 0
        self.interval_count = 0
        self.interval_hist = {}
        self.r1_acc = [0] * engine.num_classes
        self.r2_acc = [0] * engine.num_classes

    def checkpoint(self) -> dict:
        """Copy of the reduction accumulators at the current position.

        Two checkpoints bracket a window of the replay: subtracting
        them yields that window's counters, dirty-occupancy integral and
        interval sums — exactly what a scalar ``reset_stats`` at the
        window boundary would have measured, because the integral
        restarts from the live dirty count and every per-unit
        ``last_dirty_access`` survives the boundary in both models.
        """
        c = self.counters
        return {
            "counters": {name: getattr(c, name) for name in _Counters.__slots__},
            "references": self.references,
            "stores": self.stores,
            "instructions": self.instructions,
            "last_cycle": self.last_cycle,
            "integral": self.integral,
            "dirty_count": self.dirty_count,
            "interval_sum": self.interval_sum,
            "interval_count": self.interval_count,
            "interval_hist": dict(self.interval_hist),
        }


# ----------------------------------------------------------------------
# Equivalence cross-check against the scalar object model
# ----------------------------------------------------------------------
def snapshot_scalar_cache(cache) -> Dict[Tuple[int, int], LineState]:
    """The scalar :class:`Cache`'s lines in :class:`LineState` form."""
    lines: Dict[Tuple[int, int], LineState] = {}
    for s in range(cache.num_sets):
        for w in range(cache.ways):
            ln = cache.line(s, w)
            if not ln.valid:
                continue
            lines[(s, w)] = LineState(
                tag=ln.tag,
                data=bytes(ln.data),
                dirty=tuple(ln.dirty),
                check=tuple(ln.check),
            )
    return lines


def cross_check_scalar(result: BatchReplayResult, cache, memory) -> List[str]:
    """Compare a batch result against a scalar replay of the same trace.

    Returns a list of human-readable mismatch descriptions (empty when
    the two engines agree on cache contents, dirty bits, check words,
    statistics, memory image and register state).
    """
    problems: List[str] = []
    scalar_lines = snapshot_scalar_cache(cache)
    for key in sorted(set(scalar_lines) | set(result.lines)):
        mine = result.lines.get(key)
        theirs = scalar_lines.get(key)
        if mine != theirs:
            problems.append(f"line {key}: batch={mine!r} scalar={theirs!r}")
    batch_stats = result.stats.snapshot()
    scalar_stats = cache.stats.snapshot()
    for name in sorted(set(batch_stats) | set(scalar_stats)):
        if batch_stats.get(name) != scalar_stats.get(name):
            problems.append(
                f"stats[{name}]: batch={batch_stats.get(name)!r} "
                f"scalar={scalar_stats.get(name)!r}"
            )
    if result.stats.dirty_interval_histogram != cache.stats.dirty_interval_histogram:
        problems.append(
            f"interval histogram: batch={result.stats.dirty_interval_histogram!r} "
            f"scalar={cache.stats.dirty_interval_histogram!r}"
        )
    protection = cache.protection
    scalar_registers = getattr(protection, "registers", None)
    if scalar_registers is not None:
        for i, (mine, theirs) in enumerate(
            zip(result.registers.pairs, scalar_registers.pairs)
        ):
            for field in ("r1", "r2", "r1_parity", "r2_parity"):
                if getattr(mine, field) != getattr(theirs, field):
                    problems.append(
                        f"pair {i} {field}: batch={getattr(mine, field):#x} "
                        f"scalar={getattr(theirs, field):#x}"
                    )
            expected = protection.dirty_xor_expected(i)
            if mine.dirty_xor != expected:
                problems.append(
                    f"pair {i} R1^R2 {mine.dirty_xor:#x} != XOR of rotated "
                    f"dirty words {expected:#x}"
                )
    for block_addr, data in sorted(result.memory.items()):
        theirs = memory.peek(block_addr, len(data))
        if data != theirs:
            problems.append(
                f"memory block {block_addr:#x}: batch={data.hex()} "
                f"scalar={theirs.hex()}"
            )
    if result.memory_reads != memory.reads:
        problems.append(
            f"memory reads: batch={result.memory_reads} scalar={memory.reads}"
        )
    if result.memory_writes != memory.writes:
        problems.append(
            f"memory writes: batch={result.memory_writes} scalar={memory.writes}"
        )
    return problems
