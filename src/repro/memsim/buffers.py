"""Victim and store buffers.

These are *timing* structures: the functional cache completes write-backs
and stores synchronously, while the timing model (``repro.timing``) uses
these buffers to decide when the read/write ports are busy.

* The victim buffer holds evicted dirty blocks awaiting write-back; CPPC
  XORs their dirty words into R2 "in the background" from here (paper
  Section 3.1), so write-backs never stall the pipeline unless the buffer
  fills.
* The store buffer holds retired stores awaiting a write-port slot; in a
  CPPC, a store to a dirty word must additionally *steal* an idle
  read-port cycle for its read-before-write (paper Section 3.1).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque

from ..errors import ConfigurationError


@dataclasses.dataclass
class PendingStore:
    """A retired store waiting to be written to the data array."""

    addr: int
    size: int
    needs_read_port: bool
    enqueued_cycle: int


@dataclasses.dataclass
class PendingVictim:
    """An evicted dirty block waiting to drain to the next level."""

    block_addr: int
    dirty_units: int
    enqueued_cycle: int


class BoundedQueue:
    """Fixed-capacity FIFO shared by the two buffer types."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be >= 1")
        self.capacity = capacity
        self._q: Deque = collections.deque()
        self.peak_occupancy = 0
        self.total_enqueued = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        """True when no more entries fit."""
        return len(self._q) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when nothing is pending."""
        return not self._q

    def push(self, item) -> bool:
        """Enqueue; returns False (and counts a stall) when full."""
        if self.full:
            self.full_stalls += 1
            return False
        self._q.append(item)
        self.total_enqueued += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._q))
        return True

    def peek(self):
        """Oldest entry, or None."""
        return self._q[0] if self._q else None

    def pop(self):
        """Dequeue the oldest entry."""
        return self._q.popleft()


class StoreBuffer(BoundedQueue):
    """Store queue between retirement and the data array."""

    def __init__(self, capacity: int = 16):
        super().__init__(capacity)

    def push_store(self, addr: int, size: int, needs_read_port: bool, cycle: int) -> bool:
        """Enqueue a retired store; returns False if the buffer is full."""
        return self.push(PendingStore(addr, size, needs_read_port, cycle))


class VictimBuffer(BoundedQueue):
    """Write-back buffer between a cache and its next level."""

    def __init__(self, capacity: int = 8):
        super().__init__(capacity)

    def push_victim(self, block_addr: int, dirty_units: int, cycle: int) -> bool:
        """Enqueue an evicted dirty block; returns False if full."""
        return self.push(PendingVictim(block_addr, dirty_units, cycle))
