"""Set-associative write-back cache with real data storage and protection.

The cache stores actual bytes, per-unit dirty bits and per-unit check
words, so protection schemes (parity / SECDED / 2-D parity / CPPC) run for
real: fault injection flips stored bits, and a later access detects and —
scheme permitting — repairs them.

A *unit* is the protection granularity: a 64-bit word for an L1 cache, an
L1-block-sized chunk for an L2 cache (paper Section 3.5).  Dirty bits are
kept per unit, as the paper requires ("one dirty bit per word in the cache
tag array").
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError, UncorrectableError
from .address import AddressMapper
from .protection import (
    CacheProtection,
    FaultResolution,
    NoProtection,
    Resolution,
)
from .replacement import ReplacementPolicy, make_policy
from .stats import CacheStats
from .types import AccessResult, UnitLocation


class CacheLine:
    """One cache line: tag, data bytes, per-unit dirty bits and check words."""

    __slots__ = (
        "tag", "valid", "data", "dirty", "check", "last_dirty_access",
        "tag_check",
    )

    def __init__(self, block_bytes: int, units: int):
        self.tag = 0
        self.tag_check = 0
        self.valid = False
        self.data = bytearray(block_bytes)
        self.dirty: List[bool] = [False] * units
        self.check: List[int] = [0] * units
        self.last_dirty_access: List[Optional[float]] = [None] * units

    def any_dirty(self) -> bool:
        """True when at least one unit of the line is dirty."""
        return any(self.dirty)


class Cache:
    """A single cache level.

    Args:
        name: label used in reports ("L1D", "L2", ...).
        size_bytes: total data capacity.
        ways: associativity.
        block_bytes: line size.
        unit_bytes: protection/dirty-bit granularity.
        protection: scheme instance (defaults to :class:`NoProtection`).
        next_level: object with ``read_block``/``write_block`` (another
            Cache or a :class:`~repro.memsim.mainmem.MainMemory`).
        policy: replacement policy name ("lru", "fifo", "random").
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        block_bytes: int,
        *,
        unit_bytes: int = 8,
        protection: Optional[CacheProtection] = None,
        next_level=None,
        policy: str = "lru",
        policy_seed: int = 0,
        write_through: bool = False,
        allocate_on_write: bool = True,
        tag_protection=None,
    ):
        if size_bytes % (ways * block_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by ways*block "
                f"({ways}*{block_bytes})"
            )
        if write_through and next_level is None:
            raise ConfigurationError(
                f"{name}: a write-through cache needs a next level"
            )
        self.write_through = write_through
        self.allocate_on_write = allocate_on_write
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.unit_bytes = unit_bytes
        self.num_sets = size_bytes // (ways * block_bytes)
        self.mapper = AddressMapper(
            block_bytes=block_bytes, num_sets=self.num_sets, unit_bytes=unit_bytes
        )
        self.units_per_block = self.mapper.units_per_block
        self.next_level = next_level
        self.stats = CacheStats()
        self.stats.configure(self.num_sets * ways * self.units_per_block)
        self.policy: ReplacementPolicy = make_policy(
            policy, self.num_sets, ways, seed=policy_seed
        )
        # Line rows are materialized on first touch: a trace only visits
        # a fraction of a large cache's sets, so eager allocation of
        # num_sets * ways CacheLine objects would dominate construction
        # (and snapshot-fork) cost for short-lived hierarchies.
        self._lines: List[Optional[List[CacheLine]]] = [None] * self.num_sets
        self.protection = protection or NoProtection()
        self.protection.attach(self)
        self.tag_protection = tag_protection
        if tag_protection is not None:
            tag_protection.attach(self)
        self._access_counter = 0.0
        # Trace sink + cached enabled flag: hot paths pay one branch.
        self._obs = None
        self._obs_on = False

    def set_observer(self, sink) -> None:
        """Attach a :class:`repro.obs.TraceSink` to this level (None
        detaches).  Propagates to the protection scheme."""
        self._obs = sink
        self._obs_on = bool(sink is not None and sink.enabled)
        self.protection.set_observer(sink)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """Capacity in protection units."""
        return self.num_sets * self.ways * self.units_per_block

    @property
    def unit_bits(self) -> int:
        """Width of one protection unit in bits."""
        return self.unit_bytes * 8

    def _row(self, set_index: int) -> List[CacheLine]:
        """The (lazily materialized) lines of one set."""
        row = self._lines[set_index]
        if row is None:
            row = self._lines[set_index] = [
                CacheLine(self.block_bytes, self.units_per_block)
                for _ in range(self.ways)
            ]
        return row

    def line(self, set_index: int, way: int) -> CacheLine:
        """Direct access to one line (fault injection and tests)."""
        return self._row(set_index)[way]

    def locate(self, addr: int) -> Optional[UnitLocation]:
        """Location of the unit holding ``addr``, or None if not resident."""
        set_index = self.mapper.set_index(addr)
        row = self._lines[set_index]
        if row is None:
            return None
        tag = self.mapper.tag(addr)
        for way in range(self.ways):
            ln = row[way]
            if ln.valid and ln.tag == tag:
                return UnitLocation(set_index, way, self.mapper.unit_index(addr))
        return None

    def address_of(self, loc: UnitLocation) -> int:
        """Byte address of the first byte of the unit at ``loc``."""
        ln = self._row(loc.set_index)[loc.way]
        base = self.mapper.rebuild_address(ln.tag, loc.set_index)
        return base + loc.unit_index * self.unit_bytes

    # ------------------------------------------------------------------
    # Unit-level raw access (fault injection, schemes, tests)
    # ------------------------------------------------------------------
    def _unit_value(self, ln: CacheLine, unit_index: int) -> int:
        off = unit_index * self.unit_bytes
        return int.from_bytes(ln.data[off : off + self.unit_bytes], "big")

    def _set_unit_value(self, ln: CacheLine, unit_index: int, value: int) -> None:
        off = unit_index * self.unit_bytes
        ln.data[off : off + self.unit_bytes] = value.to_bytes(self.unit_bytes, "big")

    def peek_unit(self, loc: UnitLocation) -> Tuple[int, int, bool]:
        """(value, check, dirty) of the unit at ``loc`` without an access."""
        ln = self._row(loc.set_index)[loc.way]
        if not ln.valid:
            raise SimulationError(f"{self.name}: no valid line at {loc}")
        return (
            self._unit_value(ln, loc.unit_index),
            ln.check[loc.unit_index],
            ln.dirty[loc.unit_index],
        )

    def corrupt_data(self, loc: UnitLocation, xor_mask: int) -> None:
        """Flip data bits of a resident unit without touching check bits."""
        ln = self._row(loc.set_index)[loc.way]
        if not ln.valid:
            raise SimulationError(f"{self.name}: cannot corrupt invalid line {loc}")
        self._set_unit_value(ln, loc.unit_index, self._unit_value(ln, loc.unit_index) ^ xor_mask)

    def corrupt_check(self, loc: UnitLocation, xor_mask: int) -> None:
        """Flip stored check bits of a resident unit."""
        ln = self._row(loc.set_index)[loc.way]
        if not ln.valid:
            raise SimulationError(f"{self.name}: cannot corrupt invalid line {loc}")
        ln.check[loc.unit_index] ^= xor_mask

    def reset_stats(self) -> None:
        """Zero the statistics while keeping cache contents (post-warmup).

        Dirty-occupancy integration restarts from the current dirty-unit
        count and clock, so time-averaged metrics reflect only the
        measurement window.  The stats clock can legitimately sit ahead
        of the access counter — drivers close an integration window with
        ``stats.advance_to(end_cycle)`` — so the restart point is the
        later of the two; rewinding to the access counter would silently
        re-integrate (or drop) part of the warmup window and skew
        ``dirty_fraction``/``tavg_cycles``.
        """
        last = max(self._access_counter, self.stats._last_event_cycle)
        self._access_counter = last
        fresh = CacheStats()
        fresh.configure(self.total_units)
        fresh._last_event_cycle = last
        fresh._current_dirty_units = self.dirty_unit_count()
        self.stats = fresh

    def corrupt_tag(self, set_index: int, way: int, xor_mask: int) -> None:
        """Flip bits of a stored tag (tag-array fault injection)."""
        ln = self._row(set_index)[way]
        if not ln.valid:
            raise SimulationError(
                f"{self.name}: cannot corrupt the tag of an invalid line"
            )
        ln.tag ^= xor_mask

    def repair_unit(self, loc: UnitLocation, value: int) -> None:
        """Overwrite a unit with its recovered value and fresh check bits.

        Used by protection schemes that repair units *other than* the one
        whose access triggered recovery (e.g. CPPC spatial multi-bit
        correction fixes several words in one recovery pass).
        """
        ln = self._row(loc.set_index)[loc.way]
        if not ln.valid:
            raise SimulationError(f"{self.name}: cannot repair invalid line {loc}")
        self._set_unit_value(ln, loc.unit_index, value)
        ln.check[loc.unit_index] = self.protection.encode(value)
        self.stats.corrected_faults += 1

    def iter_units(self) -> Iterator[Tuple[UnitLocation, int, bool]]:
        """Yield ``(location, value, dirty)`` for every valid unit."""
        for set_index, row in enumerate(self._lines):
            if row is None:
                continue
            for way in range(self.ways):
                ln = row[way]
                if not ln.valid:
                    continue
                for u in range(self.units_per_block):
                    yield (
                        UnitLocation(set_index, way, u),
                        self._unit_value(ln, u),
                        ln.dirty[u],
                    )

    def iter_dirty_units(self) -> Iterator[Tuple[UnitLocation, int]]:
        """Yield ``(location, value)`` for every dirty unit."""
        for loc, value, dirty in self.iter_units():
            if dirty:
                yield loc, value

    def resident_locations(self) -> List[UnitLocation]:
        """Locations of all valid units (fault-site sampling)."""
        return [loc for loc, _v, _d in self.iter_units()]

    def dirty_unit_count(self) -> int:
        """Number of currently dirty units."""
        return sum(1 for _ in self.iter_dirty_units())

    # ------------------------------------------------------------------
    # Verification plumbing
    # ------------------------------------------------------------------
    def _verify_unit(self, ln: CacheLine, loc: UnitLocation) -> bool:
        """Check one unit; repair or refetch on detection.

        Returns True when a fault was detected (and handled).  Raises
        :class:`UncorrectableError` on a DUE.
        """
        value = self._unit_value(ln, loc.unit_index)
        check = ln.check[loc.unit_index]
        inspection = self.protection.inspect(value, check)
        if not inspection.detected:
            return False
        self.stats.detected_faults += 1
        dirty = ln.dirty[loc.unit_index]
        if self._obs_on:
            self._obs.emit(
                "cache",
                "fault-detected",
                {"level": self.name, "loc": list(loc), "dirty": dirty},
            )
        resolution = self.protection.handle_fault(loc, value, check, inspection, dirty)
        self._apply_resolution(ln, loc, resolution)
        return True

    def _apply_resolution(
        self, ln: CacheLine, loc: UnitLocation, resolution: FaultResolution
    ) -> None:
        if resolution.kind is Resolution.CORRECTED:
            if resolution.value is None:
                raise SimulationError("corrected resolution without a value")
            self._set_unit_value(ln, loc.unit_index, resolution.value)
            ln.check[loc.unit_index] = self.protection.encode(resolution.value)
            self.stats.corrected_faults += 1
            if self._obs_on:
                self._obs.emit(
                    "cache",
                    "corrected",
                    {"level": self.name, "loc": list(loc)},
                )
            return
        if resolution.kind is Resolution.REFETCH:
            if ln.dirty[loc.unit_index]:
                raise SimulationError(
                    f"{self.name}: refetch resolution for dirty unit {loc}"
                )
            if self.next_level is None:
                raise UncorrectableError(
                    f"{self.name}: clean fault at {loc} but no next level to refetch"
                )
            base = self.mapper.rebuild_address(ln.tag, loc.set_index)
            block = self.next_level.read_block(base, cycle=self._access_counter)
            off = loc.unit_index * self.unit_bytes
            fresh = int.from_bytes(block[off : off + self.unit_bytes], "big")
            self._set_unit_value(ln, loc.unit_index, fresh)
            ln.check[loc.unit_index] = self.protection.encode(fresh)
            self.stats.corrected_faults += 1
            self.stats.refetch_corrections += 1
            if self._obs_on:
                self._obs.emit(
                    "cache",
                    "refetch",
                    {"level": self.name, "loc": list(loc)},
                )
            return
        raise SimulationError(f"unknown resolution {resolution.kind}")

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------
    def _find(self, set_index: int, tag: int) -> Optional[int]:
        row = self._lines[set_index]
        if row is None:
            return None
        for way in range(self.ways):
            ln = row[way]
            if not ln.valid:
                continue
            if self.tag_protection is not None:
                recovered = self.tag_protection.verify(
                    set_index, way, ln.tag, ln.tag_check
                )
                if recovered is not None:
                    ln.tag = recovered
                    self.stats.corrected_faults += 1
                    self.stats.detected_faults += 1
            if ln.tag == tag:
                return way
        return None

    def _pick_victim(self, set_index: int) -> int:
        row = self._row(set_index)
        for way in range(self.ways):
            if not row[way].valid:
                return way
        return self.policy.victim(set_index)

    def _evict(self, set_index: int, way: int) -> bool:
        """Remove the line at (set, way).  Returns True on a dirty writeback."""
        ln = self._row(set_index)[way]
        if not ln.valid:
            return False
        wrote_back = False
        if ln.any_dirty():
            # The whole block is read for write-back; every unit is
            # therefore checked on the way out.
            for u in range(self.units_per_block):
                self._verify_unit(ln, UnitLocation(set_index, way, u))
            if self.next_level is None:
                raise SimulationError(
                    f"{self.name}: dirty eviction with no next level"
                )
            base = self.mapper.rebuild_address(ln.tag, set_index)
            self.next_level.write_block(
                base, bytes(ln.data), cycle=self._access_counter
            )
            self.stats.writebacks += 1
            self.stats.evictions_dirty += 1
            wrote_back = True
        else:
            self.stats.evictions_clean += 1
        values = [self._unit_value(ln, u) for u in range(self.units_per_block)]
        self.protection.on_evict(set_index, way, values, list(ln.dirty))
        dirty_count = sum(ln.dirty)
        if dirty_count:
            self.stats.dirty_units_changed(-dirty_count)
        if self._obs_on:
            self._obs.emit(
                "cache",
                "evict",
                {
                    "level": self.name,
                    "set": set_index,
                    "way": way,
                    "writeback": wrote_back,
                    "dirty_units": dirty_count,
                },
            )
        if self.tag_protection is not None:
            self.tag_protection.on_remove(ln.tag)
        ln.valid = False
        ln.dirty = [False] * self.units_per_block
        ln.last_dirty_access = [None] * self.units_per_block
        self.policy.invalidate(set_index, way)
        return wrote_back

    def _fill(self, set_index: int, tag: int, block: bytes) -> int:
        way = self._pick_victim(set_index)
        self._evict(set_index, way)
        ln = self._row(set_index)[way]
        ln.valid = True
        ln.tag = tag
        if self.tag_protection is not None:
            ln.tag_check = self.tag_protection.encode(tag)
            self.tag_protection.on_insert(tag)
        ln.data[:] = block
        values = []
        for u in range(self.units_per_block):
            v = self._unit_value(ln, u)
            ln.check[u] = self.protection.encode(v)
            values.append(v)
        self.protection.on_fill(set_index, way, values)
        self.stats.fills += 1
        self.policy.fill(set_index, way)
        return way

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def _advance(self, cycle: Optional[float]) -> float:
        if cycle is None:
            self._access_counter += 1.0
            cycle = self._access_counter
        else:
            self._access_counter = max(self._access_counter, cycle)
            cycle = self._access_counter
        self.stats.advance_to(cycle)
        return cycle

    def _touch_dirty_interval(
        self, ln: CacheLine, unit_index: int, cycle: float
    ) -> None:
        last = ln.last_dirty_access[unit_index]
        if last is not None:
            self.stats.record_dirty_interval(cycle - last)
        ln.last_dirty_access[unit_index] = cycle

    def load(self, addr: int, size: int, cycle: Optional[float] = None) -> AccessResult:
        """Read ``size`` bytes at ``addr`` (naturally aligned, one line)."""
        now = self._advance(cycle)
        self.mapper.check_access(addr, size)
        set_index = self.mapper.set_index(addr)
        tag = self.mapper.tag(addr)
        way = self._find(set_index, tag)
        hit = way is not None
        wrote_back = False
        if self._obs_on:
            self._obs.emit(
                "cache",
                "load",
                {"level": self.name, "addr": addr, "hit": hit},
            )
        if hit:
            self.stats.read_hits += 1
        else:
            self.stats.read_misses += 1
            if self.next_level is None:
                raise SimulationError(f"{self.name}: miss with no next level")
            block = self.next_level.read_block(
                self.mapper.block_address(addr), cycle=now
            )
            writebacks_before = self.stats.writebacks
            way = self._fill(set_index, tag, block)
            wrote_back = self.stats.writebacks > writebacks_before
        ln = self._row(set_index)[way]
        detected = False
        for u in self.mapper.units_touched(addr, size):
            loc = UnitLocation(set_index, way, u)
            if self._verify_unit(ln, loc):
                detected = True
            if ln.dirty[u]:
                self._touch_dirty_interval(ln, u, now)
        self.policy.touch(set_index, way)
        off = self.mapper.block_offset(addr)
        return AccessResult(
            hit=hit,
            data=bytes(ln.data[off : off + size]),
            writeback=wrote_back,
            detected_fault=detected,
        )

    def store(
        self, addr: int, data: bytes, cycle: Optional[float] = None
    ) -> AccessResult:
        """Write ``data`` at ``addr`` (write-allocate, write-back)."""
        size = len(data)
        now = self._advance(cycle)
        self.mapper.check_access(addr, size)
        set_index = self.mapper.set_index(addr)
        tag = self.mapper.tag(addr)
        way = self._find(set_index, tag)
        hit = way is not None
        wrote_back = False
        if self._obs_on:
            self._obs.emit(
                "cache",
                "store",
                {"level": self.name, "addr": addr, "hit": hit},
            )
        if hit:
            self.stats.write_hits += 1
        else:
            self.stats.write_misses += 1
            if self.next_level is None:
                raise SimulationError(f"{self.name}: miss with no next level")
            if not self.allocate_on_write:
                # Write-no-allocate: merge the bytes straight into the
                # next level without disturbing this cache.
                base = self.mapper.block_address(addr)
                block = bytearray(self.next_level.read_block(base, cycle=now))
                off = self.mapper.block_offset(addr)
                block[off : off + size] = data
                self.next_level.write_block(base, bytes(block), cycle=now)
                return AccessResult(hit=False)
            block = self.next_level.read_block(
                self.mapper.block_address(addr), cycle=now
            )
            writebacks_before = self.stats.writebacks
            way = self._fill(set_index, tag, block)
            wrote_back = self.stats.writebacks > writebacks_before
        ln = self._row(set_index)[way]
        detected = False
        off = self.mapper.block_offset(addr)
        for u in self.mapper.units_touched(addr, size):
            loc = UnitLocation(set_index, way, u)
            was_dirty = ln.dirty[u]
            if was_dirty:
                self.stats.stores_to_dirty_units += 1
            unit_off = u * self.unit_bytes
            lo = max(off, unit_off)
            hi = min(off + size, unit_off + self.unit_bytes)
            full_overwrite = lo == unit_off and hi == unit_off + self.unit_bytes
            if self.protection.verify_on_store(was_dirty, not full_overwrite):
                # The old value is read (read-before-write); its parity is
                # checked so a latent fault cannot silently pollute the
                # scheme's correction state.
                if self._verify_unit(ln, loc):
                    detected = True
            old = self._unit_value(ln, u)
            new_bytes = bytearray(old.to_bytes(self.unit_bytes, "big"))
            new_bytes[lo - unit_off : hi - unit_off] = data[lo - off : hi - off]
            new = int.from_bytes(new_bytes, "big")
            self.protection.on_unit_write(loc, old, new, was_dirty)
            self._set_unit_value(ln, u, new)
            if full_overwrite:
                ln.check[u] = self.protection.encode(new)
            else:
                # A partial store updates the check bits by the delta of
                # the written bytes (the codes are linear), exactly like
                # hardware's parity read-modify-write.  A latent fault in
                # the unwritten bytes therefore stays detectable instead
                # of being silently re-encoded as valid.
                ln.check[u] ^= self.protection.encode(old ^ new)
            if not was_dirty:
                ln.dirty[u] = True
                self.stats.dirty_units_changed(+1)
            self._touch_dirty_interval(ln, u, now)
        self.policy.touch(set_index, way)
        if self.write_through:
            self._write_through_line(set_index, way, now)
        return AccessResult(hit=hit, writeback=wrote_back, detected_fault=detected)

    def _write_through_line(self, set_index: int, way: int, now: float) -> None:
        """Propagate a just-written line to the next level and clean it.

        Write-through keeps no dirty data (the reason parity alone is
        adequate for write-through L1 caches, paper Section 1).
        """
        ln = self._row(set_index)[way]
        base = self.mapper.rebuild_address(ln.tag, set_index)
        self.next_level.write_block(base, bytes(ln.data), cycle=now)
        self.stats.write_throughs += 1
        if self._obs_on:
            self._obs.emit(
                "cache",
                "writeback",
                {"level": self.name, "set": set_index, "way": way,
                 "through": True},
            )
        dirty_count = sum(ln.dirty)
        if dirty_count:
            values = [self._unit_value(ln, u) for u in range(self.units_per_block)]
            self.protection.on_cleaned(set_index, way, values, list(ln.dirty))
            self.stats.dirty_units_changed(-dirty_count)
            ln.dirty = [False] * self.units_per_block
            ln.last_dirty_access = [None] * self.units_per_block

    # ------------------------------------------------------------------
    # Next-level interface (used by an upper cache)
    # ------------------------------------------------------------------
    def read_block(self, block_addr: int, cycle: Optional[float] = None) -> bytes:
        """Serve a block read from the level above."""
        return self.load(block_addr, self.block_bytes, cycle=cycle).data

    def write_block(
        self, block_addr: int, data: bytes, cycle: Optional[float] = None
    ) -> None:
        """Absorb a write-back from the level above."""
        self.store(block_addr, data, cycle=cycle)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clean_line(self, set_index: int, way: int) -> bool:
        """Write a dirty line back but keep it resident and clean.

        The mechanism behind early write-back schemes ([2, 15] in the
        paper) and coherence downgrades.  Returns True when data moved.
        """
        ln = self._row(set_index)[way]
        if not ln.valid or not ln.any_dirty():
            return False
        # The line is read for the write-back, so every unit is checked.
        for u in range(self.units_per_block):
            self._verify_unit(ln, UnitLocation(set_index, way, u))
        if self.next_level is None:
            raise SimulationError(f"{self.name}: cannot clean with no next level")
        base = self.mapper.rebuild_address(ln.tag, set_index)
        self.next_level.write_block(base, bytes(ln.data), cycle=self._access_counter)
        self.stats.writebacks += 1
        values = [self._unit_value(ln, u) for u in range(self.units_per_block)]
        self.protection.on_cleaned(set_index, way, values, list(ln.dirty))
        self.stats.dirty_units_changed(-sum(ln.dirty))
        ln.dirty = [False] * self.units_per_block
        ln.last_dirty_access = [None] * self.units_per_block
        return True

    def invalidate_address(self, addr: int) -> bool:
        """Remove the line holding ``addr`` (coherence invalidation).

        A dirty line is written back first.  Returns True when a line was
        actually removed.
        """
        set_index = self.mapper.set_index(addr)
        way = self._find(set_index, self.mapper.tag(addr))
        if way is None:
            return False
        self._evict(set_index, way)
        return True

    def downgrade_address(self, addr: int) -> bool:
        """Clean (but keep) the line holding ``addr`` — a shared-read
        coherence downgrade.  Returns True when dirty data was flushed."""
        set_index = self.mapper.set_index(addr)
        way = self._find(set_index, self.mapper.tag(addr))
        if way is None:
            return False
        return self.clean_line(set_index, way)

    def flush(self) -> int:
        """Write back and invalidate everything.  Returns write-back count."""
        count = 0
        for set_index, row in enumerate(self._lines):
            if row is None:
                continue
            for way in range(self.ways):
                if self._evict(set_index, way):
                    count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Cache {self.name} {self.size_bytes}B {self.ways}-way "
            f"{self.block_bytes}B-lines {self.protection.name}>"
        )
