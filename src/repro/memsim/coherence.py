"""Multi-core write-invalidate coherence over private L1s (paper Sec 7).

The paper's future work asks how CPPC behaves in multiprocessors: under a
write-invalidate protocol, dirty blocks are often *invalidated* out of a
remote L1 before their owner ever stores to them again, which removes
dirty words (into R2) and can reduce the number of read-before-write
operations.  This module builds that substrate: ``num_cores`` private L1
caches over one shared L2, kept coherent by a snooping bus with an
MSI-style write-invalidate policy at block granularity:

* a **store** first invalidates every remote copy (remote dirty data is
  written back to the shared L2 first, which also moves it into the remote
  CPPC's R2);
* a **load** downgrades a remote *dirty* copy to clean (write-back, copy
  retained shared).

Every CPPC register invariant holds per-cache throughout, because
invalidations and downgrades route through the cache's eviction/clean
paths and their protection hooks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..errors import ConfigurationError
from ..util import KB
from .cache import Cache
from .hierarchy import CacheGeometry, HierarchyConfig, PAPER_CONFIG
from .mainmem import MainMemory
from .protection import CacheProtection, NoProtection
from .types import AccessResult

#: Factory: (core index, level name, unit bits) -> protection scheme.
CoreProtectionFactory = Callable[[int, str, int], CacheProtection]


def _no_protection(_core: int, _level: str, _unit_bits: int) -> CacheProtection:
    return NoProtection()


@dataclasses.dataclass
class BusStats:
    """Coherence traffic counters."""

    invalidations: int = 0
    dirty_invalidations: int = 0
    downgrades: int = 0
    bus_reads: int = 0
    bus_writes: int = 0


class CoherentSystem:
    """``num_cores`` private L1 data caches over one shared L2."""

    def __init__(
        self,
        num_cores: int = 2,
        config: HierarchyConfig = PAPER_CONFIG,
        *,
        protection_factory: CoreProtectionFactory = _no_protection,
        policy: str = "lru",
    ):
        if num_cores < 1:
            raise ConfigurationError("need at least one core")
        self.config = config
        self.memory = MainMemory(block_bytes=config.l2.block_bytes)
        self.l2 = Cache(
            "L2",
            config.l2.size_bytes,
            config.l2.ways,
            config.l2.block_bytes,
            unit_bytes=config.l2.unit_bytes,
            protection=protection_factory(-1, "L2", config.l2.unit_bytes * 8),
            next_level=self.memory,
            policy=policy,
        )
        self.l1s: List[Cache] = [
            Cache(
                f"L1D.{core}",
                config.l1d.size_bytes,
                config.l1d.ways,
                config.l1d.block_bytes,
                unit_bytes=config.l1d.unit_bytes,
                protection=protection_factory(
                    core, "L1D", config.l1d.unit_bytes * 8
                ),
                next_level=self.l2,
                policy=policy,
            )
            for core in range(num_cores)
        ]
        self.bus = BusStats()

    @property
    def num_cores(self) -> int:
        """Number of private L1 caches."""
        return len(self.l1s)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < len(self.l1s):
            raise ConfigurationError(f"core {core} out of range")

    # ------------------------------------------------------------------
    # Coherence actions
    # ------------------------------------------------------------------
    def _invalidate_remote(self, core: int, addr: int) -> None:
        for other, l1 in enumerate(self.l1s):
            if other == core:
                continue
            loc = l1.locate(addr)
            if loc is None:
                continue
            line = l1.line(loc.set_index, loc.way)
            was_dirty = line.any_dirty()
            if l1.invalidate_address(addr):
                self.bus.invalidations += 1
                if was_dirty:
                    self.bus.dirty_invalidations += 1

    def _downgrade_remote(self, core: int, addr: int) -> None:
        for other, l1 in enumerate(self.l1s):
            if other == core:
                continue
            if l1.downgrade_address(addr):
                self.bus.downgrades += 1

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------
    def load(
        self, core: int, addr: int, size: int = 8, cycle: Optional[float] = None
    ) -> AccessResult:
        """Load on ``core``; remote dirty copies are downgraded first."""
        self._check_core(core)
        self.bus.bus_reads += 1
        self._downgrade_remote(core, addr)
        return self.l1s[core].load(addr, size, cycle=cycle)

    def store(
        self, core: int, addr: int, data: bytes, cycle: Optional[float] = None
    ) -> AccessResult:
        """Store on ``core``; remote copies are invalidated first."""
        self._check_core(core)
        self.bus.bus_writes += 1
        self._invalidate_remote(core, addr)
        return self.l1s[core].store(addr, data, cycle=cycle)

    def flush(self) -> None:
        """Drain all cores and the shared L2 to memory."""
        for l1 in self.l1s:
            l1.flush()
        self.l2.flush()

    def total_read_before_writes(self) -> int:
        """Sum of L1 read-before-writes across cores (Section 7 metric)."""
        return sum(l1.stats.read_before_writes for l1 in self.l1s)


def small_coherent_config() -> HierarchyConfig:
    """A compact configuration for multi-core experiments and tests."""
    return HierarchyConfig(
        l1d=CacheGeometry(
            size_bytes=8 * KB, ways=2, block_bytes=32, unit_bytes=8,
            latency_cycles=2,
        ),
        l2=CacheGeometry(
            size_bytes=128 * KB, ways=4, block_bytes=32, unit_bytes=32,
            latency_cycles=8,
        ),
    )
