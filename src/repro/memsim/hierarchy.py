"""Multi-level cache hierarchy assembly.

:func:`build_hierarchy` wires L1D -> L2 -> main memory with the paper's
Table 1 parameters by default (32KB/2-way/32B L1 data cache, 1MB/4-way/32B
unified L2) and returns a :class:`MemoryHierarchy` facade used by trace
replay, fault campaigns and the experiment harness.

Protection granularities follow paper Section 3.5 / 6: the L1 unit is a
64-bit word; the L2 unit is an L1 block (32 bytes here), since that is the
granularity at which data is written from L1 to L2.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..util import KB, MB
from .cache import Cache
from .mainmem import MainMemory
from .protection import CacheProtection, NoProtection
from .types import AccessResult


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    size_bytes: int
    ways: int
    block_bytes: int
    unit_bytes: int
    latency_cycles: int

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def total_units(self) -> int:
        return self.size_bytes // self.unit_bytes

    @property
    def units_per_block(self) -> int:
        return self.block_bytes // self.unit_bytes


@dataclasses.dataclass(frozen=True)
class HierarchyConfig:
    """Paper Table 1 cache and memory hierarchy parameters.

    ``l3`` is optional: the paper's Section 7 expects an L3 CPPC to be
    even more energy-efficient than the L2 one, and a three-level
    hierarchy lets that claim be measured (`bench_l3_cppc.py`).
    """

    l1d: CacheGeometry = CacheGeometry(
        size_bytes=32 * KB, ways=2, block_bytes=32, unit_bytes=8, latency_cycles=2
    )
    l2: CacheGeometry = CacheGeometry(
        size_bytes=1 * MB, ways=4, block_bytes=32, unit_bytes=32, latency_cycles=8
    )
    l3: Optional[CacheGeometry] = None
    memory_latency_cycles: int = 200
    frequency_hz: float = 3.0e9


PAPER_CONFIG = HierarchyConfig()

#: The paper's configuration extended with a 4MB/8-way L3 whose protection
#: unit is an L2 block (the write granularity from L2 to L3).
PAPER_CONFIG_WITH_L3 = HierarchyConfig(
    l3=CacheGeometry(
        size_bytes=4 * MB, ways=8, block_bytes=32, unit_bytes=32,
        latency_cycles=24,
    )
)

#: Factory signature for per-level protection schemes.  Called with the
#: level name ("L1D" or "L2") and the unit width in bits.
ProtectionFactory = Callable[[str, int], CacheProtection]


def _no_protection(_level: str, _unit_bits: int) -> CacheProtection:
    return NoProtection()


class MemoryHierarchy:
    """L1D + unified L2 + main memory behind a load/store facade."""

    def __init__(
        self,
        config: HierarchyConfig = PAPER_CONFIG,
        *,
        protection_factory: ProtectionFactory = _no_protection,
        policy: str = "lru",
    ):
        self.config = config
        if config.l2.unit_bytes != config.l1d.block_bytes:
            raise ConfigurationError(
                "L2 protection unit must equal the L1 block size "
                "(paper Section 3.5): "
                f"{config.l2.unit_bytes}B vs {config.l1d.block_bytes}B"
            )
        self.memory = MainMemory(block_bytes=config.l2.block_bytes)
        self.l3: Optional[Cache] = None
        l2_backing = self.memory
        if config.l3 is not None:
            if config.l3.unit_bytes != config.l2.block_bytes:
                raise ConfigurationError(
                    "L3 protection unit must equal the L2 block size: "
                    f"{config.l3.unit_bytes}B vs {config.l2.block_bytes}B"
                )
            self.l3 = Cache(
                "L3",
                config.l3.size_bytes,
                config.l3.ways,
                config.l3.block_bytes,
                unit_bytes=config.l3.unit_bytes,
                protection=protection_factory("L3", config.l3.unit_bytes * 8),
                next_level=self.memory,
                policy=policy,
            )
            l2_backing = self.l3
        self.l2 = Cache(
            "L2",
            config.l2.size_bytes,
            config.l2.ways,
            config.l2.block_bytes,
            unit_bytes=config.l2.unit_bytes,
            protection=protection_factory("L2", config.l2.unit_bytes * 8),
            next_level=l2_backing,
            policy=policy,
        )
        self.l1d = Cache(
            "L1D",
            config.l1d.size_bytes,
            config.l1d.ways,
            config.l1d.block_bytes,
            unit_bytes=config.l1d.unit_bytes,
            protection=protection_factory("L1D", config.l1d.unit_bytes * 8),
            next_level=self.l2,
            policy=policy,
        )

    def set_observer(self, sink) -> None:
        """Attach a :class:`repro.obs.TraceSink` to every level."""
        for cache in self.levels():
            cache.set_observer(sink)

    def levels(self):
        """All cache levels, innermost first."""
        return [self.l1d, self.l2] + ([self.l3] if self.l3 else [])

    def load(self, addr: int, size: int = 8, cycle: Optional[float] = None) -> AccessResult:
        """Processor load (routed to L1D)."""
        return self.l1d.load(addr, size, cycle=cycle)

    def store(self, addr: int, data: bytes, cycle: Optional[float] = None) -> AccessResult:
        """Processor store (routed to L1D)."""
        return self.l1d.store(addr, data, cycle=cycle)

    def flush(self) -> None:
        """Drain all dirty data to main memory."""
        self.l1d.flush()
        self.l2.flush()
        if self.l3 is not None:
            self.l3.flush()

    def architectural_read(self, addr: int, size: int) -> bytes:
        """Bytes the hierarchy *currently* holds at ``addr`` (L1 over L2
        over memory), without performing an access or updating any state.

        After fault injection this view may be corrupted; fault campaigns
        compare it against an independent golden model to detect silent
        data corruption.
        """
        out = bytearray(size)
        for i in range(size):
            a = addr + i
            out[i] = self._resident_byte(a)
        return bytes(out)

    def _resident_byte(self, addr: int) -> int:
        levels = [self.l1d, self.l2] + ([self.l3] if self.l3 else [])
        for cache in levels:
            loc = cache.locate(addr)
            if loc is not None:
                ln = cache.line(loc.set_index, loc.way)
                return ln.data[cache.mapper.block_offset(addr)]
        return self.memory.peek(addr, 1)[0]
