"""Backing main memory for the cache hierarchy.

Sparse (only blocks ever written are stored) and block-granular.  Unwritten
memory reads as zero, which keeps golden-model comparisons trivial.
"""

from __future__ import annotations

from typing import Dict

from ..errors import AlignmentError, ConfigurationError


class MainMemory:
    """Block-granular sparse memory; the bottom of every hierarchy."""

    def __init__(self, block_bytes: int = 32):
        if block_bytes < 1 or block_bytes & (block_bytes - 1):
            raise ConfigurationError(
                f"block_bytes must be a power of two, got {block_bytes}"
            )
        self.block_bytes = block_bytes
        self._blocks: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def _check(self, block_addr: int) -> None:
        if block_addr % self.block_bytes:
            raise AlignmentError(
                f"address {block_addr:#x} is not {self.block_bytes}B aligned"
            )

    def read_block(self, block_addr: int, cycle: object = None) -> bytes:
        """Return the ``block_bytes`` at ``block_addr`` (zeros if untouched).

        ``cycle`` is accepted for interface parity with :class:`Cache` and
        ignored — memory keeps no timing state.
        """
        self._check(block_addr)
        self.reads += 1
        return self._blocks.get(block_addr, bytes(self.block_bytes))

    def write_block(self, block_addr: int, data: bytes, cycle: object = None) -> None:
        """Store a full block."""
        self._check(block_addr)
        if len(data) != self.block_bytes:
            raise AlignmentError(
                f"block write of {len(data)}B, expected {self.block_bytes}B"
            )
        self.writes += 1
        self._blocks[block_addr] = bytes(data)

    def peek(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes without counting an access (for tests)."""
        out = bytearray()
        while size:
            base = addr & ~(self.block_bytes - 1)
            offset = addr - base
            take = min(size, self.block_bytes - offset)
            block = self._blocks.get(base, bytes(self.block_bytes))
            out += block[offset : offset + take]
            addr += take
            size -= take
        return bytes(out)

    def poke(self, addr: int, data: bytes) -> None:
        """Write bytes without counting an access (for test setup)."""
        i = 0
        while i < len(data):
            base = (addr + i) & ~(self.block_bytes - 1)
            offset = (addr + i) - base
            take = min(len(data) - i, self.block_bytes - offset)
            block = bytearray(self._blocks.get(base, bytes(self.block_bytes)))
            block[offset : offset + take] = data[i : i + take]
            self._blocks[base] = bytes(block)
            i += take

    @property
    def resident_blocks(self) -> int:
        """Number of blocks ever written."""
        return len(self._blocks)
