"""Contract between the cache and its protection scheme.

The cache owns data, tags, dirty bits and one check word per protection
unit.  The scheme decides how check words are computed, reacts to data
movement (fills, stores, evictions) and resolves detected faults.  Four
schemes implement this contract:

* :class:`NoProtection` — raw cache (useful for golden runs),
* :class:`ParityProtection` — 1-D / interleaved parity, detection only
  (a fault in a dirty unit is fatal, as in the PowerQUICC example of the
  paper's introduction),
* :class:`SecdedProtection` — per-unit SECDED, corrects single-bit errors,
* :class:`TwoDParityProtection` — horizontal parity + one vertical parity
  register over the whole cache,
* :class:`repro.cppc.CppcProtection` — the paper's contribution.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..coding import (
    DetectionOutcome,
    Inspection,
    InterleavedParity,
    SecdedCode,
    VerticalParity,
    WordCode,
)
from ..errors import ConfigurationError, UncorrectableError
from .types import UnitLocation

if TYPE_CHECKING:  # pragma: no cover
    from .cache import Cache


class Resolution(enum.Enum):
    """How a detected fault was resolved."""

    #: The scheme produced the repaired unit value.
    CORRECTED = "corrected"
    #: The unit is clean; the cache should re-fetch the block.
    REFETCH = "refetch"


@dataclasses.dataclass(frozen=True)
class FaultResolution:
    """Outcome of :meth:`CacheProtection.handle_fault`."""

    kind: Resolution
    value: Optional[int] = None


class CacheProtection(abc.ABC):
    """Base class for cache protection schemes."""

    #: Human-readable scheme name (used in reports).
    name: str = "abstract"

    def __init__(self):
        self.cache: Optional["Cache"] = None
        #: Attached trace sink and its cached enabled flag.  Hot paths
        #: test ``_obs_on`` so a disabled/absent sink costs one branch.
        self._obs = None
        self._obs_on = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, cache: "Cache") -> None:
        """Bind to ``cache``; called once by the cache constructor."""
        if self.cache is not None:
            raise ConfigurationError(
                f"{self.name} protection is already attached to a cache"
            )
        self.cache = cache

    def set_observer(self, sink) -> None:
        """Attach a :class:`repro.obs.TraceSink` (None detaches)."""
        self._obs = sink
        self._obs_on = bool(sink is not None and sink.enabled)

    @property
    @abc.abstractmethod
    def check_bits_per_unit(self) -> int:
        """Redundant bits stored per protection unit."""

    # ------------------------------------------------------------------
    # Check-bit computation and verification
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode(self, value: int) -> int:
        """Check word for a unit ``value``."""

    @abc.abstractmethod
    def inspect(self, value: int, check: int) -> Inspection:
        """Check a unit value against its stored check word."""

    def handle_fault(
        self,
        loc: UnitLocation,
        value: int,
        check: int,
        inspection: Inspection,
        dirty: bool,
    ) -> FaultResolution:
        """Resolve a detected fault; raise UncorrectableError for a DUE.

        The default policy is the detection-only one: clean data is
        re-fetched, a fault in dirty data halts the machine.
        """
        if not dirty:
            return FaultResolution(kind=Resolution.REFETCH)
        raise UncorrectableError(
            f"{self.name}: fault detected in dirty unit {loc}", detail=loc
        )

    # ------------------------------------------------------------------
    # Event hooks (default: no state to maintain)
    # ------------------------------------------------------------------
    def verify_on_store(self, was_dirty: bool, partial: bool = False) -> bool:
        """Whether the old value must be read-and-checked before a store.

        Only schemes that actually read the old data on a store (2-D parity
        on every store, CPPC on stores to dirty units and on partial stores
        that turn a clean unit dirty) can observe a latent fault there;
        detection-only schemes overwrite blindly.
        """
        return False

    def on_unit_write(
        self, loc: UnitLocation, old: int, new: int, was_dirty: bool
    ) -> None:
        """A store is overwriting a unit (old value already verified)."""

    def on_fill(
        self, set_index: int, way: int, values: Sequence[int]
    ) -> None:
        """A block was just filled into (set, way) with clean ``values``."""

    def on_evict(
        self,
        set_index: int,
        way: int,
        values: Sequence[int],
        dirty_flags: Sequence[bool],
    ) -> None:
        """The valid block at (set, way) is being removed."""

    def on_cleaned(
        self,
        set_index: int,
        way: int,
        values: Sequence[int],
        dirty_flags: Sequence[bool],
    ) -> None:
        """Dirty units at (set, way) became clean in place (write-through
        propagation, early write-back, coherence downgrade); the line
        stays resident."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NoProtection(CacheProtection):
    """No check bits, no detection — the golden/raw configuration."""

    name = "none"

    @property
    def check_bits_per_unit(self) -> int:
        return 0

    def encode(self, value: int) -> int:
        return 0

    def inspect(self, value: int, check: int) -> Inspection:
        return Inspection(outcome=DetectionOutcome.CLEAN)


class CodedProtection(CacheProtection):
    """Shared plumbing for schemes built on a :class:`WordCode`."""

    def __init__(self, code: WordCode):
        super().__init__()
        self.code = code

    def attach(self, cache: "Cache") -> None:
        super().attach(cache)
        if self.code.data_bits != cache.unit_bytes * 8:
            raise ConfigurationError(
                f"{self.name}: code protects {self.code.data_bits} bits but the "
                f"cache unit is {cache.unit_bytes * 8} bits"
            )

    @property
    def check_bits_per_unit(self) -> int:
        return self.code.check_bits

    def encode(self, value: int) -> int:
        return self.code.encode(value)

    def inspect(self, value: int, check: int) -> Inspection:
        return self.code.inspect(value, check)


class ParityProtection(CodedProtection):
    """Detection-only parity (1-D or interleaved).

    Clean faults become misses and are re-fetched; dirty faults are fatal —
    the behaviour the paper ascribes to parity-protected write-back caches.
    """

    name = "parity"

    def __init__(self, code: Optional[InterleavedParity] = None, data_bits: int = 64):
        super().__init__(code or InterleavedParity(data_bits=data_bits, ways=8))


class SecdedProtection(CodedProtection):
    """Per-unit SECDED; single-bit faults are corrected in place."""

    name = "secded"

    def __init__(self, code: Optional[SecdedCode] = None, data_bits: int = 64,
                 interleaving_degree: int = 8):
        super().__init__(code or SecdedCode(data_bits=data_bits))
        #: Physical bit-interleaving degree (energy model input; with
        #: degree k, a spatial burst of <= k bits is split into single-bit
        #: errors in k different units).
        self.interleaving_degree = interleaving_degree

    def verify_on_store(self, was_dirty: bool, partial: bool = False) -> bool:
        # ECC cannot update check bits for a partial write without a
        # read-modify-write (paper Section 1); the RMW read corrects any
        # latent fault before the merge, so no stale syndrome survives.
        return partial

    def handle_fault(
        self,
        loc: UnitLocation,
        value: int,
        check: int,
        inspection: Inspection,
        dirty: bool,
    ) -> FaultResolution:
        if inspection.outcome is DetectionOutcome.CORRECTED:
            return FaultResolution(
                kind=Resolution.CORRECTED, value=inspection.corrected_data
            )
        if not dirty:
            return FaultResolution(kind=Resolution.REFETCH)
        raise UncorrectableError(
            f"secded: uncorrectable fault in dirty unit {loc}", detail=loc
        )


class TwoDParityProtection(CodedProtection):
    """Two-dimensional parity: horizontal interleaved parity per unit plus
    one vertical parity register spanning the whole cache.

    The vertical register is kept current with read-before-write updates on
    every store and whole-line updates on every fill and eviction — the
    energy costs quantified in Figures 11/12.
    """

    name = "2d-parity"

    def __init__(self, code: Optional[InterleavedParity] = None, data_bits: int = 64):
        super().__init__(code or InterleavedParity(data_bits=data_bits, ways=8))
        self._vertical = VerticalParity(row_bits=self.code.data_bits)

    def verify_on_store(self, was_dirty: bool, partial: bool = False) -> bool:
        # Every store does a read-before-write to update the vertical row.
        return True

    @property
    def vertical_register(self) -> VerticalParity:
        """The single vertical parity row protecting the array."""
        return self._vertical

    def on_unit_write(
        self, loc: UnitLocation, old: int, new: int, was_dirty: bool
    ) -> None:
        # Read-before-write on EVERY store: old data must leave the
        # vertical parity.
        self._vertical.update(old, new)
        self.cache.stats.read_before_writes += 1

    def on_fill(self, set_index: int, way: int, values: Sequence[int]) -> None:
        for v in values:
            self._vertical.insert(v)

    def on_evict(
        self,
        set_index: int,
        way: int,
        values: Sequence[int],
        dirty_flags: Sequence[bool],
    ) -> None:
        # The whole replaced line is read so it can be XORed out — the
        # per-miss read-before-write the paper charges to this scheme.
        for v in values:
            self._vertical.remove(v)
        self.cache.stats.read_before_writes += 1

    def handle_fault(
        self,
        loc: UnitLocation,
        value: int,
        check: int,
        inspection: Inspection,
        dirty: bool,
    ) -> FaultResolution:
        if not dirty:
            return FaultResolution(kind=Resolution.REFETCH)
        other_rows: List[int] = []
        for other_loc, other_value, _dirty in self.cache.iter_units():
            if other_loc != loc:
                other_rows.append(other_value)
        repaired = self._vertical.reconstruct(other_rows)
        if self.inspect(repaired, check).detected:
            raise UncorrectableError(
                f"2d-parity: reconstruction of {loc} failed its horizontal parity",
                detail=loc,
            )
        return FaultResolution(kind=Resolution.CORRECTED, value=repaired)
