"""Replacement policies for set-associative caches.

All policies share one interface: ``touch`` on every hit or fill,
``victim`` to pick a way when a set is full, ``invalidate`` when a line is
removed.  The cache guarantees it only asks for a victim among valid ways.
"""

from __future__ import annotations

import abc
from typing import List

from ..errors import ConfigurationError
from ..util import Seed, make_rng


class ReplacementPolicy(abc.ABC):
    """Per-cache replacement state across all sets."""

    def __init__(self, num_sets: int, ways: int):
        if num_sets < 1 or ways < 1:
            raise ConfigurationError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Note a reference to ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Pick the way to evict from a full set."""

    def fill(self, set_index: int, way: int) -> None:
        """Note that ``way`` was just filled (defaults to a touch)."""
        self.touch(set_index, way)

    def invalidate(self, set_index: int, way: int) -> None:
        """Note that ``way`` no longer holds a line (default: no-op)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, the policy of the paper's SimpleScalar setup."""

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        # Per set: list of ways from most- to least-recently used.
        self._order: List[List[int]] = [list(range(ways)) for _ in range(num_sets)]

    def touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    def victim(self, set_index: int) -> int:
        return self._order[set_index][-1]

    def recency_order(self, set_index: int) -> List[int]:
        """MRU-to-LRU order of a set (exposed for tests)."""
        return list(self._order[set_index])


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: eviction order follows fill order."""

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._queues: List[List[int]] = [list(range(ways)) for _ in range(num_sets)]

    def touch(self, set_index: int, way: int) -> None:
        # Hits do not reorder a FIFO.
        pass

    def fill(self, set_index: int, way: int) -> None:
        queue = self._queues[set_index]
        queue.remove(way)
        queue.append(way)

    def victim(self, set_index: int) -> int:
        return self._queues[set_index][0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (deterministic under a seed)."""

    def __init__(self, num_sets: int, ways: int, seed: Seed = 0):
        super().__init__(num_sets, ways)
        self._rng = make_rng(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(
    name: str, num_sets: int, ways: int, seed: Seed = 0
) -> ReplacementPolicy:
    """Build a policy by name: ``lru``, ``fifo`` or ``random``."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(num_sets, ways, seed=seed)
    return cls(num_sets, ways)


def available_policies() -> List[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_POLICIES)
