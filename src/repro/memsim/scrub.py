"""Early write-back scrubbing (paper related work: [2], [15]).

These schemes improve write-back-cache reliability without correction
hardware by bounding how long data stays dirty: a scrubber periodically
writes dirty lines back, so parity's "dirty faults are fatal" window
shrinks.  The cost is extra write-back traffic and energy — the trade-off
the paper contrasts CPPC against.

:class:`EarlyWritebackScrubber` walks the cache round-robin and cleans up
to ``lines_per_pass`` dirty lines every ``interval_accesses`` accesses.
Drive it from trace replay via :meth:`tick` or attach it to experiments
manually.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .cache import Cache


@dataclasses.dataclass
class ScrubberStats:
    """Work performed by one scrubber."""

    passes: int = 0
    lines_cleaned: int = 0
    lines_inspected: int = 0


class EarlyWritebackScrubber:
    """Periodically cleans dirty lines of one cache."""

    def __init__(
        self,
        cache: Cache,
        *,
        interval_accesses: int = 256,
        lines_per_pass: int = 4,
    ):
        if interval_accesses < 1 or lines_per_pass < 1:
            raise ConfigurationError(
                "scrub interval and lines per pass must be >= 1"
            )
        self.cache = cache
        self.interval_accesses = interval_accesses
        self.lines_per_pass = lines_per_pass
        self.stats = ScrubberStats()
        self._accesses_since_pass = 0
        self._cursor = 0  # round-robin position over (set, way) slots

    @property
    def _total_slots(self) -> int:
        return self.cache.num_sets * self.cache.ways

    def tick(self, accesses: int = 1) -> int:
        """Advance by ``accesses``; runs scrub passes as they come due.

        Returns the number of lines cleaned by any passes triggered.
        """
        self._accesses_since_pass += accesses
        cleaned = 0
        while self._accesses_since_pass >= self.interval_accesses:
            self._accesses_since_pass -= self.interval_accesses
            cleaned += self.scrub_pass()
        return cleaned

    def scrub_pass(self) -> int:
        """Clean up to ``lines_per_pass`` dirty lines, round-robin.

        Scans at most one full revolution of the cache per pass.
        """
        self.stats.passes += 1
        cleaned = 0
        for _ in range(self._total_slots):
            set_index = self._cursor // self.cache.ways
            way = self._cursor % self.cache.ways
            self._cursor = (self._cursor + 1) % self._total_slots
            self.stats.lines_inspected += 1
            if self.cache.clean_line(set_index, way):
                cleaned += 1
                if cleaned >= self.lines_per_pass:
                    break
        self.stats.lines_cleaned += cleaned
        return cleaned

    def drain(self) -> int:
        """Clean every dirty line right now (end-of-interval flush)."""
        cleaned = 0
        for set_index in range(self.cache.num_sets):
            for way in range(self.cache.ways):
                if self.cache.clean_line(set_index, way):
                    cleaned += 1
        self.stats.lines_cleaned += cleaned
        return cleaned
