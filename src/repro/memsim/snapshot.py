"""Structured snapshot/restore of simulator state for campaign forking.

A fault campaign replays the same fault-free warmup prefix before every
trial.  This module captures the complete post-warmup state of a
:class:`~repro.memsim.cache.Cache` (data, tags, dirty bits, check words,
replacement order, statistics, protection-scheme state) and of a whole
:class:`~repro.memsim.hierarchy.MemoryHierarchy`, so one warm image can
be restored into a fresh hierarchy per trial instead of re-simulating
the prefix.

The restored simulator is *bit-identical* to the original: replaying the
same suffix produces the same access results, statistics, register
contents and fault classifications.  Equivalence is enforced by the
round-trip property tests and the campaign cross-check.

Protection state is dispatched on the scheme's ``name``:

* ``cppc`` — the (R1, R2) register pairs with their parity bits, plus
  the ``recoveries`` / ``register_repairs`` counters.  The bounded
  diagnostic buffers (``recovery_log``, ``audit_trail``) are *not*
  carried: they never influence simulation outcomes, and campaign trials
  fork from fault-free warm state where both are empty.
* ``2d-parity`` — the vertical parity register.
* ``none`` / ``parity`` / ``secded`` — stateless.

Anything else raises :class:`~repro.errors.SnapshotError` rather than
silently dropping state.

:class:`SnapshotCache` is the LRU used to bound warm-state caches on
both the campaign side and inside worker processes.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import SnapshotError
from .cache import Cache
from .hierarchy import MemoryHierarchy
from .mainmem import MainMemory
from .replacement import FIFOPolicy, LRUPolicy, RandomPolicy
from .stats import CacheStats

#: Protection schemes whose snapshot is the empty dict.
_STATELESS_SCHEMES = ("none", "parity", "secded")


@dataclasses.dataclass
class LineSnapshot:
    """One valid cache line: position plus full per-unit state."""

    set_index: int
    way: int
    tag: int
    tag_check: int
    data: bytes
    dirty: Tuple[bool, ...]
    check: Tuple[int, ...]
    #: Per-unit cycle of the last dirty access (``Tavg`` bookkeeping).
    #: Values are carried verbatim (int or float) — converting would
    #: perturb interval arithmetic and break bit-identity.
    last_dirty_access: Tuple[Optional[float], ...]


@dataclasses.dataclass
class PolicySnapshot:
    """Replacement-policy state: only what differs from a fresh policy."""

    kind: str
    #: Per-set way orders that differ from the pristine ``range(ways)``
    #: (LRU recency / FIFO fill order).  Untouched sets are omitted.
    orders: Dict[int, List[int]] = dataclasses.field(default_factory=dict)
    #: ``random.getstate()`` of a :class:`RandomPolicy`, else ``None``.
    rng_state: Optional[tuple] = None


@dataclasses.dataclass
class CacheSnapshot:
    """Complete state of one cache level."""

    name: str
    size_bytes: int
    ways: int
    block_bytes: int
    unit_bytes: int
    scheme: str
    access_counter: float
    lines: List[LineSnapshot]
    policy: PolicySnapshot
    stats: dict
    protection: dict


@dataclasses.dataclass
class MemorySnapshot:
    """State of the sparse backing memory."""

    blocks: Dict[int, bytes]
    reads: int
    writes: int


@dataclasses.dataclass
class HierarchySnapshot:
    """One warm :class:`MemoryHierarchy`: every level plus main memory."""

    caches: List[CacheSnapshot]
    memory: MemorySnapshot


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _snapshot_policy(cache: Cache) -> PolicySnapshot:
    policy = cache.policy
    pristine = list(range(cache.ways))
    if isinstance(policy, LRUPolicy):
        return PolicySnapshot(
            kind="lru",
            orders={
                s: list(order)
                for s, order in enumerate(policy._order)
                if order != pristine
            },
        )
    if isinstance(policy, FIFOPolicy):
        return PolicySnapshot(
            kind="fifo",
            orders={
                s: list(queue)
                for s, queue in enumerate(policy._queues)
                if queue != pristine
            },
        )
    if isinstance(policy, RandomPolicy):
        return PolicySnapshot(kind="random", rng_state=policy._rng.getstate())
    raise SnapshotError(
        f"{cache.name}: cannot snapshot replacement policy "
        f"{type(policy).__name__}"
    )


def _snapshot_protection(cache: Cache) -> dict:
    scheme = cache.protection
    name = scheme.name
    if name in _STATELESS_SCHEMES:
        return {}
    if name == "cppc":
        return {
            "pairs": [
                (p.r1, p.r2, p.r1_parity, p.r2_parity)
                for p in scheme.registers.pairs
            ],
            "recoveries": scheme.recoveries,
            "register_repairs": scheme.register_repairs,
        }
    if name == "2d-parity":
        return {"vertical": scheme.vertical_register.value}
    raise SnapshotError(f"{cache.name}: cannot snapshot protection scheme {name!r}")


def snapshot_cache(cache: Cache) -> CacheSnapshot:
    """Capture the complete state of one cache level."""
    if cache.tag_protection is not None:
        raise SnapshotError(
            f"{cache.name}: tag-protected caches are not snapshot-capable"
        )
    lines: List[LineSnapshot] = []
    for set_index, row in enumerate(cache._lines):
        if row is None:
            continue
        for way, ln in enumerate(row):
            if not ln.valid:
                continue
            lines.append(
                LineSnapshot(
                    set_index=set_index,
                    way=way,
                    tag=ln.tag,
                    tag_check=ln.tag_check,
                    data=bytes(ln.data),
                    dirty=tuple(ln.dirty),
                    check=tuple(ln.check),
                    last_dirty_access=tuple(ln.last_dirty_access),
                )
            )
    return CacheSnapshot(
        name=cache.name,
        size_bytes=cache.size_bytes,
        ways=cache.ways,
        block_bytes=cache.block_bytes,
        unit_bytes=cache.unit_bytes,
        scheme=cache.protection.name,
        access_counter=cache._access_counter,
        lines=lines,
        policy=_snapshot_policy(cache),
        stats=dataclasses.asdict(cache.stats),
        protection=_snapshot_protection(cache),
    )


def snapshot_memory(memory: MainMemory) -> MemorySnapshot:
    """Capture the backing memory (blocks plus access counters)."""
    return MemorySnapshot(
        blocks=dict(memory._blocks),
        reads=memory.reads,
        writes=memory.writes,
    )


def snapshot_hierarchy(hierarchy: MemoryHierarchy) -> HierarchySnapshot:
    """Capture every cache level and main memory of a hierarchy."""
    return HierarchySnapshot(
        caches=[snapshot_cache(level) for level in hierarchy.levels()],
        memory=snapshot_memory(hierarchy.memory),
    )


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def _check_target(snap: CacheSnapshot, cache: Cache) -> None:
    for field in ("name", "size_bytes", "ways", "block_bytes", "unit_bytes"):
        want = getattr(snap, field)
        have = getattr(cache, field)
        if want != have:
            raise SnapshotError(
                f"snapshot of {snap.name!r} does not fit target cache: "
                f"{field} {want!r} != {have!r}"
            )
    if cache.protection.name != snap.scheme:
        raise SnapshotError(
            f"snapshot of {snap.name!r} was taken under scheme "
            f"{snap.scheme!r}, target runs {cache.protection.name!r}"
        )
    if cache.tag_protection is not None:
        raise SnapshotError(
            f"{cache.name}: tag-protected caches are not snapshot-capable"
        )


def _restore_policy(snap: PolicySnapshot, cache: Cache) -> None:
    policy = cache.policy
    if snap.kind == "lru":
        if not isinstance(policy, LRUPolicy):
            raise SnapshotError(
                f"{cache.name}: snapshot holds LRU state, target policy is "
                f"{type(policy).__name__}"
            )
        for s, order in snap.orders.items():
            policy._order[s] = list(order)
        return
    if snap.kind == "fifo":
        if not isinstance(policy, FIFOPolicy):
            raise SnapshotError(
                f"{cache.name}: snapshot holds FIFO state, target policy is "
                f"{type(policy).__name__}"
            )
        for s, queue in snap.orders.items():
            policy._queues[s] = list(queue)
        return
    if snap.kind == "random":
        if not isinstance(policy, RandomPolicy):
            raise SnapshotError(
                f"{cache.name}: snapshot holds random-policy state, target "
                f"policy is {type(policy).__name__}"
            )
        policy._rng.setstate(snap.rng_state)
        return
    raise SnapshotError(f"unknown policy snapshot kind {snap.kind!r}")


def _restore_protection(snap: CacheSnapshot, cache: Cache) -> None:
    scheme = cache.protection
    state = snap.protection
    if snap.scheme in _STATELESS_SCHEMES:
        return
    if snap.scheme == "cppc":
        pairs = scheme.registers.pairs
        if len(state["pairs"]) != len(pairs):
            raise SnapshotError(
                f"{cache.name}: snapshot holds {len(state['pairs'])} CPPC "
                f"register pairs, target has {len(pairs)}"
            )
        for pair, (r1, r2, r1_parity, r2_parity) in zip(pairs, state["pairs"]):
            pair.r1 = r1
            pair.r2 = r2
            pair.r1_parity = r1_parity
            pair.r2_parity = r2_parity
        scheme.recoveries = state["recoveries"]
        scheme.register_repairs = state["register_repairs"]
        return
    if snap.scheme == "2d-parity":
        scheme.vertical_register._register = state["vertical"]
        return
    raise SnapshotError(
        f"{cache.name}: cannot restore protection scheme {snap.scheme!r}"
    )


def _restore_stats(stats_dict: dict) -> CacheStats:
    fields = dict(stats_dict)
    fields["dirty_interval_histogram"] = dict(fields["dirty_interval_histogram"])
    return CacheStats(**fields)


def restore_cache(snap: CacheSnapshot, cache: Cache) -> Cache:
    """Load a snapshot into a *fresh* cache of identical configuration.

    The target must be newly constructed (pristine): restore only writes
    the state a snapshot carries, it does not erase leftovers.
    """
    _check_target(snap, cache)
    for line in snap.lines:
        ln = cache.line(line.set_index, line.way)
        ln.valid = True
        ln.tag = line.tag
        ln.tag_check = line.tag_check
        ln.data[:] = line.data
        ln.dirty = list(line.dirty)
        ln.check = list(line.check)
        ln.last_dirty_access = list(line.last_dirty_access)
    cache._access_counter = snap.access_counter
    cache.stats = _restore_stats(snap.stats)
    _restore_policy(snap.policy, cache)
    _restore_protection(snap, cache)
    return cache


def restore_memory(snap: MemorySnapshot, memory: MainMemory) -> MainMemory:
    """Load a memory snapshot into a fresh :class:`MainMemory`."""
    memory._blocks = dict(snap.blocks)
    memory.reads = snap.reads
    memory.writes = snap.writes
    return memory


def restore_hierarchy(
    snap: HierarchySnapshot, hierarchy: MemoryHierarchy
) -> MemoryHierarchy:
    """Load a hierarchy snapshot into a freshly built hierarchy.

    The target must have the same level structure and per-level
    configuration (geometry, scheme, policy) as the hierarchy the
    snapshot was taken from.
    """
    levels = hierarchy.levels()
    if len(levels) != len(snap.caches):
        raise SnapshotError(
            f"snapshot holds {len(snap.caches)} cache levels, target "
            f"hierarchy has {len(levels)}"
        )
    for cache_snap, cache in zip(snap.caches, levels):
        restore_cache(cache_snap, cache)
    restore_memory(snap.memory, hierarchy.memory)
    return hierarchy


# ----------------------------------------------------------------------
# Bounded snapshot caching
# ----------------------------------------------------------------------
class SnapshotCache:
    """LRU cache of expensive-to-build state, bounded by count and bytes.

    Used campaign-side for warm states and worker-side for deduplicated
    trial payloads, so sweeps over many configurations hold O(bound)
    memory.  ``size_bytes`` is caller-provided (typically the pickled
    payload size) because Python object graphs have no cheap exact size.
    """

    def __init__(self, max_entries: int = 8, max_bytes: int = 512 << 20):
        if max_entries < 1 or max_bytes < 1:
            raise SnapshotError(
                "SnapshotCache bounds must be positive, got "
                f"max_entries={max_entries} max_bytes={max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[object, Tuple[object, int]]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The cached value for ``key`` (now most recently used), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key, value, size_bytes: int) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over bounds.

        An entry larger than ``max_bytes`` on its own is stored alone —
        the cache never refuses its newest entry, it only sheds old ones.
        """
        if key in self._entries:
            self.total_bytes -= self._entries.pop(key)[1]
        self._entries[key] = (value, size_bytes)
        self.total_bytes += size_bytes
        while len(self._entries) > self.max_entries or (
            self.total_bytes > self.max_bytes and len(self._entries) > 1
        ):
            _old_key, (_old_value, old_size) = self._entries.popitem(last=False)
            self.total_bytes -= old_size
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        self._entries.clear()
        self.total_bytes = 0

    def export_metrics(self, registry, prefix: str) -> None:
        """Publish occupancy and traffic into a ``MetricsRegistry``."""
        if prefix and not prefix.endswith("."):
            prefix += "."
        registry.gauge(f"{prefix}entries").set(len(self._entries))
        registry.gauge(f"{prefix}bytes").set(self.total_bytes)
        registry.counter(f"{prefix}hits").inc(self.hits)
        registry.counter(f"{prefix}misses").inc(self.misses)
        registry.counter(f"{prefix}evictions").inc(self.evictions)
