"""Per-cache statistics, including the dirty-data metrics of paper Table 2.

Beyond the usual hit/miss/writeback counters, two quantities feed the
reliability model:

* the time-averaged fraction of the cache that is dirty (Table 2 row 1),
  tracked by integrating the dirty-unit count over cycles; and
* ``Tavg``, the average number of cycles between two consecutive accesses
  to the *same dirty unit* (Table 2 row 2), tracked per resident unit.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class CacheStats:
    """Event counters and dirty-data accounting for one cache."""

    # Hit/miss counters.
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    # Traffic.
    fills: int = 0
    writebacks: int = 0
    write_throughs: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0
    # Protection-scheme events.
    read_before_writes: int = 0
    stores_to_dirty_units: int = 0
    detected_faults: int = 0
    corrected_faults: int = 0
    refetch_corrections: int = 0
    # Dirty-data accounting.
    dirty_time_integral: float = 0.0
    observed_cycles: float = 0.0
    dirty_interval_sum: float = 0.0
    dirty_interval_count: int = 0
    #: Log2-bucketed histogram of dirty re-access intervals: bucket ``b``
    #: counts intervals in ``[2^b, 2^(b+1))`` cycles (bucket 0 holds
    #: everything below 2 cycles).  Feeds the distribution-aware MTTF
    #: model, which the mean-only Tavg treatment underestimates for
    #: heavy-tailed interval distributions.
    dirty_interval_histogram: dict = dataclasses.field(default_factory=dict)

    # Internal bookkeeping (not part of the reported stats).
    _last_event_cycle: float = 0.0
    _current_dirty_units: int = 0
    _total_units: int = 0

    def configure(self, total_units: int) -> None:
        """Record the capacity of the cache in protection units."""
        self._total_units = total_units

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def loads(self) -> int:
        """Total loads observed."""
        return self.read_hits + self.read_misses

    @property
    def stores(self) -> int:
        """Total stores observed."""
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        """Total references."""
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def dirty_fraction(self) -> float:
        """Time-averaged fraction of units that were dirty."""
        if not self.observed_cycles or not self._total_units:
            return 0.0
        return self.dirty_time_integral / (self.observed_cycles * self._total_units)

    @property
    def tavg_cycles(self) -> float:
        """Average cycles between consecutive accesses to a dirty unit."""
        if not self.dirty_interval_count:
            return 0.0
        return self.dirty_interval_sum / self.dirty_interval_count

    # ------------------------------------------------------------------
    # Dirty-data integration hooks (called by the cache)
    # ------------------------------------------------------------------
    def advance_to(self, cycle: float) -> None:
        """Integrate dirty occupancy up to ``cycle``."""
        if cycle < self._last_event_cycle:
            return  # out-of-order timestamps are ignored, never negative
        delta = cycle - self._last_event_cycle
        self.dirty_time_integral += self._current_dirty_units * delta
        self.observed_cycles += delta
        self._last_event_cycle = cycle

    def dirty_units_changed(self, delta: int) -> None:
        """Adjust the live dirty-unit count (after :meth:`advance_to`)."""
        self._current_dirty_units += delta

    def record_dirty_interval(self, interval: float) -> None:
        """Record one inter-access interval of a dirty unit (for Tavg)."""
        self.dirty_interval_sum += interval
        self.dirty_interval_count += 1
        bucket = max(0, int(interval).bit_length() - 1)
        self.dirty_interval_histogram[bucket] = (
            self.dirty_interval_histogram.get(bucket, 0) + 1
        )

    def interval_buckets(self):
        """Yield ``(representative_cycles, count)`` per histogram bucket.

        The representative is the bucket's geometric centre, 1.5 * 2^b.
        """
        for bucket, count in sorted(self.dirty_interval_histogram.items()):
            yield 1.5 * (1 << bucket), count

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Public counters as a plain dict (for reports and tests).

        The dict survives a JSON round-trip unchanged: the interval
        histogram is rendered as sorted ``[bucket, count]`` pairs (a JSON
        object would stringify the integer bucket keys).
        """
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "loads": self.loads,
            "stores": self.stores,
            "accesses": self.accesses,
            "fills": self.fills,
            "writebacks": self.writebacks,
            "write_throughs": self.write_throughs,
            "evictions_clean": self.evictions_clean,
            "evictions_dirty": self.evictions_dirty,
            "read_before_writes": self.read_before_writes,
            "stores_to_dirty_units": self.stores_to_dirty_units,
            "detected_faults": self.detected_faults,
            "corrected_faults": self.corrected_faults,
            "refetch_corrections": self.refetch_corrections,
            "miss_rate": self.miss_rate,
            "dirty_fraction": self.dirty_fraction,
            "tavg_cycles": self.tavg_cycles,
            "dirty_interval_count": self.dirty_interval_count,
            "dirty_interval_histogram": [
                [bucket, count]
                for bucket, count in sorted(
                    self.dirty_interval_histogram.items()
                )
            ],
        }

    def export_metrics(self, registry, prefix: str = "") -> None:
        """Fold this snapshot into a :class:`repro.obs.MetricsRegistry`."""
        snap = self.snapshot()
        histogram = snap.pop("dirty_interval_histogram")
        registry.merge_counts(snap.items(), prefix=prefix)
        registry.histogram(f"{prefix}dirty_interval_cycles").merge_buckets(
            dict(histogram)
        )
