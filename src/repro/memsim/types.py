"""Common value types for the cache simulator."""

from __future__ import annotations

import dataclasses
import enum


class AccessType(enum.Enum):
    """Kind of memory reference."""

    LOAD = "load"
    STORE = "store"


@dataclasses.dataclass(frozen=True, order=True)
class UnitLocation:
    """Physical location of one protection unit inside a cache.

    A unit is the protection/dirty-bit granularity: a 64-bit word in an L1
    CPPC, an L1-block-sized chunk in an L2 CPPC.
    """

    set_index: int
    way: int
    unit_index: int

    def __iter__(self):
        # (set, way, unit) triple — lets trace payloads serialize a
        # location as a plain JSON array via list(loc).
        return iter((self.set_index, self.way, self.unit_index))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"set{self.set_index}.way{self.way}.unit{self.unit_index}"


@dataclasses.dataclass(frozen=True)
class AccessResult:
    """Outcome of one load or store at a cache level.

    Attributes:
        hit: whether the first lookup hit.
        data: bytes returned (loads only; ``b''`` for stores).
        writeback: True when the access caused a dirty eviction.
        detected_fault: True when a protection check fired during the
            access (the fault was then corrected or converted to a miss,
            otherwise :class:`~repro.errors.UncorrectableError` is raised).
    """

    hit: bool
    data: bytes = b""
    writeback: bool = False
    detected_fault: bool = False
