"""Observability: event tracing, metrics, and the recovery audit trail.

``repro.obs`` makes the simulator's correction machinery visible without
making it slower: every instrumented component guards its emission sites
with a single predicate that is false by default, so the disabled path
costs one attribute test (gated in CI by ``run_bench --max-obs-overhead``).

Three pillars:

* **Trace sinks** (:mod:`repro.obs.sinks`) — a :class:`TraceSink`
  protocol with a :class:`NullSink` (disabled), a checksummed
  :class:`JsonlSink` (one fsync-disciplined JSON line per event, the
  same writer rules as :class:`repro.runtime.checkpoint.CheckpointStore`)
  and a :class:`ChromeTraceSink` whose output loads directly into
  ``chrome://tracing`` / Perfetto.
* **Metrics** (:mod:`repro.obs.metrics`) — a :class:`MetricsRegistry` of
  counters, gauges and log2 histograms sharing one ``snapshot()``
  schema with :class:`~repro.memsim.stats.CacheStats`,
  :class:`~repro.faults.campaign.CampaignResult` and the ``--json``
  CLIs.
* **Recovery audit trail** (:mod:`repro.obs.trail`) — a bounded,
  replayable record of every CPPC recovery pass: parity syndrome →
  register residue → locator method → reconstructed value, verifiable
  offline with :func:`verify_audit`.
"""

from .metrics import Counter, Gauge, Log2Histogram, MetricsRegistry
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    TraceSink,
    make_sink,
    read_jsonl_trace,
)
from .trail import (
    RecoveryAuditTrail,
    audit_payload,
    reconstruct_corrections,
    verify_audit,
)

__all__ = [
    "TraceSink",
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "make_sink",
    "read_jsonl_trace",
    "Counter",
    "Gauge",
    "Log2Histogram",
    "MetricsRegistry",
    "RecoveryAuditTrail",
    "audit_payload",
    "reconstruct_corrections",
    "verify_audit",
]
