"""A metrics registry: counters, gauges and log2 histograms.

One :class:`MetricsRegistry` aggregates numbers from every instrumented
component into a single JSON-safe ``snapshot()`` schema::

    {
      "counters":   {"l1.read_hits": 1024, ...},
      "gauges":     {"l1.dirty_fraction": 0.163, ...},
      "histograms": {"l1.dirty_interval_cycles": [[3, 17], [4, 40]], ...}
    }

Histograms bucket by power of two exactly like
:meth:`repro.memsim.stats.CacheStats.record_dirty_interval` (bucket ``b``
counts values in ``[2^b, 2^(b+1))``), and snapshots render them as
sorted ``[bucket, count]`` pairs so a round-trip through JSON — e.g. a
:class:`~repro.runtime.checkpoint.CheckpointStore` payload or a
``--json`` CLI report — is exact (JSON objects would stringify integer
keys).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigurationError


def log2_bucket(value: float) -> int:
    """Histogram bucket of ``value``: ``b`` such that ``2^b <= value < 2^(b+1)``.

    Everything below 2 (including non-positive values) lands in bucket 0,
    matching the dirty-interval bucketing of
    :class:`~repro.memsim.stats.CacheStats`.
    """
    return max(0, int(value).bit_length() - 1)


@dataclasses.dataclass
class Counter:
    """A monotone event counter."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only move forward")
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time measurement (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Log2Histogram:
    """Power-of-two bucketed value distribution."""

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``."""
        bucket = log2_bucket(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += count
        self.total += value * count

    def merge_buckets(self, buckets: Dict[int, int]) -> None:
        """Fold pre-bucketed counts (e.g. a ``CacheStats`` histogram) in.

        The merged values count toward ``count`` but not ``total`` (their
        exact magnitudes are gone; only the distribution survives).
        """
        for bucket, count in buckets.items():
            self.buckets[int(bucket)] = self.buckets.get(int(bucket), 0) + count
            self.count += count

    def pairs(self) -> List[List[int]]:
        """Sorted, JSON-exact ``[bucket, count]`` rendering."""
        return [[b, self.buckets[b]] for b in sorted(self.buckets)]


class MetricsRegistry:
    """Named counters/gauges/histograms with one snapshot schema.

    Accessors are get-or-create, so emitting code never pre-registers::

        registry.counter("l1.recoveries").inc()
        registry.gauge("l1.dirty_fraction").set(stats.dirty_fraction)
        registry.histogram("recovery.units_scanned").record(report.units_scanned)
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Log2Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Log2Histogram:
        """The histogram called ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Log2Histogram()
        return histogram

    # ------------------------------------------------------------------
    def merge_counts(
        self, items: Iterable[Tuple[str, float]], prefix: str = ""
    ) -> None:
        """Bulk-import ``(name, value)`` pairs: ints become counter
        increments, floats become gauges."""
        for name, value in items:
            key = f"{prefix}{name}"
            if isinstance(value, bool):
                self.gauge(key).set(float(value))
            elif isinstance(value, int):
                self.counter(key).inc(value)
            else:
                self.gauge(key).set(value)

    def snapshot(self) -> dict:
        """The shared metrics schema (see module docstring)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.pairs()
                for name, h in sorted(self._histograms.items())
            },
        }
