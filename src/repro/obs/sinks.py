"""Trace sinks: where instrumented components send their events.

Two event shapes cover everything the simulator wants to say:

* an **instant** — a point event (``cache miss``, ``register repair``,
  ``recovery audit``) with a category, a name and a JSON-safe ``args``
  dict;
* a **span** — a named interval with a start timestamp and a duration
  (replay phases, campaign trials, recovery passes).

Timestamps are ``time.perf_counter()`` seconds.  Sinks are explicitly
*not* thread-safe; one sink belongs to one replay/campaign driver.

Emission sites throughout the simulator are guarded by a cached
``enabled`` predicate, so a :class:`NullSink` (or no sink at all) keeps
the hot paths on their uninstrumented branch — the property the
``run_bench --max-obs-overhead`` CI gate enforces.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..errors import ConfigurationError, ReproError
from ..util.jsonio import canonical_json, line_checksum


class TraceSink:
    """Protocol for event consumers.

    Subclasses override :meth:`emit` and :meth:`span`; the base class
    provides the lifecycle plumbing (``flush``/``close``/context
    manager) and the ``enabled`` flag the instrumented components cache.
    """

    #: Components skip their emission sites entirely when this is False.
    enabled: bool = True

    def emit(
        self,
        category: str,
        name: str,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Record one instant event."""
        raise NotImplementedError

    def span(
        self,
        category: str,
        name: str,
        start: float,
        duration: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record one completed interval (``start``/``duration`` seconds)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events toward durable storage."""

    def close(self) -> None:
        """Flush and release resources; the sink is unusable afterwards."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """The disabled sink: every emission site is skipped."""

    enabled = False

    def emit(self, category, name, args=None, ts=None):  # pragma: no cover
        pass

    def span(self, category, name, start, duration, args=None):  # pragma: no cover
        pass


class JsonlSink(TraceSink):
    """One checksummed JSON line per event, append-only.

    Reuses the :mod:`repro.runtime.checkpoint` writer discipline: each
    line is canonical JSON carrying a content checksum, writes happen in
    order, and the file is flushed + fsync'd every ``fsync_every``
    events and on close — so a crash can tear at most the final line,
    which :func:`read_jsonl_trace` silently drops (corruption anywhere
    earlier is an error).
    """

    def __init__(self, path: Union[str, Path], *, fsync_every: int = 256):
        if fsync_every < 1:
            raise ConfigurationError("fsync_every must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._fsync_every = fsync_every
        self._pending = 0
        self.events_written = 0

    def _write(self, body: dict) -> None:
        if self._fh is None:
            raise ReproError(f"JsonlSink {self.path} is closed")
        line = canonical_json({**body, "crc": line_checksum(body)})
        self._fh.write(line + "\n")
        self.events_written += 1
        self._pending += 1
        if self._pending >= self._fsync_every:
            self.flush()

    def emit(self, category, name, args=None, ts=None):
        self._write(
            {
                "ph": "i",
                "ts": time.perf_counter() if ts is None else ts,
                "cat": category,
                "name": name,
                "args": args or {},
            }
        )

    def span(self, category, name, start, duration, args=None):
        self._write(
            {
                "ph": "X",
                "ts": start,
                "dur": duration,
                "cat": category,
                "name": name,
                "args": args or {},
            }
        )

    def flush(self):
        if self._fh is None or not self._pending:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self):
        if self._fh is None:
            return
        self._pending = self._pending or 1  # force the final fsync
        self.flush()
        self._fh.close()
        self._fh = None


class ChromeTraceSink(TraceSink):
    """Buffers events and writes a ``chrome://tracing``-loadable file.

    The output is the Trace Event Format's JSON-object form
    (``{"traceEvents": [...]}``), loadable in ``chrome://tracing`` and
    `Perfetto <https://ui.perfetto.dev>`_.  Spans become complete
    (``"ph": "X"``) events; instants become ``"ph": "i"``.  Timestamps
    are rebased to the first event and converted to microseconds.
    """

    def __init__(self, path: Union[str, Path], *, process_name: str = "repro"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.process_name = process_name
        self._events: List[dict] = []
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError(f"ChromeTraceSink {self.path} is closed")

    def emit(self, category, name, args=None, ts=None):
        self._check_open()
        self._events.append(
            {
                "ph": "i",
                "s": "t",
                "ts": time.perf_counter() if ts is None else ts,
                "cat": category,
                "name": name,
                "pid": 1,
                "tid": 1,
                "args": args or {},
            }
        )

    def span(self, category, name, start, duration, args=None):
        self._check_open()
        self._events.append(
            {
                "ph": "X",
                "ts": start,
                "dur": duration,
                "cat": category,
                "name": name,
                "pid": 1,
                "tid": 1,
                "args": args or {},
            }
        )

    def close(self):
        if self._closed:
            return
        base = min((e["ts"] for e in self._events), default=0.0)
        for event in self._events:
            event["ts"] = round((event["ts"] - base) * 1e6, 3)
            if "dur" in event:
                event["dur"] = round(event["dur"] * 1e6, 3)
        document = {
            "traceEvents": [
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": 1,
                    "tid": 1,
                    "args": {"name": self.process_name},
                }
            ]
            + self._events,
            "displayTimeUnit": "ms",
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._events = []
        self._closed = True


def make_sink(path: Union[str, Path, None]) -> TraceSink:
    """Build the right sink for ``path`` (CLI ``--trace-out`` helper).

    ``*.json`` → :class:`ChromeTraceSink`; anything else (conventionally
    ``*.jsonl``) → :class:`JsonlSink`; ``None`` → :class:`NullSink`.
    """
    if path is None:
        return NullSink()
    if str(path).endswith(".json"):
        return ChromeTraceSink(path)
    return JsonlSink(path)


def read_jsonl_trace(
    path: Union[str, Path], *, category: Optional[str] = None
) -> Iterator[dict]:
    """Yield verified events from a :class:`JsonlSink` file.

    Every line's checksum is validated; a torn *final* line (the one a
    crash can interrupt) is dropped, corruption anywhere earlier raises
    :class:`~repro.errors.ReproError`.  ``category`` filters events.
    """
    lines = Path(path).read_text(encoding="utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines):
        try:
            raw = json.loads(line)
            if not isinstance(raw, dict):
                raise ValueError("event is not an object")
            body = {k: v for k, v in raw.items() if k != "crc"}
            if raw.get("crc") != line_checksum(body):
                raise ValueError("checksum mismatch")
        except ValueError as exc:
            if lineno == len(lines) - 1:
                return  # torn tail from a crash mid-append
            raise ReproError(
                f"corrupt trace event at {path}:{lineno + 1}: {exc}"
            ) from None
        if category is None or body.get("cat") == category:
            yield body
