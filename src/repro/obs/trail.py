"""The recovery audit trail: replayable records of every CPPC recovery.

Before this module, the only evidence of a recovery pass was the
:class:`~repro.cppc.recovery.RecoveryReport` appended to an *unbounded*
in-memory list.  The trail replaces that with a bounded deque of
JSON-safe **audit payloads**, each capturing the full detect → locate →
reconstruct chain:

* the triggering unit and how many units the scan walked,
* per register pair: the R1/R2 contents read, the residue
  ``R3 = R1 ^ R2 ^ XOR(rotated dirty values)``, the resolution method
  (``single`` / ``disjoint-parity`` / ``spatial-locator``), and the
  parity syndrome of every faulty unit,
* per repaired unit: stored (corrupt) value, reconstructed value, and
  the error mask between them,
* any registers that had to be rebuilt first (Section 4.9).

Because the payload is self-describing (unit width, rotation classes,
byte shifting), :func:`verify_audit` can re-derive every correction
offline — from a ``trace.jsonl`` file on another machine — and check it
against the recorded residues, exactly the discipline the R1^R2
invariant enforces live via
:meth:`~repro.cppc.CppcProtection.dirty_xor_expected`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

#: Default bound on retained audit records; the ``recoveries`` counter
#: stays monotone regardless.
DEFAULT_TRAIL_MAXLEN = 64


def audit_payload(report, scheme) -> dict:
    """JSON-safe audit record of one recovery pass.

    Args:
        report: the :class:`~repro.cppc.recovery.RecoveryReport`.
        scheme: the :class:`~repro.cppc.CppcProtection` that ran it.
    """
    pairs = []
    for pair_audit in report.pair_audits:
        corrections = []
        for unit in pair_audit.faulty:
            old, new = report.corrections[unit.loc]
            corrections.append(
                {
                    "loc": list(unit.loc),
                    "class": unit.rotation_class,
                    "old": old,
                    "new": new,
                    "delta": old ^ new,
                }
            )
        pairs.append(
            {
                "pair": pair_audit.pair_index,
                "r1": pair_audit.r1,
                "r2": pair_audit.r2,
                "residue": pair_audit.residue,
                "method": pair_audit.method,
                "faulty": [
                    {
                        "loc": list(u.loc),
                        "class": u.rotation_class,
                        "row": u.row,
                        "stored": u.stored_value,
                        "parities": sorted(u.faulty_parities),
                    }
                    for u in pair_audit.faulty
                ],
                "corrections": corrections,
            }
        )
    return {
        "trigger": list(report.trigger),
        "units_scanned": report.units_scanned,
        "register_repairs": report.register_repairs,
        "unit_bits": scheme.code.data_bits,
        "parity_ways": scheme.code.ways,
        "num_classes": scheme.rotation.num_classes,
        "byte_shifting": scheme.rotation.enabled,
        "pairs": pairs,
    }


def reconstruct_corrections(payload: dict) -> Dict[Tuple[int, int, int], int]:
    """Replay one audit payload: ``{(set, way, unit): corrected value}``.

    Values are rebuilt from the recorded stored value and error mask
    (``stored ^ delta``), *not* read from the ``new`` field, so a test
    comparing the result against the repaired cache genuinely re-derives
    every word.
    """
    out: Dict[Tuple[int, int, int], int] = {}
    for pair in payload["pairs"]:
        stored = {tuple(u["loc"]): u["stored"] for u in pair["faulty"]}
        for correction in pair["corrections"]:
            loc = tuple(correction["loc"])
            out[loc] = stored[loc] ^ correction["delta"]
    return out


def verify_audit(payload: dict) -> List[str]:
    """Check one audit payload's internal consistency; returns problems.

    Three properties must hold for a trustworthy trail record:

    1. every correction's reconstructed value equals ``old ^ delta`` and
       matches the faulty unit it claims to repair;
    2. per register pair, the recorded residue equals the XOR of the
       *rotated* error masks of that pair's corrections — the defining
       equation of CPPC recovery (``R3`` is the XOR of the rotated error
       patterns);
    3. each correction's error mask only disturbs parity groups that the
       unit's recorded syndrome flagged.
    """
    # Imported here: repro.cppc imports this module at load time.
    from ..cppc.shifting import RotationScheme
    from ..coding import InterleavedParity

    problems: List[str] = []
    rotation = RotationScheme(
        unit_bytes=payload["unit_bits"] // 8,
        num_classes=payload["num_classes"],
        enabled=payload["byte_shifting"],
    )
    code = InterleavedParity(
        data_bits=payload["unit_bits"], ways=payload["parity_ways"]
    )
    for pair in payload["pairs"]:
        syndromes = {
            tuple(u["loc"]): frozenset(u["parities"]) for u in pair["faulty"]
        }
        stored = {tuple(u["loc"]): u["stored"] for u in pair["faulty"]}
        rotated_deltas = 0
        for correction in pair["corrections"]:
            loc = tuple(correction["loc"])
            if correction["new"] != correction["old"] ^ correction["delta"]:
                problems.append(f"{loc}: new != old ^ delta")
            if loc not in stored:
                problems.append(f"{loc}: corrected but never flagged faulty")
                continue
            if correction["old"] != stored[loc]:
                problems.append(f"{loc}: old value disagrees with the scan")
            # The delta must be explainable by the recorded syndrome: a
            # group the error pattern disturbs must have flagged.
            disturbed = code.inspect(correction["delta"], 0).faulty_parities
            if not disturbed <= syndromes[loc]:
                problems.append(
                    f"{loc}: delta touches unflagged parity groups "
                    f"{sorted(disturbed - syndromes[loc])}"
                )
            rotated_deltas ^= rotation.rotate_in(
                correction["delta"], correction["class"]
            )
        if rotated_deltas != pair["residue"]:
            problems.append(
                f"pair {pair['pair']}: residue {pair['residue']:#x} is not "
                f"the XOR of the rotated error masks ({rotated_deltas:#x})"
            )
    return problems


class RecoveryAuditTrail:
    """A bounded, optionally sink-backed log of recovery audit records.

    The newest ``maxlen`` payloads stay resident for inspection; every
    record is also forwarded to the attached
    :class:`~repro.obs.sinks.TraceSink` (category ``cppc.recovery``), so
    nothing is lost when the deque wraps — long campaigns stream the
    full history to disk while holding O(maxlen) memory.
    """

    def __init__(self, maxlen: int = DEFAULT_TRAIL_MAXLEN, sink=None):
        if maxlen < 1:
            raise ConfigurationError("audit trail maxlen must be >= 1")
        self._entries: Deque[dict] = deque(maxlen=maxlen)
        self.sink = sink
        #: Monotone count of every record ever appended (never truncated).
        self.total_recorded = 0

    @property
    def maxlen(self) -> int:
        """Retention bound of the in-memory deque."""
        return self._entries.maxlen

    def record(self, payload: dict) -> dict:
        """Append one audit payload (and stream it to the sink)."""
        self._entries.append(payload)
        self.total_recorded += 1
        if self.sink is not None and self.sink.enabled:
            self.sink.emit("cppc.recovery", "audit", payload)
        return payload

    @property
    def latest(self) -> Optional[dict]:
        """The most recent audit record, or None."""
        return self._entries[-1] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._entries)

    def __getitem__(self, index):
        return self._entries[index]
