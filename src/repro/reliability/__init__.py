"""Analytical reliability models: MTTF, aliasing hazard, AVF."""

from .aliasing import aliasing_vulnerable_bits, mttf_aliasing_years
from .avf import PAPER_AVF, measured_avf
from .fastmc import (
    CacheImage,
    FaultPairBatch,
    build_cache_image,
    classify_batch,
    cross_check_live,
    estimate_double_fault_failure_fast,
    sample_fault_pairs,
)
from .montecarlo import (
    DoubleFaultEstimate,
    analytical_collision_probability,
    estimate_double_fault_failure,
)
from .parma import mttf_cppc_from_histogram, tail_amplification
from .mttf import (
    ReliabilityInputs,
    mttf_cppc_years,
    mttf_domain_pair_years,
    mttf_parity_years,
    mttf_secded_years,
)

__all__ = [
    "aliasing_vulnerable_bits",
    "mttf_aliasing_years",
    "PAPER_AVF",
    "measured_avf",
    "ReliabilityInputs",
    "mttf_cppc_years",
    "mttf_domain_pair_years",
    "mttf_parity_years",
    "mttf_secded_years",
    "DoubleFaultEstimate",
    "analytical_collision_probability",
    "estimate_double_fault_failure",
    "CacheImage",
    "FaultPairBatch",
    "build_cache_image",
    "classify_batch",
    "cross_check_live",
    "estimate_double_fault_failure_fast",
    "sample_fault_pairs",
    "mttf_cppc_from_histogram",
    "tail_amplification",
]
