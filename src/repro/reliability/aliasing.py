"""Aliasing MTTF: temporal faults mistaken for a spatial strike (Sec 4.7).

The byte-shifting locator assumes that concurrent faults in nearby rows
are one spatial strike.  Two *temporal* single-bit faults can mimic one:
after a first fault, a second fault must land — before the first is
scrubbed — on one of ``k`` specific bits out of the whole cache, where

* one register pair:   k = num_classes - 1   (7 in the paper's design),
* two pairs:           k = num_classes/2 - 1 (3),
* four pairs:          k = 1,
* eight pairs:         k = 0 — the hazard is eliminated (Section 4.11).

The resulting miscorrection converts a 2-bit DUE into a (worse) SDC; the
paper computes a mean time of ~4.19e20 years for its L2 configuration,
five orders of magnitude beyond the DUE MTTF, hence negligible.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..util import hours_to_years
from .mttf import ReliabilityInputs


def aliasing_vulnerable_bits(num_classes: int = 8, num_pairs: int = 1) -> int:
    """Bits whose upset (after a first fault) forges a spatial pattern."""
    if num_pairs < 1 or num_classes < 1:
        raise ConfigurationError("num_classes and num_pairs must be >= 1")
    if num_classes % num_pairs:
        raise ConfigurationError("num_pairs must divide num_classes")
    return num_classes // num_pairs - 1


def mttf_aliasing_years(
    inputs: ReliabilityInputs, *, num_classes: int = 8, num_pairs: int = 1
) -> float:
    """Mean time until a temporal pair is miscorrected as spatial.

    Rate of first faults: ``lambda * dirty_bits`` per hour.  Given a first
    fault, the probability that a second lands on one of the ``k``
    aliasing bits within the scrubbing interval is ``k * lambda * Tavg``.
    """
    k = aliasing_vulnerable_bits(num_classes, num_pairs)
    if k == 0:
        return math.inf
    rate_first = inputs.rate_per_bit_hour * inputs.dirty_bits
    p_second = k * inputs.rate_per_bit_hour * inputs.tavg_hours
    event_rate = rate_first * p_second  # events per hour
    if event_rate <= 0:
        return math.inf
    return hours_to_years(1.0 / event_rate / inputs.avf)
