"""Architectural Vulnerability Factor helpers.

The paper uses a flat AVF of 0.7 for dirty data ("all Loads from dirty
data may cause a failure").  :func:`measured_avf` additionally offers a
trace-derived estimate — the fraction of dirty units whose next event is
a load rather than an overwrite or eviction — for sensitivity studies.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.types import AccessType
from ..workloads.trace import TraceRecord

#: The paper's Section 6.3 assumption.
PAPER_AVF = 0.7


def measured_avf(
    records: Iterable[TraceRecord], hierarchy: MemoryHierarchy
) -> float:
    """Estimate AVF as the fraction of reads among dirty-word touches.

    Replays the trace on ``hierarchy`` (which must be fresh) and counts,
    for units that are dirty when touched, how often the touch is a load
    (a fault there would be consumed) versus a store overwrite (a fault
    there would be masked).
    """
    reads_of_dirty = 0
    writes_to_dirty = 0
    l1 = hierarchy.l1d
    for record in records:
        if record.op is AccessType.LOAD:
            loc = l1.locate(record.addr)
            if loc is not None:
                line = l1.line(loc.set_index, loc.way)
                if line.dirty[loc.unit_index]:
                    reads_of_dirty += 1
            hierarchy.load(record.addr, record.size)
        else:
            before = l1.stats.stores_to_dirty_units
            hierarchy.store(record.addr, record.value)
            if l1.stats.stores_to_dirty_units > before:
                writes_to_dirty += 1
    touches = reads_of_dirty + writes_to_dirty
    if touches == 0:
        raise ConfigurationError("trace never touched a dirty unit")
    return reads_of_dirty / touches
