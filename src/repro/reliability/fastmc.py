"""Vectorized, shardable Monte-Carlo double-fault engine.

:mod:`repro.reliability.montecarlo` validates the paper's ``1/(p*w)``
collision claim with live machinery — a scalar loop that forks a dirty
cache and drives :class:`~repro.cppc.protection.CppcProtection` recovery
per sample.  That is the reference; this module is its fast path.  The
key observation making vectorization *exact* rather than approximate:
for two single-bit faults in distinct dirty words, the recovery outcome
is a pure function of the fault **geometry** (register pair, parity
group, way, row distance) — the random cache contents cancel out of
every XOR in the recovery algebra.  Concretely:

* different register pairs → each pair sees one faulty unit, the
  ``single`` method reconstructs it exactly → *corrected*;
* same pair, different parity groups → byte rotation never moves a bit
  out of its parity group, so the ``disjoint-parity`` method separates
  the two patterns exactly → *corrected*;
* same pair **and** same parity group → the spatial path: different
  ways, or rows further apart than the rotation period, are immediate
  DUEs; the remaining sliver (same way, row distance < ``num_classes``)
  goes to the :class:`~repro.cppc.locator.FaultLocator`, whose verdict
  (corrected / miscorrected / DUE) this engine obtains by running the
  *real* locator on the sampled evidence — never a re-derivation.

The engine therefore materializes the dirty-cache image **once per
geometry** as columnar NumPy arrays (:class:`CacheImage`), samples every
fault pair of a shard in one batch (:func:`sample_fault_pairs`, a
counter-based Philox convention that makes the merged estimate
bit-independent of the shard count), classifies the common cases with
array algebra — parity syndromes via
:func:`repro.memsim.batch._fold_check_words` against the actual stored
check words, register images via
:func:`repro.memsim.batch._rotl_bytes_u64` — and resolves the rare
spatial corner through the live locator.

:func:`cross_check_live` is the equivalence mode: it rebuilds the same
image inside a real :class:`~repro.memsim.cache.Cache`, verifies the
vectorized register image against the live R1^R2 pairs, then replays a
randomized subset of the sampled fault pairs through full
``Cache``/``CppcProtection`` recovery and asserts **per-sample outcome
identity** with the vector kernel, raising
:class:`~repro.errors.EquivalenceError` on any divergence.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.random import Philox

from ..coding.parity import InterleavedParity
from ..cppc import CppcProtection
from ..cppc.locator import FaultLocator, FaultyUnit
from ..cppc.registers import RegisterFile
from ..cppc.shifting import RotationScheme
from ..errors import (
    ConfigurationError,
    EquivalenceError,
    FaultLocatorError,
    UncorrectableError,
)
from ..memsim import Cache, MainMemory
from ..memsim.batch import _fold_check_words, _rotl_bytes_u64
from ..memsim.snapshot import restore_cache, snapshot_cache
from ..memsim.types import UnitLocation
from ..util import make_rng
from ..util.rng import split_seed
from .montecarlo import DoubleFaultEstimate

__all__ = [
    "CORRECTED",
    "DUE",
    "MISCORRECTED",
    "RAWS_PER_SAMPLE",
    "CacheImage",
    "FaultPairBatch",
    "build_cache_image",
    "sample_fault_pairs",
    "classify_batch",
    "estimate_double_fault_failure_fast",
    "cross_check_live",
    "replay_pairs_live",
]

#: Per-sample outcome codes (values of :func:`classify_batch` arrays).
CORRECTED, DUE, MISCORRECTED = 0, 1, 2

#: Raw 64-bit Philox draws consumed per sample: unit_a, unit_b, bit_a,
#: bit_b.  ``Philox.advance(n)`` skips exactly ``4 * n`` raw outputs
#: (one counter increment yields one four-word block), so a shard
#: starting at global sample ``lo`` positions its stream with
#: ``advance(lo)`` — the draw for sample ``i`` is identical no matter
#: how the sample range is partitioned into shards.
RAWS_PER_SAMPLE = 4

#: Geometry constants mirrored from ``montecarlo._build_dirty_cache``:
#: a 2-way cache of 32-byte blocks and 64-bit protection units.
_WAYS = 2
_BLOCK_BYTES = 32
_UNIT_BYTES = 8
_UNITS_PER_BLOCK = _BLOCK_BYTES // _UNIT_BYTES
_NUM_CLASSES = 8


def _validate_geometry(parity_ways: int, num_pairs: int, cache_bytes: int):
    if parity_ways not in (1, 2, 4, 8):
        raise ConfigurationError(
            f"fastmc supports parity_ways in (1, 2, 4, 8), got {parity_ways}"
        )
    if num_pairs not in RegisterFile.VALID_PAIR_COUNTS:
        raise ConfigurationError(
            f"num_pairs must be one of {RegisterFile.VALID_PAIR_COUNTS}, "
            f"got {num_pairs}"
        )
    if cache_bytes < 256 or cache_bytes % 64:
        raise ConfigurationError(
            "cache_bytes must be a multiple of 64 and at least 256"
        )


def _fold_parity_words(values: np.ndarray, ways: int) -> np.ndarray:
    """Vectorized ``InterleavedParity(ways).encode`` over 64-bit words.

    Starts from the 8-way byte fold (bit ``7 - g`` of the folded byte is
    group ``g``'s parity) and keeps halving: each fold XORs 8-way groups
    congruent modulo the next width, landing group ``g`` of the
    ``ways``-way code at bit ``ways - 1 - g`` — exactly the scalar
    encode's check-word layout.
    """
    folded = _fold_check_words(values)
    width = 8
    while width > ways:
        width //= 2
        folded = (folded ^ (folded >> np.uint64(width))) & np.uint64((1 << width) - 1)
    return folded


@dataclasses.dataclass(frozen=True)
class CacheImage:
    """Columnar image of the fully-dirty experiment cache.

    One instance per ``(num_pairs, parity_ways, cache_bytes, seed)``
    geometry; every array is indexed by the flat unit index ``u`` in
    ``Cache.iter_units`` order (set ascending, way ascending, unit
    ascending), so ``u`` doubles as an index into the live cache's
    location list during equivalence replay.
    """

    num_pairs: int
    parity_ways: int
    cache_bytes: int
    seed: object
    byte_shifting: bool
    num_sets: int
    values: np.ndarray  #: uint64 stored value per unit
    checks: np.ndarray  #: uint64 stored check word per unit
    way: np.ndarray  #: uint8 way of each unit
    row: np.ndarray  #: uint32 physical row (within its way)
    rotation_class: np.ndarray  #: uint8 ``row % num_classes``
    pair: np.ndarray  #: uint8 register pair owning the unit's class
    register_xor: np.ndarray  #: uint64 per-pair XOR of rotated values

    @property
    def num_units(self) -> int:
        """Units in the image (all dirty by construction)."""
        return len(self.values)

    def location_of(self, unit: int) -> UnitLocation:
        """Live-cache location of flat unit index ``unit``."""
        per_set = _WAYS * _UNITS_PER_BLOCK
        return UnitLocation(
            unit // per_set,
            (unit % per_set) // _UNITS_PER_BLOCK,
            unit % _UNITS_PER_BLOCK,
        )

    def to_cache(self) -> Cache:
        """Materialize the image as a live fully-dirty CPPC cache.

        Stores walk the address space in the same order as
        ``montecarlo._build_dirty_cache`` (so way fill matches), writing
        this image's values — the returned cache's units, check words
        and R1^R2 registers are the scalar twin of the columns here.
        """
        memory = MainMemory(block_bytes=_BLOCK_BYTES)
        cache = Cache(
            "L1D",
            self.cache_bytes,
            _WAYS,
            _BLOCK_BYTES,
            unit_bytes=_UNIT_BYTES,
            protection=CppcProtection(
                data_bits=64,
                parity_ways=self.parity_ways,
                num_pairs=self.num_pairs,
                byte_shifting=self.byte_shifting,
            ),
            next_level=memory,
        )
        for addr in range(0, self.cache_bytes, _UNIT_BYTES):
            block = addr // _BLOCK_BYTES
            way, set_index = divmod(block, self.num_sets)
            unit_index = (addr % _BLOCK_BYTES) // _UNIT_BYTES
            flat = (set_index * _WAYS + way) * _UNITS_PER_BLOCK + unit_index
            cache.store(addr, int(self.values[flat]).to_bytes(_UNIT_BYTES, "big"))
        return cache


def build_cache_image(
    num_pairs: int,
    parity_ways: int,
    seed,
    cache_bytes: int = 8192,
) -> CacheImage:
    """Build the columnar dirty-cache image for one geometry.

    Values are drawn from a counter-based Philox stream keyed by
    ``split_seed(seed, "fastmc", "image")``; the per-unit way/row/class/
    pair columns are derived from the same flat-index convention the
    live cache's ``iter_units`` walks.  The per-pair register image is
    the XOR of every unit's byte-rotated value, computed class-by-class
    with :func:`~repro.memsim.batch._rotl_bytes_u64` — equivalence mode
    checks it against the live R1^R2 pairs bit-for-bit.
    """
    _validate_geometry(parity_ways, num_pairs, cache_bytes)
    num_sets = cache_bytes // (_WAYS * _BLOCK_BYTES)
    num_units = num_sets * _WAYS * _UNITS_PER_BLOCK
    byte_shifting = parity_ways == 8

    gen = Philox(key=split_seed(seed, "fastmc", "image"))
    values = gen.random_raw(num_units).astype(np.uint64)
    checks = _fold_parity_words(values, parity_ways)

    flat = np.arange(num_units, dtype=np.int64)
    per_set = _WAYS * _UNITS_PER_BLOCK
    set_index = flat // per_set
    way = ((flat % per_set) // _UNITS_PER_BLOCK).astype(np.uint8)
    unit_index = flat % _UNITS_PER_BLOCK
    row = (set_index * _UNITS_PER_BLOCK + unit_index).astype(np.uint32)
    rotation_class = (row % _NUM_CLASSES).astype(np.uint8)
    pair = (rotation_class // (_NUM_CLASSES // num_pairs)).astype(np.uint8)

    register_xor = np.zeros(num_pairs, dtype=np.uint64)
    for cls in range(_NUM_CLASSES):
        members = values[rotation_class == cls]
        if not len(members):
            continue
        rotated = _rotl_bytes_u64(members, cls) if byte_shifting else members
        pair_of_cls = cls // (_NUM_CLASSES // num_pairs)
        register_xor[pair_of_cls] ^= np.bitwise_xor.reduce(rotated)

    return CacheImage(
        num_pairs=num_pairs,
        parity_ways=parity_ways,
        cache_bytes=cache_bytes,
        seed=seed,
        byte_shifting=byte_shifting,
        num_sets=num_sets,
        values=values,
        checks=checks,
        way=way,
        row=row,
        rotation_class=rotation_class,
        pair=pair,
        register_xor=register_xor,
    )


@dataclasses.dataclass(frozen=True)
class FaultPairBatch:
    """Columnar fault-pair draws for global sample indices ``[lo, hi)``."""

    lo: int
    hi: int
    unit_a: np.ndarray  #: int64 flat index of the first faulty unit
    unit_b: np.ndarray  #: int64 flat index of the second (distinct)
    bit_a: np.ndarray  #: uint8 LSB-first flipped bit of the first fault
    bit_b: np.ndarray  #: uint8 LSB-first flipped bit of the second

    def __len__(self) -> int:
        return self.hi - self.lo


def sample_fault_pairs(seed, lo: int, hi: int, num_units: int) -> FaultPairBatch:
    """Draw the fault pairs for global sample indices ``[lo, hi)``.

    The stream is counter-based: sample ``i`` always consumes raw words
    ``4*i .. 4*i+3`` of the Philox stream keyed by
    ``split_seed(seed, "double-fault", "fastmc")``, so any partition of
    ``[0, samples)`` into shards draws the identical per-sample faults
    and the merged outcome counts are bit-independent of the shard
    count.  ``unit_b`` is drawn over ``num_units - 1`` and shifted past
    ``unit_a``, giving a uniform ordered pair of *distinct* units (the
    same sample space as the scalar path's ``rng.sample(locations, 2)``,
    under an independent stream).
    """
    if num_units < 2:
        raise ConfigurationError("need at least two units to sample pairs")
    if not 0 <= lo <= hi:
        raise ConfigurationError(f"bad sample range [{lo}, {hi})")
    count = hi - lo
    if count == 0:
        empty64 = np.empty(0, dtype=np.int64)
        empty8 = np.empty(0, dtype=np.uint8)
        return FaultPairBatch(lo, hi, empty64, empty64, empty8, empty8)
    gen = Philox(key=split_seed(seed, "double-fault", "fastmc"))
    if lo:
        gen.advance(lo)
    raw = gen.random_raw(RAWS_PER_SAMPLE * count).astype(np.uint64)
    raw = raw.reshape(-1, RAWS_PER_SAMPLE)
    unit_a = (raw[:, 0] % np.uint64(num_units)).astype(np.int64)
    unit_b = (raw[:, 1] % np.uint64(num_units - 1)).astype(np.int64)
    unit_b = np.where(unit_b >= unit_a, unit_b + 1, unit_b)
    bit_a = (raw[:, 2] & np.uint64(63)).astype(np.uint8)
    bit_b = (raw[:, 3] & np.uint64(63)).astype(np.uint8)
    return FaultPairBatch(lo, hi, unit_a, unit_b, bit_a, bit_b)


def _syndrome_groups(image: CacheImage, units, bits) -> np.ndarray:
    """Flagged parity group per fault, via the stored image.

    Recomputes what the live scan sees: fold the corrupted value and
    XOR with the stored check word.  A single-bit fault flags exactly
    one group; the lookup maps the one-hot syndrome to its index.
    """
    ways = image.parity_ways
    errors = np.uint64(1) << bits.astype(np.uint64)
    folded = _fold_parity_words(image.values[units] ^ errors, ways)
    syndromes = folded ^ image.checks[units]
    lut = np.full(1 << ways, 255, dtype=np.uint8)
    for g in range(ways):
        lut[1 << (ways - 1 - g)] = g
    groups = lut[syndromes.astype(np.int64)]
    if groups.max(initial=0) == 255:
        raise ConfigurationError(
            "single-bit fault produced a non-one-hot parity syndrome"
        )
    return groups


def _corner_outcome(
    image: CacheImage,
    code: InterleavedParity,
    rotation: RotationScheme,
    locator: FaultLocator,
    unit_a: int,
    unit_b: int,
    bit_a: int,
    bit_b: int,
) -> int:
    """Resolve one spatial-corner sample through the live locator.

    Reached only for faults sharing pair, parity group and way with a
    row distance inside the rotation period — exactly the cases
    ``repro.cppc.recovery`` hands to :class:`FaultLocator`.  The checks
    recovery performs *before* the locator (zero residue, shared ways,
    row span) and *after* it (the residual-parity sanity check) are
    reproduced here on the same evidence, so the verdict matches the
    live path per sample.
    """
    faulty: List[FaultyUnit] = []
    errors: Dict[UnitLocation, int] = {}
    checks: Dict[UnitLocation, int] = {}
    r3 = 0
    for unit, bit in ((unit_a, bit_a), (unit_b, bit_b)):
        error = 1 << int(bit)
        stored = int(image.values[unit]) ^ error
        check = int(image.checks[unit])
        cls = int(image.rotation_class[unit])
        loc = image.location_of(unit)
        inspection = code.inspect(stored, check)
        faulty.append(
            FaultyUnit(
                loc=loc,
                rotation_class=cls,
                row=int(image.row[unit]),
                stored_value=stored,
                faulty_parities=inspection.faulty_parities,
            )
        )
        errors[loc] = error
        checks[loc] = check
        r3 ^= rotation.rotate_in(error, cls)
    try:
        deltas = locator.locate(faulty, r3)
    except FaultLocatorError:
        return DUE
    for unit in faulty:
        corrected = unit.stored_value ^ deltas[unit.loc]
        residual = code.inspect(corrected, checks[unit.loc])
        if residual.detected and not (residual.faulty_parities <= unit.faulty_parities):
            return DUE
    exact = all(deltas[loc] == error for loc, error in errors.items())
    return CORRECTED if exact else MISCORRECTED


def classify_batch(image: CacheImage, batch: FaultPairBatch) -> np.ndarray:
    """Per-sample outcomes (``CORRECTED``/``DUE``/``MISCORRECTED``).

    Vectorized protection-domain algebra for the common cases; the rare
    spatial corner (same pair, same parity group, same way, row
    distance inside the rotation period) runs through the live
    :class:`FaultLocator` sample by sample.
    """
    ua, ub = batch.unit_a, batch.unit_b
    groups_a = _syndrome_groups(image, ua, batch.bit_a)
    groups_b = _syndrome_groups(image, ub, batch.bit_b)
    collide = (image.pair[ua] == image.pair[ub]) & (groups_a == groups_b)
    same_way = image.way[ua] == image.way[ub]
    span = np.abs(image.row[ua].astype(np.int64) - image.row[ub].astype(np.int64))
    corner = collide & same_way & (span < _NUM_CLASSES)

    outcomes = np.zeros(len(batch), dtype=np.uint8)
    outcomes[collide & ~corner] = DUE
    corner_indices = np.flatnonzero(corner)
    if len(corner_indices):
        code = InterleavedParity(data_bits=64, ways=image.parity_ways)
        rotation = RotationScheme(
            unit_bytes=_UNIT_BYTES,
            num_classes=_NUM_CLASSES,
            enabled=image.byte_shifting,
        )
        locator = FaultLocator(rotation)
        for i in corner_indices:
            outcomes[i] = _corner_outcome(
                image,
                code,
                rotation,
                locator,
                int(ua[i]),
                int(ub[i]),
                int(batch.bit_a[i]),
                int(batch.bit_b[i]),
            )
    return outcomes


def _shard_bounds(samples: int, shards: int) -> List[Tuple[int, int]]:
    """Even partition of ``[0, samples)`` into ``shards`` ranges."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    step, extra = divmod(samples, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + step + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return [b for b in bounds if b[0] != b[1]]


def _shard_counts(
    lo: int,
    hi: int,
    parity_ways: int,
    num_pairs: int,
    seed,
    cache_bytes: int,
) -> Tuple[int, int, int]:
    """Outcome counts of one sample shard (picklable worker entry)."""
    image = build_cache_image(num_pairs, parity_ways, seed, cache_bytes)
    batch = sample_fault_pairs(seed, lo, hi, image.num_units)
    outcomes = classify_batch(image, batch)
    return (
        int(np.count_nonzero(outcomes == CORRECTED)),
        int(np.count_nonzero(outcomes == DUE)),
        int(np.count_nonzero(outcomes == MISCORRECTED)),
    )


def estimate_double_fault_failure_fast(
    *,
    samples: int = 200_000,
    parity_ways: int = 8,
    num_pairs: int = 1,
    seed: int = 0,
    cache_bytes: int = 8192,
    shards: int = 1,
    jobs: Optional[int] = None,
) -> DoubleFaultEstimate:
    """Vectorized counterpart of ``estimate_double_fault_failure``.

    Same estimator (outcome histogram of two concurrent single-bit
    faults in distinct dirty words of a fully-dirty CPPC cache), under
    an independent deterministic sample stream, at four to five orders
    of magnitude more samples per second.  ``shards`` splits the sample
    range; the counter-based stream guarantees the merged estimate is
    bit-identical for any shard count.  ``jobs`` (> 1) fans the shards
    out across worker processes via the
    :class:`~repro.runtime.TrialExecutor`; per-shard seeds still come
    from the same global stream, so results are also independent of
    *where* a shard ran.
    """
    estimate = DoubleFaultEstimate(samples=samples)
    _validate_geometry(parity_ways, num_pairs, cache_bytes)
    bounds = _shard_bounds(samples, shards)
    argses = [(lo, hi, parity_ways, num_pairs, seed, cache_bytes) for lo, hi in bounds]
    if jobs is not None and jobs > 1 and len(argses) > 1:
        from ..runtime import TrialExecutor

        with TrialExecutor(jobs=min(jobs, len(argses))) as executor:
            results = executor.map(_shard_counts, argses, seed=seed)
    else:
        results = [_shard_counts(*args) for args in argses]
    for corrected, due, miscorrected in results:
        estimate.corrected += corrected
        estimate.due += due
        estimate.miscorrected += miscorrected
    return estimate


def replay_pairs_live(
    image: CacheImage,
    batch: FaultPairBatch,
    indices: Sequence[int],
) -> Dict[int, int]:
    """Replay selected samples through live ``Cache`` recovery.

    Builds the image's live twin once, snapshots it, and forks a fresh
    cache per selected sample: corrupt both sampled units, load both
    addresses (triggering recovery), classify DUE on
    :class:`UncorrectableError` else corrected/miscorrected against the
    golden contents — the exact procedure of the scalar reference loop.
    Returns ``{sample_position: outcome_code}``.

    Also asserts, before any replay, that the vectorized register image
    matches the live R1^R2 pairs — the ``_rotl_bytes_u64`` algebra
    against the scalar register path.
    """
    base = image.to_cache()
    scheme: CppcProtection = base.protection
    for index, pair in enumerate(scheme.registers.pairs):
        expected = int(image.register_xor[index])
        if pair.dirty_xor != expected:
            raise EquivalenceError(
                f"vectorized register image disagrees with the live "
                f"R1^R2 of pair {index}: image {expected:#x}, "
                f"live {pair.dirty_xor:#x}",
                mismatches=[f"pair {index}"],
            )
    golden = {loc: value for loc, value, _d in base.iter_units()}
    locations = list(golden)
    snap = snapshot_cache(base)

    outcomes: Dict[int, int] = {}
    for position in indices:
        fresh = restore_cache(
            snap,
            Cache(
                "L1D",
                image.cache_bytes,
                _WAYS,
                _BLOCK_BYTES,
                unit_bytes=_UNIT_BYTES,
                protection=CppcProtection(
                    data_bits=64,
                    parity_ways=image.parity_ways,
                    num_pairs=image.num_pairs,
                    byte_shifting=image.byte_shifting,
                ),
                next_level=MainMemory(block_bytes=_BLOCK_BYTES),
            ),
        )
        loc_a = locations[int(batch.unit_a[position])]
        loc_b = locations[int(batch.unit_b[position])]
        fresh.corrupt_data(loc_a, 1 << int(batch.bit_a[position]))
        fresh.corrupt_data(loc_b, 1 << int(batch.bit_b[position]))
        try:
            fresh.load(fresh.address_of(loc_a), _UNIT_BYTES)
            fresh.load(fresh.address_of(loc_b), _UNIT_BYTES)
        except UncorrectableError:
            outcomes[position] = DUE
            continue
        clean = all(fresh.peek_unit(loc)[0] == value for loc, value in golden.items())
        outcomes[position] = CORRECTED if clean else MISCORRECTED
    return outcomes


def cross_check_live(
    *,
    samples: int = 512,
    subset: int = 48,
    parity_ways: int = 8,
    num_pairs: int = 1,
    seed: int = 0,
    cache_bytes: int = 1024,
) -> dict:
    """Equivalence mode: vector kernel vs. live recovery, per sample.

    Samples ``samples`` fault pairs with the kernel's stream, classifies
    them vectorized, then replays a randomized ``subset`` through the
    live machinery (always including every non-corrected sample first —
    the interesting DUE/SDC verdicts — topped up with uniformly chosen
    corrected ones) and asserts per-sample outcome identity.  Raises
    :class:`EquivalenceError` on any divergence; returns a summary dict.
    """
    image = build_cache_image(num_pairs, parity_ways, seed, cache_bytes)
    batch = sample_fault_pairs(seed, 0, samples, image.num_units)
    outcomes = classify_batch(image, batch)

    interesting = [int(i) for i in np.flatnonzero(outcomes != CORRECTED)]
    rng = make_rng((seed, "fastmc-equivalence-subset"))
    rng.shuffle(interesting)
    chosen = interesting[:subset]
    if len(chosen) < min(subset, samples):
        boring = [int(i) for i in np.flatnonzero(outcomes == CORRECTED)]
        chosen += rng.sample(boring, min(subset - len(chosen), len(boring)))
    live = replay_pairs_live(image, batch, chosen)

    names = {CORRECTED: "corrected", DUE: "due", MISCORRECTED: "miscorrected"}
    mismatches = [
        f"sample {position}: kernel={names[int(outcomes[position])]} "
        f"live={names[live[position]]} "
        f"(units {int(batch.unit_a[position])}/{int(batch.unit_b[position])}, "
        f"bits {int(batch.bit_a[position])}/{int(batch.bit_b[position])})"
        for position in chosen
        if int(outcomes[position]) != live[position]
    ]
    if mismatches:
        raise EquivalenceError(
            "vector kernel diverged from live recovery on "
            f"{len(mismatches)}/{len(chosen)} replayed sample(s):\n  "
            + "\n  ".join(mismatches[:10]),
            mismatches=mismatches,
        )
    return {
        "samples": samples,
        "checked": len(chosen),
        "non_corrected_checked": len([i for i in chosen if outcomes[i]]),
        "parity_ways": parity_ways,
        "num_pairs": num_pairs,
        "cache_bytes": cache_bytes,
    }
