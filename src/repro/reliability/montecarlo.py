"""Monte-Carlo cross-validation of the analytical MTTF model.

The Table 3 model rests on one structural claim: CPPC fails on a temporal
double fault only when both upsets land in the *same protection domain* —
the same register pair AND the same interleaved parity group — before the
first is scrubbed.  With ``p`` pairs and ``w`` parity bits the chance that
two uniformly-placed faults collide is ``1 / (p * w)``.

:func:`estimate_double_fault_failure` measures that probability directly:
it builds a dirty CPPC cache, injects two random single-bit faults into
distinct dirty words, triggers recovery, and classifies the outcome.  The
measured failure fraction must track ``1 / (p * w)`` (up to the rare
aliasing/spatial corner cases, which it also reports), validating the
analytical model's core assumption with live machinery instead of algebra.

This is the scalar *reference*; :mod:`repro.reliability.fastmc` is the
vectorized engine that runs the same experiment at field-study sample
counts and cross-checks itself against this machinery per sample.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Dict, Tuple

from ..cppc import CppcProtection
from ..errors import ConfigurationError, UncorrectableError
from ..memsim import Cache, MainMemory
from ..memsim.snapshot import restore_cache, snapshot_cache
from ..util import make_rng


@dataclasses.dataclass
class DoubleFaultEstimate:
    """Outcome histogram of the double-fault experiment."""

    samples: int
    corrected: int = 0
    due: int = 0
    miscorrected: int = 0

    def __post_init__(self):
        # A zero-sample estimate has no rates; fail with a typed error at
        # construction instead of a ZeroDivisionError at first use.
        if self.samples < 1:
            raise ConfigurationError(
                f"a double-fault estimate needs samples >= 1, got {self.samples}"
            )

    @property
    def failure_rate(self) -> float:
        """Fraction of double faults the scheme could not repair."""
        return (self.due + self.miscorrected) / self.samples

    @property
    def sdc_rate(self) -> float:
        """Fraction silently miscorrected (the aliasing hazard)."""
        return self.miscorrected / self.samples

    def failure_rate_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Wilson score interval for :attr:`failure_rate`.

        The Wilson interval stays honest at the extremes this experiment
        lives in — rates near zero (high pair counts) and small sample
        budgets (the fuzzer's scenarios) — where the naive normal
        interval collapses to a zero-width band around 0 or escapes
        ``[0, 1]``.
        """
        if not 0.0 < level < 1.0:
            raise ConfigurationError(f"confidence level must be in (0, 1), got {level}")
        z = statistics.NormalDist().inv_cdf(0.5 + level / 2.0)
        n = self.samples
        p = self.failure_rate
        denominator = 1.0 + z * z / n
        center = (p + z * z / (2.0 * n)) / denominator
        half_width = (z / denominator) * math.sqrt(
            p * (1.0 - p) / n + z * z / (4.0 * n * n)
        )
        return (max(0.0, center - half_width), min(1.0, center + half_width))


def analytical_collision_probability(
    parity_ways: int = 8, num_pairs: int = 1
) -> float:
    """P(two uniform faults share a protection domain) = 1 / (p * w)."""
    if parity_ways < 1 or num_pairs < 1:
        raise ConfigurationError("parity_ways and num_pairs must be >= 1")
    return 1.0 / (parity_ways * num_pairs)


def _empty_cache(num_pairs: int, parity_ways: int, cache_bytes: int) -> Cache:
    """Fresh, pristine experiment cache (the Table 3 geometry)."""
    return Cache(
        "L1D",
        cache_bytes,
        2,
        32,
        unit_bytes=8,
        protection=CppcProtection(
            data_bits=64,
            parity_ways=parity_ways,
            num_pairs=num_pairs,
            byte_shifting=(parity_ways == 8),
        ),
        next_level=MainMemory(block_bytes=32),
    )


def _build_dirty_cache(
    num_pairs: int, parity_ways: int, seed, cache_bytes: int = 8192
) -> Cache:
    cache = _empty_cache(num_pairs, parity_ways, cache_bytes)
    rng = make_rng(seed)
    for addr in range(0, cache_bytes, 8):
        cache.store(addr, rng.getrandbits(64).to_bytes(8, "big"))
    return cache


def estimate_double_fault_failure(
    *,
    samples: int = 200,
    parity_ways: int = 8,
    num_pairs: int = 1,
    seed: int = 0,
    cache_bytes: int = 8192,
) -> DoubleFaultEstimate:
    """Empirical outcome distribution of two concurrent temporal faults.

    Each sample: fresh fully-dirty CPPC cache, two single-bit flips in two
    distinct dirty words, recovery triggered by a load of the first word.
    ``cache_bytes`` scales the dirty cache (the collision probability is
    a property of the code geometry, not the capacity; the fuzzer uses
    small caches to afford many samples).

    The dirty image is built *once* per call and forked per sample via
    :mod:`repro.memsim.snapshot` — the ~1,000 scalar stores that used to
    rebuild an identical geometry every sample were pure overhead.  For
    two single-bit faults in distinct dirty words the recovery outcome is
    a pure function of the fault geometry (the random contents cancel out
    of every XOR in the recovery algebra), so forking one image draws the
    same outcome per sample as rebuilding with a fresh per-sample seed;
    the regression test in ``tests/test_montecarlo.py`` pins this against
    an inline copy of the rebuild-per-sample loop.
    """
    estimate = DoubleFaultEstimate(samples=samples)
    if cache_bytes < 256 or cache_bytes % 64:
        raise ConfigurationError(
            "cache_bytes must be a multiple of 64 and at least 256"
        )
    rng = make_rng((seed, "double-fault"))

    base = _build_dirty_cache(num_pairs, parity_ways, (seed, "base"), cache_bytes)
    golden: Dict = {loc: value for loc, value, _d in base.iter_units()}
    locations = list(golden)
    snap = snapshot_cache(base)

    for _sample in range(samples):
        cache = restore_cache(snap, _empty_cache(num_pairs, parity_ways, cache_bytes))
        loc_a, loc_b = rng.sample(locations, 2)
        cache.corrupt_data(loc_a, 1 << rng.randrange(64))
        cache.corrupt_data(loc_b, 1 << rng.randrange(64))
        try:
            cache.load(cache.address_of(loc_a), 8)
            cache.load(cache.address_of(loc_b), 8)
        except UncorrectableError:
            estimate.due += 1
            continue
        clean = all(cache.peek_unit(loc)[0] == value for loc, value in golden.items())
        if clean:
            estimate.corrected += 1
        else:
            estimate.miscorrected += 1
    return estimate
