"""Monte-Carlo cross-validation of the analytical MTTF model.

The Table 3 model rests on one structural claim: CPPC fails on a temporal
double fault only when both upsets land in the *same protection domain* —
the same register pair AND the same interleaved parity group — before the
first is scrubbed.  With ``p`` pairs and ``w`` parity bits the chance that
two uniformly-placed faults collide is ``1 / (p * w)``.

:func:`estimate_double_fault_failure` measures that probability directly:
it builds a dirty CPPC cache, injects two random single-bit faults into
distinct dirty words, triggers recovery, and classifies the outcome.  The
measured failure fraction must track ``1 / (p * w)`` (up to the rare
aliasing/spatial corner cases, which it also reports), validating the
analytical model's core assumption with live machinery instead of algebra.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..cppc import CppcProtection
from ..errors import ConfigurationError, UncorrectableError
from ..memsim import Cache, MainMemory
from ..util import make_rng


@dataclasses.dataclass
class DoubleFaultEstimate:
    """Outcome histogram of the double-fault experiment."""

    samples: int
    corrected: int = 0
    due: int = 0
    miscorrected: int = 0

    def __post_init__(self):
        # A zero-sample estimate has no rates; fail with a typed error at
        # construction instead of a ZeroDivisionError at first use.
        if self.samples < 1:
            raise ConfigurationError(
                f"a double-fault estimate needs samples >= 1, got {self.samples}"
            )

    @property
    def failure_rate(self) -> float:
        """Fraction of double faults the scheme could not repair."""
        return (self.due + self.miscorrected) / self.samples

    @property
    def sdc_rate(self) -> float:
        """Fraction silently miscorrected (the aliasing hazard)."""
        return self.miscorrected / self.samples


def analytical_collision_probability(
    parity_ways: int = 8, num_pairs: int = 1
) -> float:
    """P(two uniform faults share a protection domain) = 1 / (p * w)."""
    if parity_ways < 1 or num_pairs < 1:
        raise ConfigurationError("parity_ways and num_pairs must be >= 1")
    return 1.0 / (parity_ways * num_pairs)


def _build_dirty_cache(
    num_pairs: int, parity_ways: int, seed, cache_bytes: int = 8192
) -> Cache:
    memory = MainMemory(block_bytes=32)
    cache = Cache(
        "L1D", cache_bytes, 2, 32, unit_bytes=8,
        protection=CppcProtection(
            data_bits=64, parity_ways=parity_ways, num_pairs=num_pairs,
            byte_shifting=(parity_ways == 8),
        ),
        next_level=memory,
    )
    rng = make_rng(seed)
    for addr in range(0, cache_bytes, 8):
        cache.store(addr, rng.getrandbits(64).to_bytes(8, "big"))
    return cache


def estimate_double_fault_failure(
    *,
    samples: int = 200,
    parity_ways: int = 8,
    num_pairs: int = 1,
    seed: int = 0,
    cache_bytes: int = 8192,
) -> DoubleFaultEstimate:
    """Empirical outcome distribution of two concurrent temporal faults.

    Each sample: fresh fully-dirty CPPC cache, two single-bit flips in two
    distinct dirty words, recovery triggered by a load of the first word.
    ``cache_bytes`` scales the dirty cache (the collision probability is
    a property of the code geometry, not the capacity; the fuzzer uses
    small caches to afford many samples).
    """
    if samples < 1:
        raise ConfigurationError("samples must be >= 1")
    if cache_bytes < 256 or cache_bytes % 64:
        raise ConfigurationError(
            "cache_bytes must be a multiple of 64 and at least 256"
        )
    estimate = DoubleFaultEstimate(samples=samples)
    rng = make_rng((seed, "double-fault"))

    for sample in range(samples):
        cache = _build_dirty_cache(
            num_pairs, parity_ways, (seed, sample), cache_bytes
        )
        golden: Dict = {
            loc: value for loc, value, _d in cache.iter_units()
        }
        locations = list(golden)
        loc_a, loc_b = rng.sample(locations, 2)
        cache.corrupt_data(loc_a, 1 << rng.randrange(64))
        cache.corrupt_data(loc_b, 1 << rng.randrange(64))
        try:
            cache.load(cache.address_of(loc_a), 8)
            cache.load(cache.address_of(loc_b), 8)
        except UncorrectableError:
            estimate.due += 1
            continue
        clean = all(
            cache.peek_unit(loc)[0] == value for loc, value in golden.items()
        )
        if clean:
            estimate.corrected += 1
        else:
            estimate.miscorrected += 1
    return estimate
