"""Analytical MTTF models for temporal multi-bit errors (paper Section 6.3).

The paper evaluates reliability with the approximate analytical model of
[22] (PARMA): a protected cache fails when a *second* fault lands in the
same protection domain within ``Tavg`` — the mean interval between two
consecutive accesses to a dirty word — because the first latent fault is
scrubbed (detected and corrected) at the next access.

For a fault rate ``lambda`` per bit-hour, a domain of ``S`` bits and an
interval of ``T`` hours, the probability of an uncorrectable double fault
in one interval is the two-event Poisson term ``(lambda*S*T)^2 / 2``; with
``n`` independent domains, the expected number of intervals to failure is
``1 / (n * P)`` and ``MTTF = Tavg * 1/(n*P) * 1/AVF``.

Protection domains per scheme (for ``D`` dirty bits):

* one-dimensional parity — no correction: a failure is the *first* fault
  in dirty data, ``MTTF = 1 / (lambda * D * AVF)``;
* CPPC with ``w`` interleaved parity bits and ``p`` register pairs —
  ``n = w*p`` domains of ``S = D/(w*p)`` bits (Section 3.4: eight parity
  bits make eight domains of 1/8 of the dirty data);
* SECDED — one domain per protected unit: ``S`` is the word (L1) or block
  (L2) size, ``n = D / S``.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ConfigurationError
from ..util import (
    cycles_to_hours,
    fit_per_bit_to_rate_per_hour,
    hours_to_years,
)


@dataclasses.dataclass(frozen=True)
class ReliabilityInputs:
    """Workload- and technology-dependent inputs of the MTTF models.

    Attributes:
        size_bits: cache data capacity in bits.
        dirty_fraction: time-averaged dirty fraction (paper Table 2).
        tavg_cycles: mean cycles between consecutive accesses to a dirty
            unit (paper Table 2).
        frequency_hz: core clock (paper Table 1: 3 GHz).
        seu_fit_per_bit: raw upset rate (paper Section 6.3: 0.001 FIT/bit).
        avf: architectural vulnerability factor (paper: 0.7).
    """

    size_bits: int
    dirty_fraction: float
    tavg_cycles: float
    frequency_hz: float = 3.0e9
    seu_fit_per_bit: float = 0.001
    avf: float = 0.7

    def __post_init__(self):
        if self.size_bits < 1:
            raise ConfigurationError("size_bits must be positive")
        if not 0.0 < self.dirty_fraction <= 1.0:
            raise ConfigurationError("dirty_fraction must be in (0, 1]")
        if self.tavg_cycles <= 0:
            raise ConfigurationError("tavg_cycles must be positive")
        if not 0.0 < self.avf <= 1.0:
            raise ConfigurationError("avf must be in (0, 1]")

    @property
    def dirty_bits(self) -> float:
        """Average number of dirty bits."""
        return self.size_bits * self.dirty_fraction

    @property
    def tavg_hours(self) -> float:
        """Tavg converted to hours."""
        return cycles_to_hours(self.tavg_cycles, self.frequency_hz)

    @property
    def rate_per_bit_hour(self) -> float:
        """Per-bit upset rate per hour."""
        return fit_per_bit_to_rate_per_hour(self.seu_fit_per_bit)


def _two_fault_probability(domain_bits: float, tavg_hours: float, rate: float) -> float:
    """Poisson two-event probability in one scrubbing interval."""
    expected = rate * domain_bits * tavg_hours
    return expected * expected / 2.0


def mttf_parity_years(inputs: ReliabilityInputs) -> float:
    """MTTF of a detection-only parity cache: first dirty fault is fatal."""
    rate = inputs.rate_per_bit_hour * inputs.dirty_bits
    if rate <= 0:
        return math.inf
    return hours_to_years(1.0 / rate / inputs.avf)


def mttf_domain_pair_years(
    inputs: ReliabilityInputs, domain_bits: float, num_domains: float
) -> float:
    """MTTF of a scheme that fails on two faults in one domain per Tavg."""
    if domain_bits <= 0 or num_domains <= 0:
        raise ConfigurationError("domain size and count must be positive")
    p = _two_fault_probability(domain_bits, inputs.tavg_hours, inputs.rate_per_bit_hour)
    if p <= 0:
        return math.inf
    failure_intervals = 1.0 / (num_domains * p)
    return hours_to_years(inputs.tavg_hours * failure_intervals / inputs.avf)


def mttf_cppc_years(
    inputs: ReliabilityInputs, *, parity_ways: int = 8, num_pairs: int = 1
) -> float:
    """MTTF of a CPPC (Section 3.4's domain structure)."""
    if parity_ways < 1 or num_pairs < 1:
        raise ConfigurationError("parity_ways and num_pairs must be >= 1")
    n = parity_ways * num_pairs
    return mttf_domain_pair_years(inputs, inputs.dirty_bits / n, n)


def mttf_secded_years(inputs: ReliabilityInputs, unit_bits: int) -> float:
    """MTTF of per-unit SECDED (word for L1, block for L2)."""
    if unit_bits < 1:
        raise ConfigurationError("unit_bits must be positive")
    num_units = inputs.dirty_bits / unit_bits
    return mttf_domain_pair_years(inputs, float(unit_bits), num_units)
