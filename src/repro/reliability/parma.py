"""Distribution-aware MTTF evaluation (the PARMA refinement, ref [22]).

The Table 3 model summarises a benchmark's dirty-word access behaviour by
one number, the mean interval ``Tavg``.  The two-fault failure probability
is quadratic in the interval length, so for heavy-tailed interval
distributions the mean *underestimates* vulnerability: one interval of
1M cycles is a million times more dangerous than a thousand intervals of
1k cycles, not equally dangerous.

The PARMA-style evaluation here integrates the same two-fault model over
the *measured interval histogram* a simulation produced
(:attr:`repro.memsim.CacheStats.dirty_interval_histogram`):

    failure rate = sum over intervals i of  P2(domain, T_i) / T_i

with ``P2`` the two-event Poisson term per domain, which the mean-based
model approximates by evaluating at ``T = Tavg`` only.  Both agree exactly
for constant intervals (a property test) and diverge as the tail grows.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..memsim.stats import CacheStats
from ..util import cycles_to_hours, hours_to_years
from .mttf import ReliabilityInputs


def mttf_cppc_from_histogram(
    inputs: ReliabilityInputs,
    stats: CacheStats,
    *,
    parity_ways: int = 8,
    num_pairs: int = 1,
) -> float:
    """CPPC MTTF integrating the measured dirty-interval distribution.

    ``inputs.tavg_cycles`` is ignored; the distribution in
    ``stats.dirty_interval_histogram`` drives the exposure windows.
    """
    buckets = list(stats.interval_buckets())
    if not buckets:
        raise ConfigurationError(
            "no dirty-interval samples: run a simulation first"
        )
    n_domains = parity_ways * num_pairs
    domain_bits = inputs.dirty_bits / n_domains
    rate = inputs.rate_per_bit_hour

    total_cycles = sum(t * count for t, count in buckets)
    failure_events = 0.0
    for t_cycles, count in buckets:
        t_hours = cycles_to_hours(t_cycles, inputs.frequency_hz)
        expected = rate * domain_bits * t_hours
        p2 = expected * expected / 2.0
        failure_events += count * n_domains * p2
    if failure_events <= 0:
        return math.inf
    total_hours = cycles_to_hours(total_cycles, inputs.frequency_hz)
    failure_rate_per_hour = failure_events / total_hours
    return hours_to_years(1.0 / failure_rate_per_hour / inputs.avf)


def tail_amplification(stats: CacheStats) -> float:
    """How much the interval tail amplifies vulnerability vs the mean.

    Ratio of the histogram-weighted mean *squared* interval to the square
    of the mean interval (= 1.0 for constant intervals; grows with the
    tail).  The mean-based Table 3 model underestimates the failure rate
    by exactly this factor.
    """
    buckets = list(stats.interval_buckets())
    if not buckets:
        raise ConfigurationError("no dirty-interval samples")
    count = sum(c for _t, c in buckets)
    mean = sum(t * c for t, c in buckets) / count
    mean_square = sum(t * t * c for t, c in buckets) / count
    return mean_square / (mean * mean)
