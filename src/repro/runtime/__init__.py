"""Fault-tolerant execution layer for trial-based sweeps.

Campaign drivers hand their trials to this package instead of looping
in-process: each trial runs in a ``spawn``-context worker subprocess
with a wall-clock timeout (:class:`TrialExecutor`), crashed or wedged
trials are retried with deterministic backoff (:class:`RetryPolicy`),
finished trials are durably checkpointed (:class:`CheckpointStore`), and
an interrupted campaign resumes bit-identically
(:func:`run_campaign` + :class:`CampaignRuntime`).

The robustness layer rides on top: :class:`ChaosPlan` injects seeded,
deterministic runtime faults (worker kills, wedges, delays, checkpoint
I/O errors) so the recovery machinery is exercised on purpose;
:class:`~repro.runtime.health.HeartbeatMonitor` and
:class:`~repro.runtime.health.AdaptiveTimeout` provide liveness and
learned deadlines; ``quarantine=True`` converts a poison trial's retry
exhaustion into a :class:`~repro.errors.TrialQuarantinedError` plus a
structured :class:`~repro.runtime.health.DegradationReport` instead of
a failed run.
"""

from .campaign import (
    CampaignRuntime,
    failure_from_payload,
    failure_payload,
    result_from_payload,
    result_payload,
    run_campaign,
)
from .chaos import CHAOS_KINDS, SURVIVABLE_KINDS, ChaosOp, ChaosPlan
from .checkpoint import CheckpointRecord, CheckpointStore, campaign_digest
from .executor import TaskReport, TrialExecutor, TrialTask
from .health import (
    AdaptiveTimeout,
    DegradationReport,
    ExecutorHealth,
    HeartbeatMonitor,
    export_degradation_metrics,
)
from .retry import RetryPolicy

__all__ = [
    "AdaptiveTimeout",
    "CHAOS_KINDS",
    "CampaignRuntime",
    "ChaosOp",
    "ChaosPlan",
    "CheckpointRecord",
    "CheckpointStore",
    "DegradationReport",
    "ExecutorHealth",
    "HeartbeatMonitor",
    "RetryPolicy",
    "SURVIVABLE_KINDS",
    "TaskReport",
    "TrialExecutor",
    "TrialTask",
    "campaign_digest",
    "export_degradation_metrics",
    "failure_from_payload",
    "failure_payload",
    "result_from_payload",
    "result_payload",
    "run_campaign",
]
