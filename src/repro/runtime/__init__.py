"""Fault-tolerant execution layer for trial-based sweeps.

Campaign drivers hand their trials to this package instead of looping
in-process: each trial runs in a ``spawn``-context worker subprocess
with a wall-clock timeout (:class:`TrialExecutor`), crashed or wedged
trials are retried with deterministic backoff (:class:`RetryPolicy`),
finished trials are durably checkpointed (:class:`CheckpointStore`), and
an interrupted campaign resumes bit-identically
(:func:`run_campaign` + :class:`CampaignRuntime`).
"""

from .campaign import (
    CampaignRuntime,
    failure_from_payload,
    failure_payload,
    result_from_payload,
    result_payload,
    run_campaign,
)
from .checkpoint import CheckpointRecord, CheckpointStore, campaign_digest
from .executor import TaskReport, TrialExecutor, TrialTask
from .retry import RetryPolicy

__all__ = [
    "CampaignRuntime",
    "CheckpointRecord",
    "CheckpointStore",
    "RetryPolicy",
    "TaskReport",
    "TrialExecutor",
    "TrialTask",
    "campaign_digest",
    "failure_from_payload",
    "failure_payload",
    "result_from_payload",
    "result_payload",
    "run_campaign",
]
