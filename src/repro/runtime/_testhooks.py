"""Pathological worker tasks used by the runtime's own tests and smokes.

Test modules are not importable inside ``spawn`` workers (they are not
on the child's ``sys.path``), so the misbehaving task functions the
executor tests need — hangs, crashes, self-kills — live here, inside the
package, where any worker can unpickle them.  Nothing in the library
calls these.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path


def echo(value):
    """Return ``value`` unchanged (happy-path task)."""
    return value


def slow_echo(value, delay_s: float):
    """Return ``value`` after sleeping ``delay_s`` seconds."""
    time.sleep(delay_s)
    return value


def hang(seconds: float = 3600.0) -> None:
    """Wedge the worker: sleep far longer than any sane trial timeout."""
    time.sleep(seconds)


def crash(message: str = "synthetic crash"):
    """Raise a plain exception inside the worker."""
    raise ValueError(message)


def kill_self() -> None:
    """Die the way a SIGKILLed or segfaulting worker does."""
    os.kill(os.getpid(), signal.SIGKILL)


def stop_self() -> None:
    """Freeze the worker with SIGSTOP (a hung-but-alive process).

    Unlike :func:`hang`, the process stops *executing entirely* — its
    heartbeat thread freezes with it, which is exactly the failure mode
    wall-clock timeouts cannot distinguish from slow work but a
    :class:`~repro.runtime.health.HeartbeatMonitor` can.
    """
    os.kill(os.getpid(), signal.SIGSTOP)


def slow_once(marker_dir: str, delay_s: float, value=None):
    """Sleep ``delay_s`` on the first call only (per marker directory).

    Used to make a *preload* blow the lane warmup timeout exactly once:
    the rebuilt lane's re-shipped preload returns instantly.
    """
    directory = Path(marker_dir)
    directory.mkdir(parents=True, exist_ok=True)
    marker = directory / "slow-once"
    if not marker.exists():
        marker.touch()
        time.sleep(delay_s)
    return value


def flaky(marker_dir: str, succeed_on_attempt: int, value):
    """Fail (by crashing the process) until attempt ``succeed_on_attempt``.

    Attempts are counted with marker files under ``marker_dir`` so the
    count survives worker replacement.
    """
    directory = Path(marker_dir)
    directory.mkdir(parents=True, exist_ok=True)
    attempt = len(list(directory.glob("attempt-*"))) + 1
    (directory / f"attempt-{attempt}").touch()
    if attempt < succeed_on_attempt:
        os.kill(os.getpid(), signal.SIGKILL)
    return value
