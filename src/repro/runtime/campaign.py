"""Fault-tolerant, resumable execution of fault-injection campaigns.

:func:`run_campaign` is the runtime-backed counterpart of the sequential
loop in :meth:`repro.faults.campaign.FaultCampaign.run`: trials execute
in worker subprocesses with timeouts and retries, every finished trial
is durably checkpointed, and a ``--resume`` after a crash or SIGKILL
skips completed trials yet produces a bit-identical
:class:`~repro.faults.campaign.CampaignResult` — per-trial seeds are
pure functions of ``(campaign seed, trial index)``
(:func:`repro.util.rng.split_seed`), never shared RNG state, so outcomes
do not depend on scheduling, ordering, or interruption.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import (
    CheckpointCorruptError,
    ConfigurationError,
    TrialQuarantinedError,
)
from ..faults.campaign import (
    CampaignConfig,
    CampaignResult,
    Outcome,
    TrialFailure,
    TrialResult,
)
from . import worker as _worker
from .chaos import ChaosPlan
from .checkpoint import CheckpointRecord, CheckpointStore, campaign_digest
from .executor import TaskReport, TrialExecutor, TrialTask, _error_kind
from .health import AdaptiveTimeout, DegradationReport
from .retry import RetryPolicy


class CampaignRuntime:
    """Bundle of execution policy: workers, timeout, retry, checkpoints.

    One runtime can serve many campaigns (its worker lanes are reused),
    which is how multi-cell sweeps such as
    :func:`repro.harness.resilience.resilience_matrix` amortize worker
    startup.  Checkpoints nest under ``checkpoint_dir`` by config digest,
    so one directory safely holds a whole sweep.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_dir: Union[str, Path, None] = None,
        resume: bool = False,
        executor: Optional[TrialExecutor] = None,
        chaos: Optional[ChaosPlan] = None,
        heartbeat_timeout_s: Optional[float] = None,
        adaptive_timeout: bool = False,
        quarantine: bool = False,
    ):
        if resume and checkpoint_dir is None:
            raise ConfigurationError(
                "resume requires a checkpoint directory"
            )
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.chaos = chaos
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.adaptive_timeout = adaptive_timeout
        self.quarantine = quarantine
        self._executor = executor

    @property
    def resilience_active(self) -> bool:
        """True when any chaos/health feature is switched on."""
        return (
            self.chaos is not None
            or self.heartbeat_timeout_s is not None
            or self.adaptive_timeout
            or self.quarantine
        )

    def executor(self) -> TrialExecutor:
        """The lazily created, reusable worker-lane executor."""
        if self._executor is None:
            self._executor = TrialExecutor(
                jobs=self.jobs,
                timeout_s=self.timeout_s,
                retry=self.retry,
                chaos=self.chaos,
                heartbeat_timeout_s=self.heartbeat_timeout_s,
                adaptive=AdaptiveTimeout() if self.adaptive_timeout else None,
                quarantine=self.quarantine,
            )
        return self._executor

    def map(self, fn, argses, *, seed=0):
        """Run a generic sweep (see :meth:`TrialExecutor.map`)."""
        return self.executor().map(fn, argses, seed=seed)

    def close(self) -> None:
        """Shut down worker lanes."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "CampaignRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Trial (de)serialization for checkpoint payloads
# ----------------------------------------------------------------------
def result_payload(result: TrialResult) -> dict:
    """JSON-safe view of one completed trial."""
    return {
        "outcome": result.outcome.value,
        "injected_bits": result.injected_bits,
        "touched_units": result.touched_units,
        "detail": result.detail,
    }


def result_from_payload(payload: dict) -> TrialResult:
    """Rebuild a :class:`TrialResult` from its checkpoint payload."""
    return TrialResult(
        outcome=Outcome(payload["outcome"]),
        injected_bits=payload["injected_bits"],
        touched_units=payload["touched_units"],
        detail=payload["detail"],
    )


def failure_payload(failure: TrialFailure) -> dict:
    """JSON-safe view of one abandoned trial."""
    return {
        "kind": failure.kind,
        "attempts": failure.attempts,
        "message": failure.message,
    }


def failure_from_payload(
    trial_index: int, seed: int, payload: dict
) -> TrialFailure:
    """Rebuild a :class:`TrialFailure` from its checkpoint payload."""
    return TrialFailure(
        trial_index=trial_index,
        seed=seed,
        kind=payload["kind"],
        attempts=payload["attempts"],
        message=payload["message"],
    )


def _failure_from_report(report: TaskReport) -> TrialFailure:
    return TrialFailure(
        trial_index=report.index,
        seed=report.seed,
        kind=_error_kind(report.error),
        attempts=report.attempts,
        message=str(report.error),
    )


# ----------------------------------------------------------------------
def run_campaign(
    config: CampaignConfig,
    runtime: CampaignRuntime,
    *,
    obs=None,
    fast: bool = False,
    fast_equivalence: str = "never",
) -> CampaignResult:
    """Run (or resume) one campaign under a :class:`CampaignRuntime`.

    Completed trials land in ``CampaignResult.trials`` in trial order;
    trials the retry policy gave up on land in ``.failures``.  With a
    checkpoint directory every finished trial is durable before the next
    is scheduled on that lane, so an interruption loses at most in-flight
    work.

    The per-trial payload is deduplicated: the campaign config (plus, on
    the ``fast`` path, its warm snapshot — see
    :mod:`repro.faults.warmstate`) is pickled once, shipped to each
    worker lane once via an executor preload, and cached worker-side by
    content digest; tasks carry only ``(digest, trial_index)``.  ``fast``
    requires ``config.shared_warmup`` and produces bit-identical
    per-trial results (``fast_equivalence="always"`` re-runs the legacy
    path per trial and raises on any divergence).

    ``obs`` (a :class:`repro.obs.TraceSink`) receives one outcome event
    per finished trial.  Trials execute in worker subprocesses, so —
    unlike the sequential path — per-access events are not available
    here, only the parent-side classification stream.
    """
    if obs is not None and not obs.enabled:
        obs = None
    if fast and not config.shared_warmup:
        raise ConfigurationError(
            "the snapshot-fork fast path requires shared_warmup=True"
        )
    digest = campaign_digest(config)
    store: Optional[CheckpointStore] = None
    recorded: Dict[int, CheckpointRecord] = {}
    if runtime.checkpoint_dir is not None:
        store = CheckpointStore(
            runtime.checkpoint_dir / digest[:16],
            config_digest=digest,
            resume=runtime.resume,
            io_fault_hook=(
                runtime.chaos.io_fault_hook()
                if runtime.chaos is not None
                else None
            ),
        )
        if runtime.resume:
            recorded = store.load()
            _validate_records(config, recorded)

    pending = [i for i in range(config.trials) if i not in recorded]

    if fast:
        from ..faults.warmstate import warm_state_for

        payload = (config, warm_state_for(config)) if pending else None
        trial_fn = _worker.run_fast_campaign_trial
        extra_args = (fast_equivalence,)
    else:
        payload = config if pending else None
        trial_fn = _worker.run_campaign_trial_cached
        extra_args = ()

    preload_token = None
    if payload is not None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        payload_digest = hashlib.sha256(blob).hexdigest()
        preload_token = runtime.executor().add_preload(
            _worker.seed_campaign_payload, payload_digest, blob
        )
        tasks = [
            TrialTask(
                index=i,
                seed=config.trial_seed(i),
                fn=trial_fn,
                args=(payload_digest, i) + extra_args,
            )
            for i in pending
        ]
    else:
        tasks = []

    def checkpoint(report: TaskReport) -> None:
        if obs is not None:
            if report.ok:
                obs.emit(
                    "campaign",
                    "trial",
                    {
                        "trial": report.index,
                        "outcome": report.value.outcome.value,
                        "injected_bits": report.value.injected_bits,
                        "attempts": report.attempts,
                    },
                )
            else:
                obs.emit(
                    "campaign",
                    "trial-failed",
                    {
                        "trial": report.index,
                        "attempts": report.attempts,
                        "error": str(report.error),
                    },
                )
        if store is None:
            return
        if report.ok:
            store.record(
                report.index, report.seed, "result",
                result_payload(report.value),
            )
        else:
            store.record(
                report.index, report.seed, "failure",
                failure_payload(_failure_from_report(report)),
            )

    try:
        reports = (
            runtime.executor().run(tasks, on_report=checkpoint)
            if tasks
            else []
        )
    finally:
        if preload_token is not None:
            runtime.executor().remove_preload(preload_token)
        if store is not None:
            store.close()

    by_index: Dict[int, TaskReport] = {r.index: r for r in reports}
    result = CampaignResult(config=config)
    for trial in range(config.trials):
        if trial in recorded:
            record = recorded[trial]
            if record.kind == "result":
                result.trials.append(result_from_payload(record.payload))
            else:
                result.failures.append(
                    failure_from_payload(trial, record.seed, record.payload)
                )
        elif trial in by_index:
            report = by_index[trial]
            if report.ok:
                result.trials.append(report.value)
            else:
                result.failures.append(_failure_from_report(report))
    if runtime.resilience_active:
        result.degradation = _degradation_snapshot(
            runtime, store, reports, result
        )
    return result


def _degradation_snapshot(
    runtime: CampaignRuntime,
    store: Optional[CheckpointStore],
    reports,
    result: CampaignResult,
) -> dict:
    """Assemble the structured degradation report for one campaign."""
    degradation = DegradationReport(
        executor=(
            runtime._executor.health.snapshot()
            if runtime._executor is not None
            else {}
        ),
        chaos=runtime.chaos.describe() if runtime.chaos is not None else None,
        checkpoint_io_retries=store.io_retries if store is not None else 0,
        checkpoint_torn_tail_dropped=(
            store.torn_tail_dropped if store is not None else 0
        ),
    )
    for report in reports:
        if isinstance(report.error, TrialQuarantinedError):
            degradation.quarantined.append(
                {
                    "trial": report.index,
                    "seed": report.seed,
                    "attempts": report.error.attempts,
                    "cause": report.error.cause_kind,
                    "message": str(report.error),
                }
            )
    # Quarantines recorded by an interrupted (now resumed) run count too.
    for failure in result.failures:
        if failure.kind == "quarantined" and not any(
            entry["trial"] == failure.trial_index
            for entry in degradation.quarantined
        ):
            degradation.quarantined.append(
                {
                    "trial": failure.trial_index,
                    "seed": failure.seed,
                    "attempts": failure.attempts,
                    "cause": None,
                    "message": failure.message,
                }
            )
    degradation.quarantined.sort(key=lambda entry: entry["trial"])
    return degradation.snapshot()


def _validate_records(
    config: CampaignConfig, recorded: Dict[int, CheckpointRecord]
) -> None:
    for trial, record in recorded.items():
        if not isinstance(trial, int) or not 0 <= trial < config.trials:
            raise CheckpointCorruptError(
                f"checkpoint names trial {trial!r} outside the campaign's "
                f"{config.trials} trials"
            )
        expected = config.trial_seed(trial)
        if record.seed != expected:
            raise CheckpointCorruptError(
                f"trial {trial} was recorded with seed {record.seed}, but "
                f"this campaign derives {expected}; refusing to mix runs"
            )


