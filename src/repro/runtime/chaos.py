"""Seeded, deterministic chaos injection for the campaign runtime.

The fault campaigns inject faults into *simulated caches*; this module
injects faults into the *runtime that runs them* — worker deaths, wedged
lanes, slow trials, and checkpoint I/O errors — so the recovery
machinery (retries, lane rebuilds, heartbeats, self-healing appends) is
exercised deliberately instead of only by rare production accidents.

A :class:`ChaosPlan` is regenerable the same way the fuzzer's scenarios
are: the op for trial ``i`` is a pure function of
``(plan seed, "chaos", i)`` via :func:`repro.util.rng.split_seed`, so
any trial's fault can be re-derived in isolation, in any process, from
the plan parameters alone — a chaotic campaign reproduces exactly.

Fault kinds (:data:`CHAOS_KINDS`):

* ``kill`` — the worker SIGKILLs itself at trial start (a crashed lane).
* ``wedge`` — the worker sleeps ``wedge_s`` before the trial, long
  enough to blow any sane per-trial deadline (a hung lane).
* ``delay`` — the worker sleeps a small seeded jitter first (a slow
  trial, there to stress adaptive deadlines without failing anything).
* ``enospc`` / ``fsync`` / ``torn`` — the trial's checkpoint append
  fails with an injected I/O error (see
  :class:`repro.util.jsonio.JsonlAppender`).

Worker faults fire on attempt 1 only, so any retry policy with at least
two attempts makes every worker fault *survivable*: the chaos-equivalence
contract (chaotic run bit-identical to the clean run) holds because
per-trial results are pure functions of seeds, never of attempt count.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..util.jsonio import IO_FAULT_KINDS
from ..util.rng import make_rng, split_seed

#: Faults applied inside the worker, at trial start.
WORKER_FAULT_KINDS = ("kill", "wedge", "delay")

#: Faults applied to the trial's checkpoint append, driver-side.
#: (Same spellings as :data:`repro.util.jsonio.IO_FAULT_KINDS`.)
IO_CHAOS_KINDS = IO_FAULT_KINDS

CHAOS_KINDS = WORKER_FAULT_KINDS + IO_CHAOS_KINDS

#: Kinds a retry policy alone survives bit-identically (no deadline or
#: checkpoint needed) — what the crosscheck oracle samples from.
SURVIVABLE_KINDS = ("kill", "delay")


@dataclasses.dataclass(frozen=True)
class ChaosOp:
    """One injected runtime fault, pinned to a trial and attempt.

    Attributes:
        kind: one of :data:`CHAOS_KINDS`.
        trial_index: the trial this op targets.
        attempt: the attempt (1-based) the fault fires on.  Plans
            generate ``attempt=1`` so retries always clear the fault.
        delay_s: sleep length for ``wedge``/``delay`` ops.
    """

    kind: str
    trial_index: int
    attempt: int = 1
    delay_s: float = 0.0


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """Deterministic per-trial fault schedule.

    Args:
        seed: base seed; trial ``i``'s op derives from
            ``split_seed(seed, "chaos", i)`` only.
        kinds: fault kinds to sample from (default: all of
            :data:`CHAOS_KINDS`).
        rate: probability a given trial receives an op.
        wedge_s: sleep injected by ``wedge`` ops (must exceed the
            per-trial deadline to actually wedge).
        max_delay_s: upper bound of the jitter ``delay`` ops inject.
    """

    seed: int = 0
    kinds: Tuple[str, ...] = CHAOS_KINDS
    rate: float = 0.25
    wedge_s: float = 30.0
    max_delay_s: float = 0.05

    def __post_init__(self):
        if not self.kinds:
            raise ConfigurationError("a chaos plan needs at least one kind")
        for kind in self.kinds:
            if kind not in CHAOS_KINDS:
                raise ConfigurationError(
                    f"unknown chaos kind {kind!r}; expected one of "
                    f"{CHAOS_KINDS}"
                )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"chaos rate must be within [0, 1], got {self.rate!r}"
            )
        if self.wedge_s <= 0 or self.max_delay_s < 0:
            raise ConfigurationError("chaos delays must be positive")

    @classmethod
    def from_spec(
        cls, spec: str, *, seed: int = 0, rate: float = 0.25, **kwargs
    ) -> "ChaosPlan":
        """Build a plan from a CLI spec: ``"all"`` or ``"kill,delay"``."""
        text = (spec or "").strip().lower()
        if text in ("", "all"):
            kinds: Tuple[str, ...] = CHAOS_KINDS
        else:
            kinds = tuple(
                part.strip() for part in text.split(",") if part.strip()
            )
        return cls(seed=seed, kinds=kinds, rate=rate, **kwargs)

    # ------------------------------------------------------------------
    def op_for(self, trial_index: int) -> Optional[ChaosOp]:
        """The op injected into ``trial_index`` (None = left alone).

        Pure: depends only on the plan parameters and the index, so the
        driver, a test, and a postmortem all derive the same answer.
        """
        rng = make_rng(split_seed(self.seed, "chaos", trial_index))
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        delay_s = 0.0
        if kind == "wedge":
            delay_s = self.wedge_s
        elif kind == "delay":
            delay_s = round(rng.uniform(0.0, self.max_delay_s), 6)
        return ChaosOp(kind=kind, trial_index=trial_index, delay_s=delay_s)

    def worker_op_for(self, trial_index: int) -> Optional[ChaosOp]:
        """The op for ``trial_index`` if it is a worker fault."""
        op = self.op_for(trial_index)
        if op is not None and op.kind in WORKER_FAULT_KINDS:
            return op
        return None

    def io_fault_hook(self) -> Callable[[int], Optional[str]]:
        """A per-trial checkpoint-fault source for the store.

        Returns a closure mapping ``trial_index`` to a one-shot I/O
        fault kind (or None).  One-shot: the self-healed retry inside
        :class:`~repro.util.jsonio.JsonlAppender` must not re-fail, and
        a re-recorded trial (retry after a driver hiccup) is spared.
        """
        fired: Set[int] = set()

        def hook(trial_index: int) -> Optional[str]:
            op = self.op_for(trial_index)
            if op is None or op.kind not in IO_CHAOS_KINDS:
                return None
            if trial_index in fired:
                return None
            fired.add(trial_index)
            return op.kind

        return hook

    # ------------------------------------------------------------------
    def ops(self, trials: int) -> Sequence[ChaosOp]:
        """Every op the plan schedules for a ``trials``-long campaign."""
        out = []
        for index in range(trials):
            op = self.op_for(index)
            if op is not None:
                out.append(op)
        return out

    def describe(self) -> dict:
        """JSON-safe view for summaries and degradation reports."""
        return {
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rate": self.rate,
            "wedge_s": self.wedge_s,
            "max_delay_s": self.max_delay_s,
        }
