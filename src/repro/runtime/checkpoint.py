"""Crash-safe campaign checkpoints: append-only JSONL plus a manifest.

Layout of one checkpoint directory (one campaign configuration)::

    <dir>/MANIFEST.json   # written once, atomically (tmp + os.replace)
    <dir>/trials.jsonl    # one fsync'd record per finished trial

Every record carries the ``(config_digest, trial_index, seed)`` identity
of its trial plus a content checksum.  A SIGKILL can tear at most the
final record (appends are flushed and fsync'd in order), so ``load``
silently drops a torn *tail* line but treats corruption anywhere earlier
— or a manifest that does not match the campaign being resumed — as
:class:`~repro.errors.CheckpointCorruptError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import warnings
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import (
    CheckpointCorruptError,
    CheckpointWarning,
    ConfigurationError,
)
from ..util.jsonio import JsonlAppender, canonical_json, line_checksum

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
LOG_NAME = "trials.jsonl"


# The canonical-JSON + checksum line discipline lives in repro.util so
# trace sinks (repro.obs.sinks) share it without importing this package.
_canonical = canonical_json
_checksum = line_checksum


def _factory_token(factory) -> str:
    """Stable identity of a scheme factory for digest purposes."""
    qualname = getattr(factory, "__qualname__", None)
    if qualname is not None:
        return f"{getattr(factory, '__module__', '?')}.{qualname}"
    return repr(factory)


def campaign_digest(config) -> str:
    """Stable hex digest identifying one :class:`CampaignConfig`.

    Two processes building the same campaign must agree on this digest,
    so it hashes a canonical JSON view of the config — with the scheme
    factory reduced to its stable repr/qualified name — rather than any
    pickle bytes.
    """
    view = {
        "scheme": _factory_token(config.scheme_factory),
        "benchmark": config.benchmark,
        "trials": config.trials,
        "warmup_references": config.warmup_references,
        "post_fault_references": config.post_fault_references,
        "fault_kind": config.fault_kind,
        "spatial_shape": list(config.spatial_shape),
        "dirty_only": config.dirty_only,
        "target_level": config.target_level,
        "seed": repr(config.seed),
    }
    # Only stamped when set, so digests of pre-existing campaigns (and
    # their resumable checkpoints) are unchanged.
    if config.shared_warmup:
        view["shared_warmup"] = True
    return hashlib.sha256(_canonical(view).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CheckpointRecord:
    """One durably recorded trial."""

    trial_index: int
    seed: int
    kind: str  # "result" or "failure"
    payload: dict


class CheckpointStore:
    """Append-only, fsync'd store of finished trials for one campaign."""

    def __init__(
        self,
        directory,
        *,
        config_digest: str,
        resume: bool = False,
        io_fault_hook: Optional[Callable[[int], Optional[str]]] = None,
    ):
        self.directory = Path(directory)
        self.config_digest = config_digest
        self._lock = threading.Lock()
        self._log: Optional[JsonlAppender] = None
        # Chaos harness hook: maps a trial index to a one-shot injected
        # I/O fault kind (see repro.runtime.chaos.ChaosPlan.io_fault_hook).
        self._io_fault_hook = io_fault_hook
        self._io_retries_closed = 0
        self.torn_tail_dropped = 0
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            if not resume:
                raise ConfigurationError(
                    f"checkpoint {self.directory} already exists; pass "
                    "resume=True (--resume) to continue it or point at a "
                    "fresh directory"
                )
            self._verify_manifest(manifest_path)
        else:
            if resume and self.directory.exists() and any(
                self.directory.iterdir()
            ):
                raise CheckpointCorruptError(
                    f"checkpoint {self.directory} has no manifest but is "
                    "not empty"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            self._write_manifest(manifest_path)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _manifest_view(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "config_digest": self.config_digest,
            "log": LOG_NAME,
        }

    def _write_manifest(self, path: Path) -> None:
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(self._manifest_view()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_directory()

    def _verify_manifest(self, path: Path) -> None:
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"unreadable checkpoint manifest {path}: {exc}"
            ) from exc
        if manifest.get("format_version") != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint {path} has format version "
                f"{manifest.get('format_version')!r}; expected "
                f"{FORMAT_VERSION}"
            )
        if manifest.get("config_digest") != self.config_digest:
            raise CheckpointCorruptError(
                f"checkpoint {self.directory} belongs to a different "
                f"campaign (digest {manifest.get('config_digest')!r} != "
                f"{self.config_digest!r})"
            )

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Log
    # ------------------------------------------------------------------
    @property
    def log_path(self) -> Path:
        """Path of the append-only trial log."""
        return self.directory / LOG_NAME

    @property
    def io_retries(self) -> int:
        """Appends that needed the appender's truncate-and-retry heal."""
        with self._lock:
            live = self._log.io_retries if self._log is not None else 0
            return self._io_retries_closed + live

    def record(
        self, trial_index: int, seed: int, kind: str, payload: dict
    ) -> None:
        """Durably append one finished trial (append + flush + fsync).

        Appends go through :class:`~repro.util.jsonio.JsonlAppender`, so
        a transient I/O failure (real or chaos-injected) is healed by
        rolling the log back to the last durable record and retrying
        once — the record is durable when this returns, or it raised.
        """
        body = {
            "config_digest": self.config_digest,
            "trial_index": trial_index,
            "seed": seed,
            "kind": kind,
            "payload": payload,
        }
        line = _canonical({**body, "crc": _checksum(body)})
        with self._lock:
            if self._log is None:
                self._log = JsonlAppender(self.log_path)
            if self._io_fault_hook is not None:
                self._log.inject(self._io_fault_hook(trial_index))
            self._log.append(line)

    def load(self) -> Dict[int, CheckpointRecord]:
        """Read back every trustworthy record, keyed by trial index.

        A torn final line (the one write a SIGKILL or a failed disk can
        interrupt) is dropped with a :class:`~repro.errors.CheckpointWarning`
        — its trial simply re-executes on resume; a bad record anywhere
        before it raises :class:`CheckpointCorruptError`.
        """
        records: Dict[int, CheckpointRecord] = {}
        if not self.log_path.exists():
            return records
        with open(self.log_path, encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines):
            try:
                record = self._parse_line(line)
            except CheckpointCorruptError:
                if lineno == len(lines) - 1:
                    # Torn tail from a crash mid-append: drop it and
                    # let the resume re-execute that trial.
                    self.torn_tail_dropped += 1
                    warnings.warn(
                        f"dropping torn trailing checkpoint record at "
                        f"{self.log_path}:{lineno + 1}; its trial will "
                        "re-execute on resume",
                        CheckpointWarning,
                        stacklevel=2,
                    )
                    break
                raise CheckpointCorruptError(
                    f"corrupt checkpoint record at "
                    f"{self.log_path}:{lineno + 1}"
                ) from None
            records[record.trial_index] = record
        return records

    def _parse_line(self, line: str) -> CheckpointRecord:
        try:
            raw = json.loads(line)
        except ValueError as exc:
            raise CheckpointCorruptError(f"unparseable record: {exc}") from exc
        if not isinstance(raw, dict):
            raise CheckpointCorruptError("record is not an object")
        body = {k: v for k, v in raw.items() if k != "crc"}
        if raw.get("crc") != _checksum(body):
            raise CheckpointCorruptError("record checksum mismatch")
        if body.get("config_digest") != self.config_digest:
            raise CheckpointCorruptError(
                "record belongs to a different campaign"
            )
        return CheckpointRecord(
            trial_index=body["trial_index"],
            seed=body["seed"],
            kind=body["kind"],
            payload=body["payload"],
        )

    def close(self) -> None:
        """Close the log file handle (records already durable)."""
        with self._lock:
            if self._log is not None:
                self._io_retries_closed += self._log.io_retries
                self._log.close()
                self._log = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
