"""Fault-tolerant trial execution on subprocess workers.

:class:`TrialExecutor` runs picklable tasks on ``jobs`` independent
*lanes*.  Each lane owns a single-worker
:class:`~concurrent.futures.ProcessPoolExecutor` built on a ``spawn``
context, so killing a wedged trial never takes innocent neighbours with
it: on a per-trial wall-clock timeout the lane's worker is SIGKILLed,
the lane pool is rebuilt, and the trial is classified
:class:`~repro.errors.TrialTimeoutError`.  Crashes (worker exceptions,
dead processes) and timeouts are retried per :class:`RetryPolicy` with
deterministic, seed-derived backoff; a trial that exhausts its attempts
surfaces as a structured failure report instead of aborting the sweep.

The executor is also where the robustness layer plugs in: an optional
:class:`~repro.runtime.chaos.ChaosPlan` substitutes a fault-wrapped
entry point at submit time, a heartbeat monitor
(:class:`~repro.runtime.health.HeartbeatMonitor`) kills workers whose
liveness signal stops independent of wall clock, adaptive deadlines
(:class:`~repro.runtime.health.AdaptiveTimeout`) tighten the timeout
from observed trial durations, and ``quarantine=True`` converts retry
exhaustion into :class:`~repro.errors.TrialQuarantinedError` instead of
a plain failure.  All of it is opt-in: with every knob off, the dispatch
path is byte-for-byte the original single blocking wait.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import shutil
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    CampaignRuntimeError,
    ConfigurationError,
    TrialCrashError,
    TrialHungError,
    TrialQuarantinedError,
    TrialTimeoutError,
)
from ..util.rng import split_seed
from . import worker as _worker
from .chaos import ChaosPlan
from .health import AdaptiveTimeout, ExecutorHealth, HeartbeatMonitor
from .retry import RetryPolicy

WARMUP_TIMEOUT_S = 120.0


class _HeartbeatStale(Exception):
    """Internal: the awaited worker stopped beating (carries staleness)."""

    def __init__(self, stale_s: float):
        super().__init__(stale_s)
        self.stale_s = stale_s


def _error_kind(error: CampaignRuntimeError) -> str:
    """Failure-kind classification shared with the campaign layer."""
    if isinstance(error, TrialQuarantinedError):
        return "quarantined"
    if isinstance(error, TrialTimeoutError):
        return "timeout"
    if isinstance(error, TrialHungError):
        return "hung"
    return "crash"


@dataclasses.dataclass(frozen=True)
class TrialTask:
    """One unit of work: a module-level function plus picklable args."""

    index: int
    seed: int
    fn: Callable
    args: Tuple = ()


@dataclasses.dataclass
class TaskReport:
    """What happened to one task after all attempts."""

    index: int
    seed: int
    attempts: int
    value: Any = None
    error: Optional[CampaignRuntimeError] = None

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.error is None


class _Lane:
    """One worker slot: a single-process pool that can be killed whole."""

    def __init__(
        self,
        mp_context,
        initargs: Sequence[str],
        preloads=None,
        heartbeat_path=None,
    ):
        self._mp_context = mp_context
        self._initargs = tuple(initargs)
        self._pool: Optional[ProcessPoolExecutor] = None
        # Snapshot of the executor's registered preloads (None for lanes
        # constructed directly in tests).
        self._preloads = preloads if preloads is not None else (lambda: ())
        self._applied: set = set()
        self.heartbeat_path = heartbeat_path
        self.monitor = (
            HeartbeatMonitor(heartbeat_path)
            if heartbeat_path is not None
            else None
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=self._mp_context,
                initializer=_worker.initialize_worker,
                initargs=(self._initargs, self.heartbeat_path),
            )
            # Warm the worker so per-trial timeouts measure the trial,
            # not interpreter spawn + numpy import.
            self._pool.submit(_worker.noop).result(timeout=WARMUP_TIMEOUT_S)
        # Ship any preload this worker has not seen.  A killed lane's
        # replacement worker re-runs every preload because ``kill``
        # clears the applied set.
        for token, fn, args in self._preloads():
            if token in self._applied:
                continue
            self._pool.submit(fn, *args).result(timeout=WARMUP_TIMEOUT_S)
            self._applied.add(token)
        return self._pool

    def submit(self, fn: Callable, *args):
        return self._ensure_pool().submit(fn, *args)

    def kill(self) -> None:
        """SIGKILL the lane's worker and discard the pool."""
        pool, self._pool = self._pool, None
        self._applied.clear()
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        pool.shutdown(wait=True)

    def close(self) -> None:
        self.kill()


class TrialExecutor:
    """Runs tasks across isolated worker lanes with timeout and retry."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        chaos: Optional[ChaosPlan] = None,
        heartbeat_timeout_s: Optional[float] = None,
        adaptive: Optional[AdaptiveTimeout] = None,
        quarantine: bool = False,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self._sleep = sleep
        self.chaos = chaos
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.adaptive = adaptive
        self.quarantine = quarantine
        self.health = ExecutorHealth()
        self._mp_context = multiprocessing.get_context("spawn")
        self._initargs = _worker.package_sys_path()
        self._preloads: Dict[int, Tuple[Callable, Tuple]] = {}
        self._preload_token = 0
        self._heartbeat_dir: Optional[str] = None
        if heartbeat_timeout_s is not None:
            self._heartbeat_dir = tempfile.mkdtemp(prefix="repro-heartbeat-")
        self._lanes = [
            _Lane(
                self._mp_context,
                self._initargs,
                self._preload_snapshot,
                heartbeat_path=(
                    str(Path(self._heartbeat_dir) / f"lane-{index}.beat")
                    if self._heartbeat_dir is not None
                    else None
                ),
            )
            for index in range(jobs)
        ]
        self._lock = threading.Lock()
        self._stop = False

    # ------------------------------------------------------------------
    def add_preload(self, fn: Callable, *args) -> int:
        """Register a call every worker runs before its first (next) task.

        Preloads seed per-worker caches with shared payloads — e.g. one
        campaign config shipped once per lane instead of once per trial.
        They run in registration order on each lane's worker at submit
        time, and re-run automatically on the fresh worker after a lane
        is killed (timeout, crash).  Returns a token for
        :meth:`remove_preload`.
        """
        with self._lock:
            self._preload_token += 1
            token = self._preload_token
            self._preloads[token] = (fn, tuple(args))
        return token

    def remove_preload(self, token: int) -> None:
        """Unregister a preload; workers that already ran it are untouched."""
        with self._lock:
            self._preloads.pop(token, None)

    def _preload_snapshot(self) -> List[Tuple[int, Callable, Tuple]]:
        with self._lock:
            return [
                (token, fn, args)
                for token, (fn, args) in self._preloads.items()
            ]

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[TrialTask],
        on_report: Optional[Callable[[TaskReport], None]] = None,
    ) -> List[TaskReport]:
        """Execute every task; never raises for per-task failures.

        Reports come back ordered like ``tasks``.  ``on_report`` (if
        given) fires once per finished task, serialized under a lock, so
        callers can checkpoint results as they land.
        """
        queue = collections.deque(tasks)
        reports: Dict[int, TaskReport] = {}
        loop_errors: List[BaseException] = []

        def lane_loop(lane: _Lane) -> None:
            try:
                while True:
                    with self._lock:
                        if self._stop or not queue:
                            return
                        task = queue.popleft()
                    report = self._run_task(lane, task)
                    with self._lock:
                        reports[task.index] = report
                        if on_report is not None:
                            on_report(report)
            except BaseException as exc:
                # A driver bug (e.g. the checkpoint callback failing)
                # must stop the sweep loudly, not strand queued trials.
                with self._lock:
                    loop_errors.append(exc)
                    self._stop = True

        active = self._lanes[: max(1, min(self.jobs, len(tasks)))]
        threads = [
            threading.Thread(target=lane_loop, args=(lane,), daemon=True)
            for lane in active
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        except KeyboardInterrupt:
            with self._lock:
                self._stop = True
            self.close()
            raise
        finally:
            with self._lock:
                self._stop = False
        if loop_errors:
            raise loop_errors[0]
        return [reports[task.index] for task in tasks if task.index in reports]

    def map(
        self,
        fn: Callable,
        argses: Sequence[Tuple],
        *,
        seed=0,
    ) -> List[Any]:
        """Apply ``fn`` to every argument tuple; raise on any failure.

        Convenience for sweeps whose rows are all required: retries still
        absorb transient crashes, but a task that exhausts its attempts
        re-raises its structured error here.
        """
        tasks = [
            TrialTask(
                index=i, seed=split_seed(seed, "map", i), fn=fn, args=tuple(a)
            )
            for i, a in enumerate(argses)
        ]
        reports = self.run(tasks)
        for report in reports:
            if not report.ok:
                raise report.error
        return [report.value for report in reports]

    # ------------------------------------------------------------------
    def _run_task(self, lane: _Lane, task: TrialTask) -> TaskReport:
        last_error: Optional[CampaignRuntimeError] = None
        attempts = 0
        chaos_op = (
            self.chaos.worker_op_for(task.index)
            if self.chaos is not None
            else None
        )
        for attempt in range(1, self.retry.max_attempts + 1):
            with self._lock:
                if self._stop:
                    break
            attempts = attempt
            deadline_s = self.timeout_s
            if self.adaptive is not None:
                deadline_s = self.adaptive.deadline_s(self.timeout_s)
            try:
                if chaos_op is not None and attempt == chaos_op.attempt:
                    with self._lock:
                        self.health.count_chaos(chaos_op.kind)
                    future = lane.submit(
                        _worker.run_task_with_chaos,
                        chaos_op.kind,
                        chaos_op.delay_s,
                        task.fn,
                        task.args,
                    )
                else:
                    future = lane.submit(task.fn, *task.args)
            except Exception as exc:
                # Covers a broken pool and a worker that cannot even warm
                # up — either way the lane is rebuilt before the retry.
                self._kill_lane(lane)
                last_error = self._crash(task, attempt, exc)
            else:
                started = time.monotonic() if self.adaptive is not None else 0.0
                try:
                    value = self._await(lane, future, deadline_s)
                    if self.adaptive is not None:
                        self.adaptive.observe(time.monotonic() - started)
                    return TaskReport(
                        index=task.index,
                        seed=task.seed,
                        attempts=attempt,
                        value=value,
                    )
                except FutureTimeoutError:
                    self._kill_lane(lane)
                    with self._lock:
                        self.health.timeouts += 1
                    last_error = TrialTimeoutError(
                        f"trial {task.index} exceeded {deadline_s:g}s "
                        f"wall clock (attempt {attempt}/"
                        f"{self.retry.max_attempts}); worker killed",
                        trial_index=task.index,
                        seed=task.seed,
                        timeout_s=deadline_s,
                    )
                except _HeartbeatStale as stale:
                    self._kill_lane(lane)
                    with self._lock:
                        self.health.heartbeat_kills += 1
                    last_error = TrialHungError(
                        f"trial {task.index}'s worker stopped heartbeating "
                        f"for {stale.stale_s:.2f}s (attempt {attempt}/"
                        f"{self.retry.max_attempts}); worker killed",
                        trial_index=task.index,
                        seed=task.seed,
                        stale_s=stale.stale_s,
                    )
                except BrokenExecutor as exc:
                    self._kill_lane(lane)
                    last_error = self._crash(task, attempt, exc)
                except CampaignRuntimeError as exc:
                    last_error = exc
                except Exception as exc:
                    last_error = self._crash(task, attempt, exc)
            if attempt < self.retry.max_attempts:
                self._sleep(self.retry.backoff_s(attempt, task.seed))
        if last_error is not None and self.quarantine:
            last_error = self._quarantine(task, attempts, last_error)
        return TaskReport(
            index=task.index,
            seed=task.seed,
            attempts=attempts,
            error=last_error,
        )

    def _await(self, lane: _Lane, future, deadline_s: Optional[float]):
        """Wait for ``future`` under the wall-clock and liveness budgets.

        Without a heartbeat monitor this is exactly one blocking
        ``future.result`` call (the zero-overhead fast path).  With one,
        the wait polls in short slices, raising
        :class:`FutureTimeoutError` at the wall-clock deadline and
        :class:`_HeartbeatStale` as soon as the worker's beat goes quiet
        for longer than ``heartbeat_timeout_s``.
        """
        monitor = lane.monitor
        if monitor is None or self.heartbeat_timeout_s is None:
            return future.result(timeout=deadline_s)
        monitor.reset()
        slice_s = max(0.02, min(0.25, self.heartbeat_timeout_s / 4.0))
        started = time.monotonic()
        while True:
            remaining = (
                None
                if deadline_s is None
                else deadline_s - (time.monotonic() - started)
            )
            if remaining is not None and remaining <= 0:
                raise FutureTimeoutError()
            wait_s = (
                slice_s if remaining is None else min(slice_s, remaining)
            )
            try:
                return future.result(timeout=wait_s)
            except FutureTimeoutError:
                if monitor.stale(self.heartbeat_timeout_s):
                    raise _HeartbeatStale(monitor.stale_s()) from None

    def _kill_lane(self, lane: _Lane) -> None:
        lane.kill()
        with self._lock:
            self.health.lane_kills += 1

    def _quarantine(
        self, task: TrialTask, attempts: int, error: CampaignRuntimeError
    ) -> TrialQuarantinedError:
        """Circuit breaker: convert retry exhaustion into quarantine."""
        cause_kind = _error_kind(error)
        with self._lock:
            self.health.quarantined += 1
        return TrialQuarantinedError(
            f"trial {task.index} quarantined after {attempts} attempt(s); "
            f"last error ({cause_kind}): {error}",
            trial_index=task.index,
            seed=task.seed,
            attempts=attempts,
            cause_kind=cause_kind,
        )

    def _crash(self, task: TrialTask, attempt: int, exc) -> TrialCrashError:
        with self._lock:
            self.health.crashes += 1
        return TrialCrashError(
            f"trial {task.index} crashed on attempt {attempt}/"
            f"{self.retry.max_attempts}: {type(exc).__name__}: {exc}",
            trial_index=task.index,
            seed=task.seed,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Kill every lane's worker and release the pools."""
        for lane in self._lanes:
            lane.close()
        if self._heartbeat_dir is not None:
            shutil.rmtree(self._heartbeat_dir, ignore_errors=True)
            self._heartbeat_dir = None

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
