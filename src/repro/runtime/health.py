"""Liveness, adaptive deadlines, and graceful degradation accounting.

Three related answers to "is this campaign still healthy?":

* :class:`HeartbeatMonitor` — *liveness* distinct from wall-clock
  budget.  Each worker rewrites a per-lane heartbeat file a few times a
  second (:func:`repro.runtime.worker.initialize_worker` starts the
  daemon thread); the driver watches the file's mtime and declares the
  worker hung only when the beat stops, so a frozen worker (SIGSTOP,
  deadlock) is killed in seconds while a merely slow trial keeps its
  full deadline.
* :class:`AdaptiveTimeout` — per-trial deadlines estimated from the
  durations of completed trials (a percentile times a safety
  multiplier), so a campaign whose trials take 80 ms does not give a
  wedged lane the benefit of a 300 s static budget.
* :class:`ExecutorHealth` / :class:`DegradationReport` — structured
  accounting of everything the runtime absorbed (chaos injections, lane
  kills, timeouts, heartbeat kills, quarantined trials, checkpoint
  self-heals), attached to the campaign result so "it completed" and
  "it completed *cleanly*" stay distinguishable.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Dict, List, Optional


class HeartbeatMonitor:
    """Driver-side view of one worker's heartbeat file.

    Staleness is measured against a monotonic clock from the moment the
    mtime last *changed* (or from :meth:`reset`), so it needs no clock
    agreement with the worker and survives coarse filesystem timestamp
    granularity.  A missing file counts as fresh — the worker may not
    have started beating yet, and wall-clock timeout still backstops it.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._last_mtime: Optional[float] = None
        self._changed_at = time.monotonic()

    def reset(self) -> None:
        """Restart the staleness clock (call when a new trial starts)."""
        self._last_mtime = None
        self._changed_at = time.monotonic()

    def stale_s(self) -> float:
        """Seconds since the heartbeat file last changed."""
        try:
            mtime = os.stat(self.path).st_mtime_ns
        except OSError:
            mtime = None
        if mtime != self._last_mtime:
            self._last_mtime = mtime
            self._changed_at = time.monotonic()
        return time.monotonic() - self._changed_at

    def stale(self, timeout_s: float) -> bool:
        """True when the worker has not beaten for ``timeout_s``."""
        return self.stale_s() > timeout_s


def beat(path, interval_s: float, stop: threading.Event) -> None:
    """Worker-side heartbeat loop: rewrite ``path`` every ``interval_s``.

    Runs on a daemon thread inside each worker process.  A rewrite (not
    a touch) so the file always has fresh content *and* a fresh mtime
    even on filesystems that coalesce metadata updates.
    """
    path = os.fspath(path)
    while not stop.wait(interval_s):
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()} {time.time():.6f}\n")
                fh.flush()
        except OSError:  # pragma: no cover - scratch dir vanished
            return


class AdaptiveTimeout:
    """Per-trial deadline learned from completed-trial durations.

    Until ``min_samples`` trials have completed the fallback (static)
    budget applies unchanged.  After that the deadline is
    ``multiplier * percentile(durations)``, clamped to ``floor_s`` below
    and to the static budget above — adaptation only ever *tightens* a
    configured budget, never loosens it.
    """

    def __init__(
        self,
        *,
        multiplier: float = 10.0,
        percentile: float = 0.9,
        min_samples: int = 5,
        floor_s: float = 0.5,
        max_samples: int = 256,
    ):
        self.multiplier = multiplier
        self.percentile = percentile
        self.min_samples = min_samples
        self.floor_s = floor_s
        self.max_samples = max_samples
        self._durations: List[float] = []
        self._lock = threading.Lock()

    def observe(self, duration_s: float) -> None:
        """Record one completed trial's duration."""
        with self._lock:
            self._durations.append(duration_s)
            if len(self._durations) > self.max_samples:
                self._durations.pop(0)

    @property
    def samples(self) -> int:
        with self._lock:
            return len(self._durations)

    def deadline_s(self, fallback_s: Optional[float]) -> Optional[float]:
        """The deadline to apply now (None = unlimited, as configured)."""
        with self._lock:
            if len(self._durations) < self.min_samples:
                return fallback_s
            ordered = sorted(self._durations)
            rank = min(
                len(ordered) - 1,
                int(self.percentile * (len(ordered) - 1) + 0.5),
            )
            estimate = max(self.floor_s, self.multiplier * ordered[rank])
        if fallback_s is None:
            return estimate
        return min(fallback_s, estimate)


@dataclasses.dataclass
class ExecutorHealth:
    """Counters of everything one executor absorbed while running."""

    lane_kills: int = 0
    timeouts: int = 0
    heartbeat_kills: int = 0
    crashes: int = 0
    quarantined: int = 0
    chaos_injected: Dict[str, int] = dataclasses.field(default_factory=dict)

    def count_chaos(self, kind: str) -> None:
        self.chaos_injected[kind] = self.chaos_injected.get(kind, 0) + 1

    def snapshot(self) -> dict:
        return {
            "lane_kills": self.lane_kills,
            "timeouts": self.timeouts,
            "heartbeat_kills": self.heartbeat_kills,
            "crashes": self.crashes,
            "quarantined": self.quarantined,
            "chaos_injected": dict(sorted(self.chaos_injected.items())),
        }


@dataclasses.dataclass
class DegradationReport:
    """Structured account of a campaign's absorbed faults.

    Attached (as :meth:`snapshot` JSON) to
    :attr:`repro.faults.campaign.CampaignResult.degradation` whenever
    chaos, quarantine, heartbeats, or adaptive deadlines were active.
    ``quarantined`` lists each set-aside trial with its seed, attempt
    count, and the classification of the error that exhausted it —
    enough to re-run any quarantined trial in isolation.
    """

    executor: dict = dataclasses.field(default_factory=dict)
    quarantined: List[dict] = dataclasses.field(default_factory=list)
    chaos: Optional[dict] = None
    checkpoint_io_retries: int = 0
    checkpoint_torn_tail_dropped: int = 0

    @property
    def degraded(self) -> bool:
        """True when anything at all had to be absorbed."""
        return bool(
            self.quarantined
            or self.checkpoint_io_retries
            or self.checkpoint_torn_tail_dropped
            or any(
                self.executor.get(key)
                for key in (
                    "lane_kills",
                    "timeouts",
                    "heartbeat_kills",
                    "crashes",
                    "quarantined",
                )
            )
            or self.executor.get("chaos_injected")
        )

    def snapshot(self) -> dict:
        return {
            "degraded": self.degraded,
            "executor": dict(self.executor),
            "quarantined": list(self.quarantined),
            "chaos": dict(self.chaos) if self.chaos else None,
            "checkpoint": {
                "io_retries": self.checkpoint_io_retries,
                "torn_tail_dropped": self.checkpoint_torn_tail_dropped,
            },
        }


def export_degradation_metrics(
    registry, degradation: dict, prefix: str = "runtime."
) -> None:
    """Fold a degradation snapshot into a metrics registry."""
    executor = degradation.get("executor", {})
    for key in ("lane_kills", "timeouts", "heartbeat_kills", "crashes",
                "quarantined"):
        registry.counter(f"{prefix}{key}").inc(int(executor.get(key, 0)))
    for kind, count in (executor.get("chaos_injected") or {}).items():
        registry.counter(f"{prefix}chaos.{kind}").inc(int(count))
    checkpoint = degradation.get("checkpoint", {})
    registry.counter(f"{prefix}checkpoint.io_retries").inc(
        int(checkpoint.get("io_retries", 0))
    )
    registry.counter(f"{prefix}checkpoint.torn_tail_dropped").inc(
        int(checkpoint.get("torn_tail_dropped", 0))
    )
    registry.counter(f"{prefix}trials_quarantined").inc(
        len(degradation.get("quarantined", ()))
    )
