"""Retry policy with exponential backoff and deterministic jitter.

Crashed or timed-out trials are re-run up to ``max_attempts`` times.  The
backoff between attempts doubles from ``base_delay_s`` (capped at
``max_delay_s``) and is stretched by a jitter factor derived from the
*trial seed* via :func:`repro.util.rng.split_seed` — deterministic, so a
resumed campaign replays the identical schedule, yet decorrelated across
trials so a thundering herd of retries still spreads out.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..util.rng import Seed, make_rng, split_seed


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a failed trial, and how long to wait.

    Attributes:
        max_attempts: total attempts per trial (1 = never retry).
        base_delay_s: backoff before the first retry.
        max_delay_s: cap on the exponential backoff.
        jitter: maximum fractional stretch applied to each delay
            (0.25 means up to +25%).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 5.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError("jitter must be within [0, 1]")

    def backoff_s(self, attempt: int, seed: Seed) -> float:
        """Delay before the retry that follows failed attempt ``attempt``.

        ``attempt`` is 1-based; the jitter draw depends only on
        ``(seed, attempt)``, never on shared RNG state.
        """
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        delay = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))
        if self.jitter == 0 or delay == 0:
            return delay
        draw = make_rng(split_seed(seed, "retry-jitter", attempt)).random()
        return delay * (1.0 + self.jitter * draw)
