"""Subprocess entry points for the trial runtime.

Everything here is module-level so ``spawn``-context workers can unpickle
it by qualified name.  Workers receive fully picklable payloads (a
:class:`~repro.faults.campaign.CampaignConfig` built with
:class:`~repro.faults.schemes.SchemeFactory`, plus a trial index) and
return plain dataclasses.
"""

from __future__ import annotations

import pickle
import signal
import sys
import threading
from typing import Optional, Sequence

#: Worker-side heartbeat rewrite interval (seconds).  Small relative to
#: any sensible ``heartbeat_timeout_s`` so a live worker never looks
#: stale, large enough that beating is free next to real trial work.
HEARTBEAT_INTERVAL_S = 0.2

_HEARTBEAT_STOP: Optional[threading.Event] = None


def initialize_worker(
    extra_sys_path: Sequence[str] = (),
    heartbeat_path: Optional[str] = None,
) -> None:
    """Per-worker setup: import path, signal disposition, heartbeat.

    ``spawn`` children rebuild ``sys.path`` from the environment, so the
    parent passes its own package location along for installs that rely
    on ``PYTHONPATH`` tricks.  SIGINT is ignored in workers: a Ctrl-C
    belongs to the driver, which reaps workers explicitly.  When the
    driver supplies ``heartbeat_path`` a daemon thread rewrites that
    file every :data:`HEARTBEAT_INTERVAL_S` seconds — the liveness
    signal :class:`repro.runtime.health.HeartbeatMonitor` watches.
    """
    global _HEARTBEAT_STOP
    for path in extra_sys_path:
        if path not in sys.path:
            sys.path.insert(0, path)
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    if heartbeat_path is not None and _HEARTBEAT_STOP is None:
        from .health import beat

        _HEARTBEAT_STOP = threading.Event()
        thread = threading.Thread(
            target=beat,
            args=(heartbeat_path, HEARTBEAT_INTERVAL_S, _HEARTBEAT_STOP),
            daemon=True,
        )
        thread.start()


def package_sys_path() -> list:
    """The parent-side path entries workers need to import ``repro``."""
    import os

    import repro

    return [os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))]


def noop() -> None:
    """Warm-up task: proves a worker is alive and has imported repro."""
    return None


def run_task_with_chaos(kind: str, delay_s: float, fn, args):
    """Apply one worker-side chaos fault, then run the real task.

    The executor substitutes this wrapper at submit time when the active
    :class:`~repro.runtime.chaos.ChaosPlan` schedules a worker fault for
    the (trial, attempt) being dispatched.  ``kill`` dies exactly the
    way a crashed worker does; ``wedge``/``delay`` sleep first — the
    former long enough to blow the deadline, the latter a small seeded
    jitter — and then run the trial normally, so any surviving attempt
    returns the bit-identical result the clean path would have.
    """
    import os
    import time

    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind in ("wedge", "delay"):
        if delay_s > 0:
            time.sleep(delay_s)
    else:
        from ..errors import CampaignRuntimeError

        raise CampaignRuntimeError(f"unknown worker chaos kind {kind!r}")
    return fn(*args)


def run_campaign_trial(config, trial_index: int):
    """Execute one fault-injection trial in this worker.

    Runs the exact same :meth:`FaultCampaign._run_trial` as the
    sequential in-process path, so a campaign's per-trial outcomes do not
    depend on where (or in what order) its trials execute.
    """
    from ..faults.campaign import FaultCampaign

    return FaultCampaign(config)._run_trial(trial_index)


# ----------------------------------------------------------------------
# Shared-payload trial entry points
#
# A campaign's config (and, on the fast path, its warm snapshot) is the
# same for every trial, so the driver ships it once per worker via an
# executor preload (:meth:`TrialExecutor.add_preload`) and per-trial
# tasks carry only ``(digest, trial_index)``.  The cache is module-level
# worker state: each spawn-context worker process holds its own copy,
# bounded so long-lived lanes serving many campaigns stay bounded too.
# ----------------------------------------------------------------------
_PAYLOAD_CACHE = None


def _payload_cache():
    """This worker's bounded digest-keyed payload cache."""
    global _PAYLOAD_CACHE
    if _PAYLOAD_CACHE is None:
        from ..memsim.snapshot import SnapshotCache

        _PAYLOAD_CACHE = SnapshotCache(max_entries=4, max_bytes=2 << 30)
    return _PAYLOAD_CACHE


def seed_campaign_payload(digest: str, blob: bytes) -> None:
    """Preload entry point: cache a pickled campaign payload by digest."""
    _payload_cache().put(digest, pickle.loads(blob), len(blob))


def _cached_payload(digest: str):
    payload = _payload_cache().get(digest)
    if payload is None:
        from ..errors import CampaignRuntimeError

        raise CampaignRuntimeError(
            f"worker has no cached payload for campaign {digest[:16]}; "
            "the driver must preload it before scheduling trials"
        )
    return payload


def run_campaign_trial_cached(digest: str, trial_index: int):
    """Legacy-path trial against a preloaded campaign config."""
    from ..faults.campaign import FaultCampaign

    config = _cached_payload(digest)
    return FaultCampaign(config)._run_trial(trial_index)


def run_fast_campaign_trial(
    digest: str, trial_index: int, fast_equivalence: str = "never"
):
    """Snapshot-fork trial against a preloaded ``(config, WarmState)``.

    The warm state is unpickled once per worker (at preload time) and
    forked per trial, so workers never re-simulate the shared warmup.
    """
    from ..faults.campaign import FaultCampaign

    config, warm = _cached_payload(digest)
    campaign = FaultCampaign(
        config, fast=True, fast_equivalence=fast_equivalence
    )
    return campaign._run_trial(trial_index, warm=warm)
