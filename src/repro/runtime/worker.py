"""Subprocess entry points for the trial runtime.

Everything here is module-level so ``spawn``-context workers can unpickle
it by qualified name.  Workers receive fully picklable payloads (a
:class:`~repro.faults.campaign.CampaignConfig` built with
:class:`~repro.faults.schemes.SchemeFactory`, plus a trial index) and
return plain dataclasses.
"""

from __future__ import annotations

import signal
import sys
from typing import Sequence


def initialize_worker(extra_sys_path: Sequence[str] = ()) -> None:
    """Per-worker setup: import path and signal disposition.

    ``spawn`` children rebuild ``sys.path`` from the environment, so the
    parent passes its own package location along for installs that rely
    on ``PYTHONPATH`` tricks.  SIGINT is ignored in workers: a Ctrl-C
    belongs to the driver, which reaps workers explicitly.
    """
    for path in extra_sys_path:
        if path not in sys.path:
            sys.path.insert(0, path)
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def package_sys_path() -> list:
    """The parent-side path entries workers need to import ``repro``."""
    import os

    import repro

    return [os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))]


def noop() -> None:
    """Warm-up task: proves a worker is alive and has imported repro."""
    return None


def run_campaign_trial(config, trial_index: int):
    """Execute one fault-injection trial in this worker.

    Runs the exact same :meth:`FaultCampaign._run_trial` as the
    sequential in-process path, so a campaign's per-trial outcomes do not
    depend on where (or in what order) its trials execute.
    """
    from ..faults.campaign import FaultCampaign

    return FaultCampaign(config)._run_trial(trial_index)
