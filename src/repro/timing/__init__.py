"""Trace-driven timing models: fast analytical and cycle-stepped OoO."""

from .fast import (
    EventColumns,
    FastRun,
    collect_events_fast,
    collect_run_fast,
    simulate_cpi_fast,
    time_events_fast,
)
from .pipeline import (
    DetailedPipeline,
    PipelineConfig,
    PipelineResult,
    simulate_detailed_cpi,
)
from .model import (
    TIMING_POLICIES,
    AccessEvent,
    CppcTiming,
    ParityTiming,
    SchemeTimingPolicy,
    SecdedTiming,
    TimingConfig,
    TimingResult,
    TwoDParityTiming,
    collect_events,
    simulate_cpi,
    time_events,
    timing_policy,
)

__all__ = [
    "TIMING_POLICIES",
    "AccessEvent",
    "CppcTiming",
    "ParityTiming",
    "SchemeTimingPolicy",
    "SecdedTiming",
    "TimingConfig",
    "TimingResult",
    "TwoDParityTiming",
    "collect_events",
    "simulate_cpi",
    "time_events",
    "timing_policy",
    "EventColumns",
    "FastRun",
    "collect_events_fast",
    "collect_run_fast",
    "simulate_cpi_fast",
    "time_events_fast",
    "DetailedPipeline",
    "PipelineConfig",
    "PipelineResult",
    "simulate_detailed_cpi",
]
