"""Trace-driven timing models: fast analytical and cycle-stepped OoO."""

from .pipeline import (
    DetailedPipeline,
    PipelineConfig,
    PipelineResult,
    simulate_detailed_cpi,
)
from .model import (
    TIMING_POLICIES,
    AccessEvent,
    CppcTiming,
    ParityTiming,
    SchemeTimingPolicy,
    SecdedTiming,
    TimingConfig,
    TimingResult,
    TwoDParityTiming,
    collect_events,
    simulate_cpi,
    time_events,
    timing_policy,
)

__all__ = [
    "TIMING_POLICIES",
    "AccessEvent",
    "CppcTiming",
    "ParityTiming",
    "SchemeTimingPolicy",
    "SecdedTiming",
    "TimingConfig",
    "TimingResult",
    "TwoDParityTiming",
    "collect_events",
    "simulate_cpi",
    "time_events",
    "timing_policy",
    "DetailedPipeline",
    "PipelineConfig",
    "PipelineResult",
    "simulate_detailed_cpi",
]
