"""Vectorized Figure-10 timing fast path (columnar events, scanned pricing).

The scalar pipeline replays every benchmark trace through the scalar
``Cache`` (:func:`repro.timing.model.collect_events`) and then walks a
Python loop per scheme (:func:`repro.timing.model.time_events`).  Both
halves vectorize, and both halves must stay *bit-identical* to the
scalar code — Figure 10 normalises CPIs against each other, so even a
last-ulp drift would show up in the reproduction tables.

Columnar collection (:func:`collect_events_fast`) drives the
:class:`~repro.memsim.batch.BatchReplayEngine` once over the whole
trace, splitting warmup from the measured window with a mid-stream
:meth:`~repro.memsim.batch._ReplayState.checkpoint` instead of a second
replay.  The engine's :class:`~repro.memsim.batch.ReplayCapture` records
the next-level traffic; replaying that (sparse) traffic through a real
scalar L2 ``Cache`` reproduces the L2 statistics and the per-access
``miss_level`` exactly as the scalar hierarchy saw them.

Pricing (:func:`time_events_fast`) computes the issue and miss-stall
terms as pure array ops.  The store-buffer backlog recurrence
(``backlog = clip(backlog + demand - supply, 0, cap)`` per event) is
sequential, but it spends almost all its time pinned at one of its two
clip rails; the scan below jumps over those pinned runs with
precomputed one-event transition tables and resolves the rare interior
stretches with a chunked ``np.cumsum`` over the per-event deltas —
``np.add.accumulate`` folds strictly left-to-right, so the partial sums
round exactly like the scalar loop, and a clip (the only nonlinearity)
always surfaces as a detectable sign/threshold violation that is
re-resolved with one scalar step.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, EquivalenceError
from ..memsim.batch import BatchReplayEngine, BatchTrace, ReplayCapture
from ..memsim.cache import Cache
from ..memsim.hierarchy import PAPER_CONFIG, HierarchyConfig, MemoryHierarchy
from ..memsim.mainmem import MainMemory
from ..memsim.protection import NoProtection
from ..memsim.stats import CacheStats
from .model import (
    AccessEvent,
    SchemeTimingPolicy,
    TimingConfig,
    TimingResult,
    collect_events,
    timing_policy,
)

#: Cross-check modes, mirroring :class:`repro.workloads.replay.FastReplay`.
EQUIVALENCE_MODES = ("auto", "always", "never")

#: ``"auto"`` cross-checks traces of at most this many references.
DEFAULT_EQUIVALENCE_LIMIT = 2048


@dataclasses.dataclass(frozen=True)
class EventColumns:
    """The :class:`~repro.timing.model.AccessEvent` stream as columns.

    One row per measured reference; iterating yields the exact
    ``AccessEvent`` tuples, so every scalar consumer (``time_events``,
    the detailed pipeline) accepts an ``EventColumns`` unchanged.
    """

    is_load: np.ndarray
    instructions: np.ndarray
    was_dirty: np.ndarray
    miss_level: np.ndarray

    def __post_init__(self):
        n = len(self.is_load)
        if not (
            len(self.instructions) == len(self.was_dirty) == len(self.miss_level) == n
        ):
            raise ConfigurationError("event columns must share one length")

    def __len__(self) -> int:
        return len(self.is_load)

    def __iter__(self):
        for row in zip(
            self.is_load.tolist(),
            self.instructions.tolist(),
            self.was_dirty.tolist(),
            self.miss_level.tolist(),
        ):
            yield AccessEvent(*row)

    @classmethod
    def from_events(cls, events: Iterable[AccessEvent]) -> "EventColumns":
        """Pack scalar ``AccessEvent`` tuples into columns."""
        events = list(events)
        n = len(events)
        return cls(
            is_load=np.fromiter((e.is_load for e in events), dtype=bool, count=n),
            instructions=np.fromiter(
                (e.instructions for e in events), dtype=np.int64, count=n
            ),
            was_dirty=np.fromiter((e.was_dirty for e in events), dtype=bool, count=n),
            miss_level=np.fromiter(
                (e.miss_level for e in events), dtype=np.int8, count=n
            ),
        )

    def to_events(self) -> List[AccessEvent]:
        """The exact scalar ``AccessEvent`` list."""
        return list(self)

    def slice(self, start: int, stop: int) -> "EventColumns":
        """A zero-copy view of rows ``[start:stop)``."""
        return EventColumns(
            is_load=self.is_load[start:stop],
            instructions=self.instructions[start:stop],
            was_dirty=self.was_dirty[start:stop],
            miss_level=self.miss_level[start:stop],
        )

    def mismatches(self, other: "EventColumns", limit: int = 5) -> List[str]:
        """Human-readable per-column differences against ``other``."""
        problems: List[str] = []
        if len(self) != len(other):
            return [f"event count diverges: {len(self)} vs {len(other)}"]
        for field in ("is_load", "instructions", "was_dirty", "miss_level"):
            mine = getattr(self, field)
            theirs = getattr(other, field)
            bad = np.flatnonzero(mine != theirs)
            for i in bad[:limit].tolist():
                problems.append(
                    f"event[{i}].{field} diverges: "
                    f"{mine[i].item()} vs {theirs[i].item()}"
                )
            if len(bad) > limit:
                problems.append(
                    f"... and {len(bad) - limit} more {field} divergences"
                )
        return problems


@dataclasses.dataclass
class FastRun:
    """Everything :func:`collect_run_fast` produced for one trace."""

    events: EventColumns
    l1: CacheStats
    l2: CacheStats
    references: int
    units_per_block: int


# ----------------------------------------------------------------------
# Columnar event collection
# ----------------------------------------------------------------------

#: Batch-engine counter name -> CacheStats field name.
_COUNTER_FIELDS = (
    ("read_hits", "read_hits"),
    ("read_misses", "read_misses"),
    ("write_hits", "write_hits"),
    ("write_misses", "write_misses"),
    ("fills", "fills"),
    ("writebacks", "writebacks"),
    ("evictions_clean", "evictions_clean"),
    ("evictions_dirty", "evictions_dirty"),
    ("stores_to_dirty", "stores_to_dirty_units"),
)


def _zero_gap(trace: BatchTrace) -> BatchTrace:
    """The same accesses on a gap-free clock.

    The scalar hierarchy advances its access counter by exactly one per
    reference (``collect_events`` passes no cycle), while the batch
    engine advances by ``gap + 1``; replaying a gap-free copy makes the
    batch clock — and therefore every Tavg/dirty-residency statistic and
    captured next-level cycle — land on the scalar values.  The
    instruction gaps still reach the timing model via the
    ``instructions`` column.
    """
    return BatchTrace(
        addr=trace.addr,
        size=trace.size,
        is_store=trace.is_store,
        gap=np.zeros(len(trace), dtype=np.int64),
        value_word=trace.value_word,
        value_mask=trace.value_mask,
    )


def _delta_stats(engine: BatchReplayEngine, warm: dict, end: dict) -> CacheStats:
    """Measured-window L1 stats from two replay checkpoints.

    Field-for-field what the scalar cache reports after
    ``reset_stats()`` at the warmup boundary: counters are checkpoint
    deltas, the dirty-occupancy integral telescopes across the boundary,
    and the stats clock carries the absolute final cycle (the scalar
    clock is not rewound by a reset).  ``read_before_writes`` stays 0 —
    event collection runs on an unprotected hierarchy, and only
    protection schemes perform read-before-writes (the batch engine
    models CPPC's).
    """
    stats = CacheStats()
    stats.configure(engine.num_sets * engine.ways * engine.units_per_block)
    warm_counters, end_counters = warm["counters"], end["counters"]
    for src, dst in _COUNTER_FIELDS:
        setattr(stats, dst, end_counters[src] - warm_counters[src])
    stats.dirty_time_integral = float(end["integral"] - warm["integral"])
    stats.observed_cycles = float(end["last_cycle"] - warm["last_cycle"])
    stats._last_event_cycle = float(end["last_cycle"])
    stats._current_dirty_units = end["dirty_count"]
    stats.dirty_interval_sum = float(end["interval_sum"] - warm["interval_sum"])
    stats.dirty_interval_count = end["interval_count"] - warm["interval_count"]
    warm_hist = warm["interval_hist"]
    stats.dirty_interval_histogram = {
        bucket: count - warm_hist.get(bucket, 0)
        for bucket, count in sorted(end["interval_hist"].items())
        if count - warm_hist.get(bucket, 0)
    }
    return stats


class _LeanL2:
    """Single-unit-per-line L2 replay with scalar-exact accounting.

    Every constructible hierarchy has ``l2.unit_bytes == l1.block_bytes``
    (enforced) and ``l2.block_bytes == l1.block_bytes`` (a larger L2
    block would make the L1's block-aligned refills misaligned), so the
    captured traffic always touches exactly one L2 unit covering the
    whole line.  That collapses the scalar ``Cache`` path to a handful
    of list operations per event; the float-bearing statistics still go
    through the very same :class:`CacheStats` methods (``advance_to``,
    ``record_dirty_interval``), so every rounding step matches.
    """

    def __init__(self, geometry):
        self.block_bytes = geometry.block_bytes
        self.ways = geometry.ways
        self.num_sets = geometry.size_bytes // (geometry.ways * geometry.block_bytes)
        self._access_counter = 0.0
        self.stats = CacheStats()
        self.stats.configure(self.num_sets * self.ways)
        lines = self.num_sets * self.ways
        self.tags = [0] * lines
        self.dirty = [False] * lines
        self.last_dirty = [None] * lines
        # Per-set state materializes on first touch: an L2 usually has
        # far more sets than the trace references.  ``tag_way`` maps
        # resident tags to ways (the scalar way-probe, O(1)); ``filled``
        # counts valid ways — lines fill in way order and validity never
        # decreases (every eviction is immediately followed by a fill of
        # the same way), so the first invalid way is simply ``filled``.
        self.order: list = [None] * self.num_sets
        self.tag_way: list = [None] * self.num_sets
        self.filled = [0] * self.num_sets

    def replay(self, events, slot_set, slot_tag, base_access, miss_level) -> None:
        """Drive one capture segment, classifying per-access miss levels.

        ``miss_level`` (when not ``None``) receives 2 for accesses whose
        L2 traffic missed at least once — the scalar ``collect_events``
        classification, which counts a victim write-back missing L2 too
        — and 1 otherwise.  All cache state lives in locals for the
        duration of the segment; only the float-bearing statistics calls
        go through :class:`CacheStats` methods.
        """
        stats = self.stats
        advance_to = stats.advance_to
        record_interval = stats.record_dirty_interval
        dirty_changed = stats.dirty_units_changed
        ways = self.ways
        tags, dirty, last_dirty = self.tags, self.dirty, self.last_dirty
        orders, tag_maps, filled_l = self.order, self.tag_way, self.filled
        counter = self._access_counter
        current = -1
        missed = False
        for access, kind, slot, cycle, _words in events:
            if access != current:
                if miss_level is not None and current >= 0:
                    miss_level[current - base_access] = 2 if missed else 1
                current = access
                missed = False
            if cycle > counter:
                counter = cycle
            now = counter
            advance_to(now)
            set_index = slot_set[slot]
            tag = slot_tag[slot]
            base = set_index * ways
            tmap = tag_maps[set_index]
            if tmap is None:
                tmap = tag_maps[set_index] = {}
                order = orders[set_index] = list(range(ways))
            else:
                order = orders[set_index]
            way = tmap.get(tag)
            if way is not None:
                if kind:
                    stats.write_hits += 1
                else:
                    stats.read_hits += 1
            else:
                missed = True
                if kind:
                    stats.write_misses += 1
                else:
                    stats.read_misses += 1
                filled = filled_l[set_index]
                if filled < ways:
                    way = filled
                    filled_l[set_index] = filled + 1
                else:
                    way = order[-1]
                    line = base + way
                    if dirty[line]:
                        stats.writebacks += 1
                        stats.evictions_dirty += 1
                        dirty_changed(-1)
                        dirty[line] = False
                        last_dirty[line] = None
                    else:
                        stats.evictions_clean += 1
                    del tmap[tags[line]]
                tags[base + way] = tag
                tmap[tag] = way
                stats.fills += 1
                order.remove(way)
                order.insert(0, way)
            line = base + way
            if kind:
                if dirty[line]:
                    stats.stores_to_dirty_units += 1
                else:
                    dirty[line] = True
                    dirty_changed(1)
                last = last_dirty[line]
                if last is not None:
                    record_interval(now - last)
                last_dirty[line] = now
            elif dirty[line]:
                record_interval(now - last_dirty[line])
                last_dirty[line] = now
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        if miss_level is not None and current >= 0:
            miss_level[current - base_access] = 2 if missed else 1
        self._access_counter = counter

    def reset_stats(self) -> None:
        last = max(self._access_counter, self.stats._last_event_cycle)
        self._access_counter = last
        fresh = CacheStats()
        fresh.configure(self.num_sets * self.ways)
        fresh._last_event_cycle = last
        fresh._current_dirty_units = self.stats._current_dirty_units
        self.stats = fresh


def _replay_l2(
    capture: ReplayCapture,
    config: HierarchyConfig,
    warmup: int,
    n_total: int,
) -> Tuple[CacheStats, np.ndarray]:
    """Reproduce L2 behaviour from the captured next-level traffic.

    The capture holds exactly the ``read_block``/``write_block`` calls
    the scalar L1 would have issued (same order, same cycles), so
    feeding them to an L2 model reproduces its statistics bit-for-bit,
    including the ``reset_stats()`` at the warmup boundary.  The lean
    single-unit model covers every geometry the hierarchy accepts; a
    real scalar ``Cache`` backs the exotic multi-unit case.
    ``miss_level`` is classified per L1-missing access the way
    ``collect_events`` does: level 2 whenever the access grew the L2
    miss counter (its own fill *or* its victim's write-back missing L2).
    """
    geometry = config.l2
    miss_level = np.zeros(n_total - warmup, dtype=np.int8)
    events = capture.events
    split = 0
    while split < len(events) and events[split][0] < warmup:
        split += 1
    if geometry.unit_bytes == geometry.block_bytes:
        l2 = _LeanL2(geometry)
        num_sets, bb = l2.num_sets, l2.block_bytes
        slot_set = [(a // bb) % num_sets for a in capture.slot_addr or []]
        slot_tag = [(a // bb) // num_sets for a in capture.slot_addr or []]
        l2.replay(events[:split], slot_set, slot_tag, 0, None)
        if warmup:
            l2.reset_stats()
        l2.replay(events[split:], slot_set, slot_tag, warmup, miss_level)
        return l2.stats, miss_level
    # pragma-style fallback: a multi-unit L2 cannot come out of
    # MemoryHierarchy, but keep the general scalar path for safety.
    l2 = Cache(
        "L2",
        geometry.size_bytes,
        geometry.ways,
        geometry.block_bytes,
        unit_bytes=geometry.unit_bytes,
        protection=NoProtection(),
        next_level=MainMemory(block_bytes=geometry.block_bytes),
        policy="lru",
    )
    slot_addr = capture.slot_addr or []

    def apply(event):
        _, kind, slot, cycle, words = event
        addr = slot_addr[slot]
        if kind == 0:
            l2.read_block(addr, cycle=cycle)
        else:
            data = b"".join(w.to_bytes(8, "big") for w in words)
            l2.write_block(addr, data, cycle=cycle)

    for k in range(split):
        apply(events[k])
    if warmup:
        l2.reset_stats()
    k = split
    while k < len(events):
        access = events[k][0]
        misses_before = l2.stats.misses
        while k < len(events) and events[k][0] == access:
            apply(events[k])
            k += 1
        miss_level[access - warmup] = 2 if l2.stats.misses > misses_before else 1
    return l2.stats, miss_level


def _dirty_flags(dirty_stores: List[int], warmup: int, n_total: int) -> np.ndarray:
    flags = np.zeros(n_total - warmup, dtype=bool)
    if dirty_stores:
        idx = np.asarray(dirty_stores, dtype=np.int64)
        flags[idx[idx >= warmup] - warmup] = True
    return flags


def _cross_check(
    trace: BatchTrace, config: HierarchyConfig, warmup: int, run: FastRun
) -> None:
    """Replay the trace through the scalar collector and compare."""
    hierarchy = MemoryHierarchy(config)
    records = iter(trace.to_records())
    if warmup:
        collect_events(itertools.islice(records, warmup), hierarchy)
        hierarchy.l1d.reset_stats()
        hierarchy.l2.reset_stats()
    scalar_events = EventColumns.from_events(collect_events(records, hierarchy))
    problems = scalar_events.mismatches(run.events)
    if hierarchy.l1d.stats != run.l1:
        problems.append(
            "L1 stats diverge: "
            f"{hierarchy.l1d.stats.snapshot()} vs {run.l1.snapshot()}"
        )
    if hierarchy.l2.stats != run.l2:
        problems.append(
            "L2 stats diverge: "
            f"{hierarchy.l2.stats.snapshot()} vs {run.l2.snapshot()}"
        )
    if problems:
        raise EquivalenceError(
            "timing fast path diverged from the scalar collector",
            mismatches=problems,
        )


def collect_run_fast(
    records: Union[BatchTrace, Iterable],
    config: HierarchyConfig = PAPER_CONFIG,
    *,
    warmup: int = 0,
    equivalence: str = "auto",
    equivalence_limit: int = DEFAULT_EQUIVALENCE_LIMIT,
) -> FastRun:
    """One batch replay -> measured events plus L1/L2 statistics.

    The first ``warmup`` references fill the caches and are excluded
    from the returned events and statistics, exactly like
    ``reset_stats()`` at the boundary of a scalar run — but without
    replaying anything twice: the measured window is the delta between
    two checkpoints of one streaming replay.

    Args:
        records: a :class:`~repro.memsim.batch.BatchTrace` or an
            iterable of :class:`~repro.workloads.trace.TraceRecord`.
        config: hierarchy geometry (L1 protection units must be 64-bit,
            the batch-engine precondition).
        warmup: references to exclude from the front of the trace.
        equivalence: ``"auto"`` (cross-check against the scalar
            collector when the trace is small), ``"always"`` or
            ``"never"`` — the :class:`~repro.workloads.replay.FastReplay`
            convention.
        equivalence_limit: reference-count cutoff for ``"auto"``.
    """
    if equivalence not in EQUIVALENCE_MODES:
        raise ConfigurationError(
            f"equivalence mode must be one of {EQUIVALENCE_MODES}, "
            f"got {equivalence!r}"
        )
    trace = (
        records if isinstance(records, BatchTrace) else BatchTrace.from_records(records)
    )
    n_total = len(trace)
    if not 0 <= warmup <= n_total:
        raise ConfigurationError(
            f"warmup must be within the trace: {warmup} vs {n_total} references"
        )
    l1 = config.l1d
    engine = BatchReplayEngine(l1.size_bytes, l1.ways, l1.block_bytes)
    capture = ReplayCapture()
    state = engine.begin(capture)
    flat = _zero_gap(trace)
    if warmup:
        engine.feed(state, flat.slice(0, warmup))
    boundary = state.checkpoint()
    engine.feed(state, flat.slice(warmup, n_total))
    engine.close(state)
    l2_stats, miss_level = _replay_l2(capture, config, warmup, n_total)
    run = FastRun(
        events=EventColumns(
            is_load=~trace.is_store[warmup:],
            instructions=trace.gap[warmup:] + 1,
            was_dirty=_dirty_flags(capture.dirty_stores, warmup, n_total),
            miss_level=miss_level,
        ),
        l1=_delta_stats(engine, boundary, state.checkpoint()),
        l2=l2_stats,
        references=n_total - warmup,
        units_per_block=engine.units_per_block,
    )
    if equivalence == "always" or (
        equivalence == "auto" and n_total <= equivalence_limit
    ):
        _cross_check(trace, config, warmup, run)
    return run


def collect_events_fast(
    records: Union[BatchTrace, Iterable],
    config: HierarchyConfig = PAPER_CONFIG,
    *,
    equivalence: str = "auto",
    equivalence_limit: int = DEFAULT_EQUIVALENCE_LIMIT,
) -> EventColumns:
    """Columnar counterpart of :func:`repro.timing.model.collect_events`."""
    return collect_run_fast(
        records,
        config,
        equivalence=equivalence,
        equivalence_limit=equivalence_limit,
    ).events


# ----------------------------------------------------------------------
# Vectorized pricing
# ----------------------------------------------------------------------


def time_events_fast(
    events: Union[EventColumns, Iterable[AccessEvent]],
    policy: SchemeTimingPolicy,
    config: Optional[TimingConfig] = None,
    *,
    units_per_block: int = 4,
) -> TimingResult:
    """Bit-identical vectorization of :func:`repro.timing.model.time_events`.

    Every term the scalar loop accumulates is reproduced with the same
    sequence of float64 operations: per-event quantities are elementwise
    array ops, running totals fold left-to-right via
    ``np.add.accumulate``, and the backlog recurrence is resolved by the
    rail-jumping scan described in the module docstring.
    """
    cfg = config or TimingConfig()
    cols = events if isinstance(events, EventColumns) else EventColumns.from_events(events)
    n = len(cols)
    result = TimingResult()
    if n == 0:
        return result

    is_load = cols.is_load
    miss = cols.miss_level > 0
    issue = cols.instructions / float(cfg.issue_width)
    supply = issue - is_load.astype(np.float64)
    drain = np.maximum(supply, 0.0)

    store_demand = np.zeros(n)
    dirty_demand = float(policy.store_demand(True))
    clean_demand = float(policy.store_demand(False))
    if dirty_demand or clean_demand:
        stores = ~is_load
        store_demand[stores & cols.was_dirty] = dirty_demand
        store_demand[stores & ~cols.was_dirty] = clean_demand
    miss_demand = np.zeros(n)
    demand_per_miss = float(policy.miss_demand(units_per_block))
    if demand_per_miss:
        miss_demand[miss] = demand_per_miss

    penalty = np.where(
        cols.miss_level == 2, float(cfg.memory_latency), float(cfg.l2_hit_latency)
    )
    stall = np.where(miss, penalty * (1.0 - cfg.miss_overlap), 0.0)
    shadow = 0.25 * stall

    port = _resolve_backlog(
        float(cfg.store_buffer_capacity),
        drain,
        supply,
        store_demand,
        miss_demand,
        miss,
        shadow,
    )

    result.references = n
    result.instructions = int(cols.instructions.sum())
    result.loads = int(np.count_nonzero(is_load))
    result.stores = n - result.loads
    result.issue_cycles = float(np.add.accumulate(issue)[-1])
    result.miss_stall_cycles = float(np.add.accumulate(stall)[-1])
    result.port_stall_cycles = float(np.add.accumulate(port)[-1])
    interleaved = np.empty((n, 3))
    interleaved[:, 0] = issue
    interleaved[:, 1] = stall
    interleaved[:, 2] = port
    result.cycles = float(np.add.accumulate(interleaved.reshape(-1))[-1])
    return result


def _resolve_backlog(
    cap: float,
    drain: np.ndarray,
    supply: np.ndarray,
    store_demand: np.ndarray,
    miss_demand: np.ndarray,
    miss: np.ndarray,
    shadow: np.ndarray,
) -> np.ndarray:
    """Per-event port stalls of the clipped-backlog recurrence.

    The backlog is a clipped linear recurrence that spends nearly all
    its time *pinned at a rail* — exactly 0.0 (nothing owed) or exactly
    ``cap`` (saturated) — because both clips assign those exact floats.
    Rail states are memoryless, so one-event transition tables computed
    elementwise describe every possible departure, and a sorted-index
    jump skips each pinned run in O(log n).  Interior stretches fold the
    four per-event deltas (drain, store demand, miss demand, miss
    shadow) through one flat ``np.cumsum`` seeded with the entry backlog
    — strictly sequential, hence bit-identical — and any clip shows up
    as a sign/threshold violation on the partial sums, repaired by
    replaying that single event scalar-style.
    """
    n = len(drain)
    port = np.zeros(n)

    # Departures from the 0.0 rail: no drain applies, demands land on an
    # empty buffer, the miss shadow may clip straight back to the rail.
    from_zero = store_demand + miss_demand
    from_zero = np.where(miss, np.maximum(from_zero - shadow, 0.0), from_zero)
    zero_port = np.maximum(from_zero - cap, 0.0)
    zero_next = np.minimum(from_zero, cap)
    # Rail departures are consumed by a monotone cursor (``p`` only
    # grows), so plain sorted Python lists beat per-jump searchsorted.
    zero_exits = np.flatnonzero(zero_next != 0.0).tolist()
    zero_cursor = 0

    # Departures from the cap rail, built lazily (parity-like policies
    # never saturate).  Mirrors the scalar op order exactly: drain,
    # store demand, miss demand, shadow clip, cap clip.
    cap_tables = None

    def cap_transitions():
        after_drain = np.maximum(cap - drain, 0.0)
        value = after_drain + store_demand
        value = value + miss_demand
        value = np.where(miss, np.maximum(value - shadow, 0.0), value)
        return (
            np.maximum(value - cap, 0.0),
            np.minimum(value, cap),
            np.flatnonzero(np.minimum(value, cap) != cap).tolist(),
        )

    # Scalar excursions index these Python lists instead of the arrays:
    # the values are the same IEEE doubles, but list indexing skips the
    # numpy-scalar boxing that would otherwise dominate short stretches.
    supply_l = supply.tolist()
    store_l = store_demand.tolist()
    missd_l = miss_demand.tolist()
    miss_l = miss.tolist()
    shadow_l = shadow.tolist()

    def step(backlog: float, j: int) -> Tuple[float, float]:
        """One event, exactly as the scalar loop computes it."""
        stalled = 0.0
        supplied = supply_l[j]
        if supplied > 0 and backlog > 0:
            backlog = max(0.0, backlog - supplied)
        backlog = backlog + store_l[j]
        if miss_l[j]:
            backlog = backlog + missd_l[j]
            backlog = max(0.0, backlog - shadow_l[j])
        if backlog > cap:
            stalled = backlog - cap
            backlog = cap
        return backlog, stalled

    deltas = None
    chunk = 64
    backlog = 0.0
    p = 0
    n_zero_exits = len(zero_exits)
    cap_cursor = 0
    while p < n:
        if backlog == 0.0:
            k = zero_cursor
            while k < n_zero_exits and zero_exits[k] < p:
                k += 1
            zero_cursor = k
            if k == n_zero_exits:
                break
            e = zero_exits[k]
            port[e] = zero_port[e]
            backlog = float(zero_next[e])
            p = e + 1
            continue
        if backlog == cap:
            if cap_tables is None:
                cap_tables = cap_transitions()
            cap_port, cap_next, cap_exits = cap_tables
            k = cap_cursor
            n_cap_exits = len(cap_exits)
            while k < n_cap_exits and cap_exits[k] < p:
                k += 1
            cap_cursor = k
            e = cap_exits[k] if k < n_cap_exits else n
            if e > p:
                port[p:e] = cap_port[p:e]
            if e == n:
                break
            backlog = float(cap_next[e])
            p = e + 1
            continue
        # Interior: resolve a handful of events scalar-style (short
        # excursions between rails are the common case) ...
        steps = 0
        while p < n and 0.0 < backlog < cap and steps < 32:
            supplied = supply_l[p]  # step(), inlined for the hot loop
            if supplied > 0:
                backlog = max(0.0, backlog - supplied)
            backlog = backlog + store_l[p]
            if miss_l[p]:
                backlog = backlog + missd_l[p]
                backlog = max(0.0, backlog - shadow_l[p])
            if backlog > cap:
                port[p] = backlog - cap
                backlog = cap
            p += 1
            steps += 1
        if p >= n or backlog == 0.0 or backlog == cap:
            continue
        # ... and genuinely long interior stretches with the chunked
        # flat-cumsum scan.
        if deltas is None:
            deltas = np.empty((n, 4))
            deltas[:, 0] = -drain
            deltas[:, 1] = store_demand
            deltas[:, 2] = miss_demand
            deltas[:, 3] = -shadow
        q = min(n, p + chunk)
        seeded = np.empty(4 * (q - p) + 1)
        seeded[0] = backlog
        seeded[1:] = deltas[p:q].reshape(-1)
        partials = np.cumsum(seeded)[1:].reshape(-1, 4)
        clipped = (
            (partials[:, 0] < 0.0)
            | (partials[:, 3] < 0.0)
            | (partials[:, 3] > cap)
        )
        hits = np.flatnonzero(clipped)
        if len(hits):
            h = int(hits[0])
            if h:
                backlog = float(partials[h - 1, 3])
            backlog, stalled = step(backlog, p + h)
            if stalled:
                port[p + h] = stalled
            p = p + h + 1
            chunk = max(64, chunk // 2)
        else:
            backlog = float(partials[-1, 3])
            p = q
            chunk = min(chunk * 2, 65536)
    return port


def simulate_cpi_fast(
    records: Union[BatchTrace, Iterable],
    config: HierarchyConfig,
    scheme: str,
    timing_config: Optional[TimingConfig] = None,
    *,
    equivalence: str = "auto",
) -> TimingResult:
    """Fast counterpart of :func:`repro.timing.model.simulate_cpi`.

    Takes the hierarchy *config* rather than a live hierarchy (the fast
    path builds its own batch engine) but returns the bit-identical
    :class:`~repro.timing.model.TimingResult`.
    """
    run = collect_run_fast(records, config, equivalence=equivalence)
    return time_events_fast(
        run.events,
        timing_policy(scheme),
        timing_config,
        units_per_block=run.units_per_block,
    )
