"""Trace-driven CPI model with cache-port contention (paper Section 6.1).

Figure 10 compares CPIs of processors whose L1 caches differ only in
protection scheme; functional behaviour (hits/misses) is identical, so
the CPI gap comes from *read-port contention*: a CPPC store to a dirty
word must steal an idle read-port cycle for its read-before-write, while
a two-dimensional-parity cache needs one for every store plus a whole
line read on every miss.

The model follows the paper's microarchitecture (Table 1): 4-wide issue,
a bounded store buffer whose pending read-before-write work drains into
idle read-port cycles (the cycle-stealing coordination of Section 3.1),
and stalls only when the buffer backs up.  Miss penalties are charged
with a fixed overlap factor standing in for the 64-entry RUU's latency
hiding.

Because every scheme sees the same functional access stream, the model is
split in two: :func:`collect_events` replays the trace once against a
hierarchy and captures the per-access facts timing needs (store-to-dirty,
miss level), and :func:`time_events` prices that stream under any scheme's
port policy — the paper's simulate-once / account-per-scheme methodology.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, NamedTuple, Optional

from ..errors import ConfigurationError
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.types import AccessType
from ..workloads.trace import TraceRecord


class AccessEvent(NamedTuple):
    """Timing-relevant facts about one functional access.

    ``miss_level``: 0 = L1 hit, 1 = L1 miss/L2 hit, 2 = miss to memory.
    """

    is_load: bool
    instructions: int
    was_dirty: bool
    miss_level: int


@dataclasses.dataclass(frozen=True)
class TimingConfig:
    """Core and hierarchy timing parameters (paper Table 1)."""

    issue_width: int = 4
    l1_hit_latency: int = 2
    l2_hit_latency: int = 8
    memory_latency: int = 200
    store_buffer_capacity: int = 2
    #: Fraction of a miss penalty hidden by out-of-order execution.
    miss_overlap: float = 0.4

    def __post_init__(self):
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be >= 1")
        if not 0.0 <= self.miss_overlap < 1.0:
            raise ConfigurationError("miss_overlap must be in [0, 1)")
        if self.store_buffer_capacity < 1:
            raise ConfigurationError("store buffer must hold >= 1 entry")


class SchemeTimingPolicy:
    """Read-port demand of one protection scheme's extra operations."""

    #: Scheme label for reports.
    name = "parity"

    def store_demand(self, was_dirty: bool) -> int:
        """Read-port cycles one store owes (read-before-write)."""
        return 0

    def miss_demand(self, units_per_block: int) -> int:
        """Read-port cycles one miss owes (victim-line reads)."""
        return 0


class ParityTiming(SchemeTimingPolicy):
    """1-D parity: no extra array reads in the common case."""

    name = "parity"


class SecdedTiming(SchemeTimingPolicy):
    """SECDED checked off the critical path — same port profile as parity
    (the paper gives both a 2-cycle access and backgrounds the decode)."""

    name = "secded"


class CppcTiming(SchemeTimingPolicy):
    """CPPC: read-before-write only on stores to already-dirty words."""

    name = "cppc"

    def store_demand(self, was_dirty: bool) -> int:
        return 1 if was_dirty else 0


class TwoDParityTiming(SchemeTimingPolicy):
    """2-D parity: read-before-write on every store, line read per miss.

    The victim-line read is one *wide* array access (the physical row is
    the line), so it costs one read-port cycle regardless of how many
    words it spans; its energy is charged per bit by the energy model.
    """

    name = "2d-parity"

    def store_demand(self, was_dirty: bool) -> int:
        return 1

    def miss_demand(self, units_per_block: int) -> int:
        # Read the victim line (one wide access) plus the bus-turnaround
        # slot before the fill can write: two read-port cycles per miss.
        return 2


TIMING_POLICIES = {
    "parity": ParityTiming,
    "secded": SecdedTiming,
    "cppc": CppcTiming,
    "2d-parity": TwoDParityTiming,
}


def timing_policy(name: str) -> SchemeTimingPolicy:
    """Policy instance by scheme name."""
    try:
        return TIMING_POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown timing policy {name!r}; choose from {sorted(TIMING_POLICIES)}"
        ) from None


@dataclasses.dataclass
class TimingResult:
    """Cycle accounting of one run."""

    instructions: int = 0
    cycles: float = 0.0
    issue_cycles: float = 0.0
    miss_stall_cycles: float = 0.0
    port_stall_cycles: float = 0.0
    references: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0


def collect_events(
    records: Iterable[TraceRecord], hierarchy: MemoryHierarchy
) -> List[AccessEvent]:
    """Replay ``records`` on ``hierarchy``, capturing per-access facts.

    The hierarchy should be fresh; its protection scheme is irrelevant to
    the captured events (use the cheap default).
    """
    events: List[AccessEvent] = []
    l1, l2 = hierarchy.l1d, hierarchy.l2
    for record in records:
        l1_misses = l1.stats.misses
        l2_misses = l2.stats.misses
        was_dirty = False
        if record.op is AccessType.LOAD:
            hierarchy.load(record.addr, record.size)
            is_load = True
        else:
            dirty_before = l1.stats.stores_to_dirty_units
            hierarchy.store(record.addr, record.value)
            was_dirty = l1.stats.stores_to_dirty_units > dirty_before
            is_load = False
        if l1.stats.misses == l1_misses:
            miss_level = 0
        elif l2.stats.misses == l2_misses:
            miss_level = 1
        else:
            miss_level = 2
        events.append(
            AccessEvent(is_load, record.instructions, was_dirty, miss_level)
        )
    return events


def time_events(
    events: Iterable[AccessEvent],
    policy: SchemeTimingPolicy,
    config: Optional[TimingConfig] = None,
    *,
    units_per_block: int = 4,
) -> TimingResult:
    """Price an event stream under one scheme's port policy."""
    cfg = config or TimingConfig()
    result = TimingResult()
    backlog = 0.0  # read-port cycles owed by the store buffer

    for event in events:
        result.references += 1
        result.instructions += event.instructions
        # Front-end issue time for the gap plus the reference itself.
        issue = event.instructions / cfg.issue_width
        result.issue_cycles += issue
        result.cycles += issue

        # Idle read-port cycles in the gap drain pending RBW work; a
        # load's own cycle is reserved for the load.
        supply = issue - (1.0 if event.is_load else 0.0)
        if supply > 0 and backlog > 0:
            backlog = max(0.0, backlog - supply)

        if event.is_load:
            result.loads += 1
        else:
            result.stores += 1
            backlog += policy.store_demand(event.was_dirty)

        if event.miss_level:
            penalty = (
                cfg.memory_latency if event.miss_level == 2 else cfg.l2_hit_latency
            )
            stall = penalty * (1.0 - cfg.miss_overlap)
            result.miss_stall_cycles += stall
            result.cycles += stall
            backlog += policy.miss_demand(units_per_block)
            # While the fill is in flight the read port is idle part of the
            # time (the array is busy filling), so pending RBW work
            # partially drains under the miss shadow.
            backlog = max(0.0, backlog - 0.25 * stall)

        # A full store buffer stalls the pipeline until the backlog
        # drains back under capacity (one read-port cycle each).
        if backlog > cfg.store_buffer_capacity:
            stall = backlog - cfg.store_buffer_capacity
            result.port_stall_cycles += stall
            result.cycles += stall
            backlog = float(cfg.store_buffer_capacity)

    return result


def simulate_cpi(
    records: Iterable[TraceRecord],
    hierarchy: MemoryHierarchy,
    scheme: str,
    config: Optional[TimingConfig] = None,
) -> TimingResult:
    """Replay and price a trace for one scheme in a single call."""
    events = collect_events(records, hierarchy)
    return time_events(
        events,
        timing_policy(scheme),
        config,
        units_per_block=hierarchy.l1d.units_per_block,
    )
