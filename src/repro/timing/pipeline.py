"""Cycle-stepped out-of-order pipeline model (the SimpleScalar substrate).

The paper evaluates Figure 10 on SimpleScalar's sim-outorder: a 4-wide
machine with a 64-entry RUU and 16-entry LSQ (Table 1), where protection
schemes differ only in how they use the L1 data ports.  This module
implements that machine at cycle granularity:

* **issue** — up to ``issue_width`` instructions per cycle enter the RUU
  (memory operations also need an LSQ slot);
* **loads** — need the read port on their issue cycle and complete after
  the level-appropriate latency; loads are *speculatively scheduled*
  assuming an L1 hit, so a miss charges an extra ``replay_penalty``
  (Section 3.1's replay discussion);
* **stores** — retire into a bounded store buffer and drain through the
  write port; a store owing read-before-write work must additionally
  steal an *idle* read-port cycle (loads always have priority — the
  coordination Section 3.1 proposes);
* **commit** — in order, up to ``issue_width`` per cycle; a full store
  buffer stalls commit.

Compared to :mod:`repro.timing.model` (the fast analytical model used by
the default Figure 10 bench), this model resolves port conflicts cycle by
cycle.  Both consume the same :class:`~repro.timing.model.AccessEvent`
streams, so they can be cross-validated (see
``benchmarks/bench_detailed_pipeline.py``).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Iterable, Iterator, Optional, Tuple

from ..errors import ConfigurationError
from .model import AccessEvent, SchemeTimingPolicy

#: Instruction kinds flowing through the pipeline.
_ALU, _LOAD, _STORE = 0, 1, 2


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Microarchitecture parameters (paper Table 1)."""

    issue_width: int = 4
    ruu_size: int = 64
    lsq_size: int = 16
    store_buffer_size: int = 16
    l1_hit_latency: int = 2
    l2_hit_latency: int = 8
    memory_latency: int = 200
    #: Extra cycles a load's dependents lose when the fixed-hit-latency
    #: speculation fails (Section 3.1's replay cost).
    replay_penalty: int = 3
    #: Fraction of a long-latency miss overlapped by independent work the
    #: RUU exposes (applied to the portion beyond the L1 hit latency).
    miss_overlap: float = 0.4
    #: Single-ported data array (paper Section 7 future work): stores
    #: drain through the same port loads use, so EVERY store competes
    #: with loads, amplifying read-before-write pressure.
    single_port: bool = False

    def __post_init__(self):
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be >= 1")
        if self.ruu_size < self.issue_width:
            raise ConfigurationError("RUU must hold at least one issue group")
        if self.lsq_size < 1 or self.store_buffer_size < 1:
            raise ConfigurationError("LSQ and store buffer must be >= 1")
        if not 0.0 <= self.miss_overlap < 1.0:
            raise ConfigurationError("miss_overlap must be in [0, 1)")


@dataclasses.dataclass
class PipelineResult:
    """Cycle accounting of one detailed run."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    load_replays: int = 0
    read_port_conflicts: int = 0
    store_buffer_stalls: int = 0
    ruu_full_stalls: int = 0
    lsq_full_stalls: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclasses.dataclass
class _Uop:
    """One in-flight instruction."""

    kind: int
    complete_at: int  # cycle at which the value is ready
    rbw: bool = False  # stores only: owes a read-before-write
    weight: int = 1  # committed instructions this uop accounts for


def _expand(events: Iterable[AccessEvent]) -> Iterator[Tuple[int, int, bool, int]]:
    """Flatten events to (kind, miss_level, was_dirty, weight) uops.

    An event accounts for ``event.instructions`` committed instructions:
    the gap's ALU uops plus the memory uop itself.  A zero-instruction
    event still performs its memory operation but must commit with
    weight 0, or the pipeline's CPI denominator drifts above the
    analytical model's (which sums ``event.instructions`` directly).
    """
    for event in events:
        for _ in range(event.instructions - 1):
            yield (_ALU, 0, False, 1)
        weight = 1 if event.instructions else 0
        if event.is_load:
            yield (_LOAD, event.miss_level, False, weight)
        else:
            yield (_STORE, event.miss_level, event.was_dirty, weight)


class DetailedPipeline:
    """The cycle-stepped machine; one instance per run."""

    def __init__(
        self,
        policy: SchemeTimingPolicy,
        config: Optional[PipelineConfig] = None,
        *,
        units_per_block: int = 4,
    ):
        self.policy = policy
        self.config = config or PipelineConfig()
        self.units_per_block = units_per_block

    # ------------------------------------------------------------------
    def _load_latency(self, miss_level: int) -> int:
        cfg = self.config
        if miss_level == 0:
            return cfg.l1_hit_latency
        raw = cfg.l2_hit_latency if miss_level == 1 else cfg.memory_latency
        hidden = (raw - cfg.l1_hit_latency) * cfg.miss_overlap
        return cfg.l1_hit_latency + int(raw - cfg.l1_hit_latency - hidden)

    def run(self, events: Iterable[AccessEvent]) -> PipelineResult:
        """Execute the event stream to completion."""
        cfg = self.config
        result = PipelineResult()
        feed = _expand(events)
        pending: Optional[Tuple[int, int, bool, int]] = next(feed, None)

        ruu: Deque[_Uop] = collections.deque()
        lsq_occupancy = 0
        store_buffer: Deque[_Uop] = collections.deque()
        cycle = 0

        while pending is not None or ruu or store_buffer:
            read_port_free = True

            # ---- commit (in order, up to issue_width) ----------------
            committed = 0
            while (
                ruu
                and committed < cfg.issue_width
                and ruu[0].complete_at <= cycle
            ):
                head = ruu[0]
                if head.kind == _STORE:
                    if len(store_buffer) >= cfg.store_buffer_size:
                        result.store_buffer_stalls += 1
                        break
                    store_buffer.append(head)
                if head.kind in (_LOAD, _STORE):
                    lsq_occupancy -= 1
                ruu.popleft()
                committed += 1
                result.instructions += head.weight

            # ---- issue (up to issue_width) ---------------------------
            issued = 0
            while pending is not None and issued < cfg.issue_width:
                kind, miss_level, was_dirty, weight = pending
                if len(ruu) >= cfg.ruu_size:
                    result.ruu_full_stalls += 1
                    break
                if kind != _ALU and lsq_occupancy >= cfg.lsq_size:
                    result.lsq_full_stalls += 1
                    break
                # A missing memory op owes the scheme's per-miss port
                # work (2-D parity's victim-line read) as RBW entries in
                # the store buffer; they must respect its bound.  Stall
                # issue until the buffer has drained room — unless it is
                # already empty, when an oversized demand could never
                # fit and must be admitted to make progress.
                demand = (
                    self.policy.miss_demand(self.units_per_block)
                    if kind != _ALU and miss_level
                    else 0
                )
                if (
                    demand
                    and store_buffer
                    and len(store_buffer) + demand > cfg.store_buffer_size
                ):
                    result.store_buffer_stalls += 1
                    break
                if kind == _LOAD:
                    if not read_port_free:
                        result.read_port_conflicts += 1
                        break
                    read_port_free = False
                    latency = self._load_latency(miss_level)
                    if miss_level:
                        latency += cfg.replay_penalty
                        result.load_replays += 1
                    ruu.append(_Uop(_LOAD, cycle + latency, weight=weight))
                    lsq_occupancy += 1
                    result.loads += 1
                    for _ in range(demand):
                        store_buffer.append(_Uop(_STORE, cycle, rbw=True))
                elif kind == _STORE:
                    rbw = self.policy.store_demand(was_dirty) > 0
                    ruu.append(
                        _Uop(_STORE, cycle + 1, rbw=rbw, weight=weight)
                    )
                    lsq_occupancy += 1
                    result.stores += 1
                    for _ in range(demand):
                        store_buffer.append(_Uop(_STORE, cycle, rbw=True))
                else:
                    ruu.append(_Uop(_ALU, cycle + 1))
                issued += 1
                pending = next(feed, None)

            # ---- store-buffer drain ----------------------------------
            # One write-port slot per cycle; an RBW store also needs the
            # read port, which loads may have taken this cycle.  The
            # buffer drains out of order (Section 3.1's store-buffer /
            # scheduler coordination): if the oldest entry owes RBW work
            # and the port is taken, a younger plain store drains instead.
            if store_buffer:
                if cfg.single_port:
                    # One shared array port: any drain needs it idle, and
                    # an RBW store needs it for two micro-ops.
                    if read_port_free:
                        head = store_buffer.popleft()
                        read_port_free = False
                        if head.rbw:
                            store_buffer.appendleft(
                                _Uop(_STORE, cycle, rbw=False)
                            )
                else:
                    head = store_buffer[0]
                    if not head.rbw or read_port_free:
                        store_buffer.popleft()
                        if head.rbw:
                            read_port_free = False
                    else:
                        for index, entry in enumerate(store_buffer):
                            if not entry.rbw:
                                del store_buffer[index]
                                break

            cycle += 1
        result.cycles = cycle
        return result


def simulate_detailed_cpi(
    events: Iterable[AccessEvent],
    policy: SchemeTimingPolicy,
    config: Optional[PipelineConfig] = None,
    *,
    units_per_block: int = 4,
) -> PipelineResult:
    """Convenience wrapper mirroring :func:`repro.timing.time_events`."""
    return DetailedPipeline(
        policy, config, units_per_block=units_per_block
    ).run(events)
