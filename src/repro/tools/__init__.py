"""Command-line entry points: trace generation, experiments, campaigns.

Each submodule exposes ``main(argv)`` and is runnable as
``python -m repro.tools.<name>``.
"""

from . import (
    gen_docs,
    gen_trace,
    run_bench,
    run_campaign,
    run_experiment,
    run_scorecard,
    run_sensitivity,
)

__all__ = [
    "gen_docs",
    "gen_trace",
    "run_bench",
    "run_campaign",
    "run_experiment",
    "run_scorecard",
    "run_sensitivity",
]
