"""Shared CLI conventions for the ``repro.tools`` entry points.

Exit codes (uniform across ``run_campaign``, ``run_scorecard``,
``run_sensitivity``, ``run_bench``, ``run_fuzz``,
``run_resilience_smoke``):

* ``EXIT_OK`` (0) — everything ran and every result is complete.
* ``EXIT_FATAL`` (1) — the run could not produce usable results
  (equivalence violations, undetected seeded bugs, crashes).
* ``EXIT_PARTIAL`` (3) — results exist but are partial or have
  explicit failures (abandoned trials, failing scorecard claims,
  failed bench ratio gates, fuzz divergences).

``--json`` support: every tool that accepts it emits one
machine-readable summary object via :func:`emit_json` — to stdout with
``--json``, or to a file with ``--json PATH``.

Observability (:mod:`repro.obs`) flags: :func:`add_obs_arguments`
installs ``--trace-out PATH`` (event trace: ``.jsonl`` for the
checksummed line format, ``.json`` for a chrome://tracing file) and
``--emit-metrics [PATH]`` (the shared
:class:`~repro.obs.MetricsRegistry` snapshot schema);
:func:`open_sink` turns the former into a live sink.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..errors import ConfigurationError
from ..obs import MetricsRegistry, TraceSink, make_sink

EXIT_OK = 0
EXIT_FATAL = 1
EXIT_PARTIAL = 3


def add_json_argument(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--json [PATH]`` flag on ``parser``."""
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit a machine-readable JSON summary (to stdout, or to PATH)",
    )


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared observability flags on ``parser``."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write an event trace (.jsonl = checksummed lines, "
        ".json = chrome://tracing)",
    )
    parser.add_argument(
        "--emit-metrics",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the metrics-registry snapshot as JSON "
        "(to stdout, or to PATH)",
    )


def open_sink(trace_out: Optional[str]) -> TraceSink:
    """Sink for ``--trace-out`` (a NullSink when the flag is absent)."""
    return make_sink(trace_out)


def metrics_registry(emit_metrics: Optional[str]) -> Optional[MetricsRegistry]:
    """A registry when ``--emit-metrics`` was given, else None."""
    return MetricsRegistry() if emit_metrics is not None else None


def emit_metrics(
    destination: Optional[str], registry: Optional[MetricsRegistry]
) -> None:
    """Write the registry snapshot per the ``--emit-metrics`` flag."""
    if registry is not None:
        emit_json(destination, registry.snapshot())


def emit_json(destination: Optional[str], payload: dict) -> None:
    """Write ``payload`` as JSON to stdout (``-``) or a file; no-op if
    ``destination`` is None (flag not given)."""
    if destination is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def resolve_exit(*, fatal: bool = False, partial: bool = False) -> int:
    """Map an outcome onto the shared exit-code convention."""
    if fatal:
        return EXIT_FATAL
    if partial:
        return EXIT_PARTIAL
    return EXIT_OK


def fail(message: str) -> int:
    """Print ``message`` to stderr and return ``EXIT_FATAL``."""
    print(message, file=sys.stderr)
    return EXIT_FATAL


# ----------------------------------------------------------------------
# Argument validation at the CLI boundary
#
# Tools validate numeric flags here, before any config or runtime object
# is built, so a bad ``--timeout`` fails with a typed
# ConfigurationError and exit 1 instead of a traceback from deep inside
# TrialExecutor half a campaign later.  ``flag`` names are spelled the
# way the user typed them (``--retries``), values of None (flag not
# given) pass through untouched.
# ----------------------------------------------------------------------
def require_positive(**flags) -> None:
    """Raise :class:`ConfigurationError` for any value <= 0.

    Keyword names are flag names with underscores (``timeout``,
    ``chaos_rate``); the message renders them with dashes.
    """
    for name, value in flags.items():
        if value is not None and value <= 0:
            raise ConfigurationError(
                f"--{name.replace('_', '-')} must be positive, "
                f"got {value!r}"
            )


def require_non_negative(**flags) -> None:
    """Raise :class:`ConfigurationError` for any value < 0."""
    for name, value in flags.items():
        if value is not None and value < 0:
            raise ConfigurationError(
                f"--{name.replace('_', '-')} must be >= 0, got {value!r}"
            )
