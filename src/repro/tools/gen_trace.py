"""Command-line trace generator.

Writes a synthetic benchmark trace in the text format of
:mod:`repro.workloads.trace`::

    python -m repro.tools.gen_trace gcc --references 100000 -o gcc.trace

or, with ``--format columnar``, in the chunked binary format of
:mod:`repro.workloads.store` (streamed — generation never materializes
the full trace)::

    python -m repro.tools.gen_trace gcc -n 10000000 --format columnar \\
        -o gcc.coltrace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..workloads import benchmark_names, make_workload, save_trace
from ..workloads.store import DEFAULT_CHUNK_RECORDS, write_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gen-trace",
        description="Generate a synthetic SPEC2000-like memory trace.",
    )
    parser.add_argument(
        "benchmark",
        choices=benchmark_names(),
        help="benchmark profile to generate",
    )
    parser.add_argument(
        "--references", "-n", type=int, default=100_000,
        help="number of memory references (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    parser.add_argument(
        "--format", choices=("text", "columnar"), default="text",
        help="trace encoding: one-line-per-record text or the chunked "
        "columnar binary store (default: %(default)s)",
    )
    parser.add_argument(
        "--chunk-records", type=int, default=DEFAULT_CHUNK_RECORDS,
        help="records per columnar chunk (default: %(default)s)",
    )
    parser.add_argument(
        "--output", "-o", default=None,
        help="output file (default: stdout; required for --format columnar)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    workload = make_workload(args.benchmark, seed=args.seed)
    records = workload.records(args.references)
    if args.format == "columnar":
        if args.output is None:
            print(
                "--format columnar writes a binary file; --output is "
                "required",
                file=sys.stderr,
            )
            return 2
        written = write_trace(
            records,
            args.output,
            chunk_records=args.chunk_records,
            meta={
                "benchmark": args.benchmark,
                "seed": args.seed,
                "n_references": args.references,
            },
        )
    elif args.output is None:
        save_trace(records, sys.stdout)
        return 0
    else:
        with open(args.output, "w") as fh:
            written = save_trace(records, fh)
    print(f"wrote {written} records for {args.benchmark}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
