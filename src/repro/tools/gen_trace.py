"""Command-line trace generator.

Writes a synthetic benchmark trace in the text format of
:mod:`repro.workloads.trace`::

    python -m repro.tools.gen_trace gcc --references 100000 -o gcc.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..workloads import benchmark_names, make_workload, save_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gen-trace",
        description="Generate a synthetic SPEC2000-like memory trace.",
    )
    parser.add_argument(
        "benchmark",
        choices=benchmark_names(),
        help="benchmark profile to generate",
    )
    parser.add_argument(
        "--references", "-n", type=int, default=100_000,
        help="number of memory references (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    parser.add_argument(
        "--output", "-o", type=argparse.FileType("w"), default=sys.stdout,
        help="output file (default: stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    workload = make_workload(args.benchmark, seed=args.seed)
    written = save_trace(workload.records(args.references), args.output)
    if args.output is not sys.stdout:
        args.output.close()
        print(f"wrote {written} records for {args.benchmark}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
