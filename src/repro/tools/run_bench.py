"""Benchmark the repo's fast paths against their reference simulators.

Default mode replays one synthetic benchmark trace through both the
batch engine and the scalar simulator, checks that they agree
word-for-word on a short prefix, and writes a JSON report
(``BENCH_replay.json`` by default)::

    python -m repro.tools.run_bench --trace-len 100000
    python -m repro.tools.run_bench --trace-len 20000 --min-speedup 3

``--campaign`` instead benchmarks the snapshot-fork campaign fast path
(:mod:`repro.faults.warmstate`) against the legacy warm-every-trial
loop, verifies the two produce bit-identical per-trial results, and
writes ``BENCH_campaign.json``::

    python -m repro.tools.run_bench --campaign --trials 200 \\
        --min-campaign-speedup 3

``--trace-format columnar`` benchmarks the on-disk columnar trace
store (:mod:`repro.workloads.store`): streaming generation, columnar
load into ``BatchTrace`` columns vs. one-line-per-record text parsing,
chunked replay straight off the reader, and the content-addressed
trace cache, writing ``BENCH_tracestore.json``::

    python -m repro.tools.run_bench --trace-format columnar \\
        --trace-len 200000 --min-load-speedup 5

``--reliability`` benchmarks the vectorized Monte-Carlo double-fault
engine (:mod:`repro.reliability.fastmc`) against the scalar reference
loop: it first replays a randomized subset of sampled fault pairs
through the live ``Cache``/``CppcProtection`` machinery asserting
per-sample outcome identity, asserts the shard merge is bit-independent
of the shard count, then times both paths and writes
``BENCH_reliability.json``::

    python -m repro.tools.run_bench --reliability \\
        --mc-samples 200000 --min-mc-speedup 50

``--min-speedup`` / ``--min-campaign-speedup`` turn the run into a
gate: the exit status is ``EXIT_PARTIAL`` (results exist but a claim
failed) when the measured speedup falls below the floor, which is how
CI keeps the fast paths honest without being flaky about absolute
timings.  ``--max-obs-overhead`` gates the same way on the ratio of
batch replay time with a *disabled* trace sink attached to the plain
batch time — the zero-overhead-when-disabled property of
:mod:`repro.obs`, kept honest as a ratio rather than a wall-clock.

``--compare-baseline [PATH]`` additionally compares the run's ratio
metrics against a committed ``BENCH_baseline.json`` and *warns* (never
fails) when a ratio regressed beyond ``--baseline-tolerance`` — the
bench trajectory is tracked across PRs without turning machine noise
into red builds.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from typing import Optional, Sequence

import numpy as np

from ..errors import EquivalenceError
from ..faults.schemes import SCHEMES, scheme_factory
from ..memsim.batch import BatchTrace
from ..obs import NullSink, make_sink
from ..workloads import benchmark_names, make_workload, materialize
from ..workloads.replay import FastReplay, TraceReplayer
from ..workloads.store import (
    DEFAULT_CHUNK_RECORDS,
    ColumnarTraceReader,
    ColumnarTraceWriter,
    TraceCache,
    write_trace,
)
from ..workloads.trace import load_trace, save_trace
from ._cli import (
    add_obs_arguments,
    emit_metrics,
    fail,
    metrics_registry,
    resolve_exit,
)

#: Trace prefix used to warm both engines before the timed runs.
WARMUP_REFERENCES = 5_000

#: Default committed baseline file (see ``--compare-baseline``).
DEFAULT_BASELINE = "BENCH_baseline.json"

#: Ratio metrics tracked against the baseline, per mode.  Direction
#: ``"min"`` means lower-is-worse (a speedup), ``"max"`` the opposite
#: (an overhead ratio).
BASELINE_METRICS = {
    "replay": (("speedup", "min"), ("obs_overhead_ratio", "max")),
    "campaign": (("speedup", "min"),),
    "tracestore": (("load_speedup", "min"),),
    "reliability": (("mc_speedup", "min"),),
    "timing": (("speedup", "min"),),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-bench",
        description="Time scalar vs. batch trace replay and emit JSON.",
    )
    parser.add_argument(
        "--benchmark",
        choices=benchmark_names(),
        default="gcc",
        help="synthetic workload profile (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-len",
        "-n",
        type=int,
        default=100_000,
        help="references in the timed trace (default: %(default)s)",
    )
    parser.add_argument(
        "--equivalence-len",
        type=int,
        default=1_000,
        help="prefix replayed through both engines and cross-checked "
        "word-for-word; 0 skips the check (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per engine, best taken (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed (default: 0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when batch/scalar speedup is below this "
        "(default: no gate)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.0,
        help="fail (exit 1) when batch time with a disabled trace sink "
        "exceeds this ratio of the plain batch time (default: no gate)",
    )
    parser.add_argument(
        "--output",
        "-o",
        type=pathlib.Path,
        default=None,
        help="JSON report path (default: BENCH_replay.json, or "
        "BENCH_campaign.json with --campaign)",
    )
    store = parser.add_argument_group(
        "trace-store mode",
        "benchmark the columnar on-disk trace store against the text "
        "format: generation streaming into chunks, load into BatchTrace "
        "columns vs. text parse, chunked replay, and the trace cache",
    )
    store.add_argument(
        "--trace-format",
        choices=("records", "columnar"),
        default="records",
        help="'columnar' switches to the trace-store benchmark "
        "(default: %(default)s, the in-memory replay benchmark)",
    )
    store.add_argument(
        "--chunk-records",
        type=int,
        default=DEFAULT_CHUNK_RECORDS,
        help="records per columnar chunk (default: %(default)s)",
    )
    store.add_argument(
        "--min-load-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the columnar-load vs. text-parse "
        "speedup is below this (default: no gate)",
    )
    campaign = parser.add_argument_group(
        "campaign mode",
        "benchmark the snapshot-fork campaign fast path against the "
        "legacy warm-every-trial loop (bit-identical results, checked)",
    )
    campaign.add_argument(
        "--campaign",
        action="store_true",
        help="time a fault-injection campaign instead of raw trace replay",
    )
    campaign.add_argument(
        "--scheme",
        choices=SCHEMES,
        default="cppc",
        help="protection scheme for campaign mode (default: %(default)s)",
    )
    campaign.add_argument(
        "--trials",
        type=int,
        default=200,
        help="campaign trials per timed run (default: %(default)s)",
    )
    campaign.add_argument(
        "--warmup",
        type=int,
        default=12_000,
        help="warmup references per trial in campaign mode; the fast "
        "path simulates them once (default: %(default)s)",
    )
    campaign.add_argument(
        "--post",
        type=int,
        default=250,
        help="post-fault references per trial in campaign mode "
        "(default: %(default)s)",
    )
    campaign.add_argument(
        "--min-campaign-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the fast/legacy campaign speedup is "
        "below this (default: no gate)",
    )
    reliability = parser.add_argument_group(
        "reliability mode",
        "benchmark the vectorized Monte-Carlo double-fault engine "
        "against the scalar reference loop (per-sample live equivalence "
        "and shard-merge determinism asserted first)",
    )
    reliability.add_argument(
        "--reliability",
        action="store_true",
        help="time the double-fault Monte-Carlo engine instead of trace "
        "replay",
    )
    reliability.add_argument(
        "--mc-samples",
        type=int,
        default=200_000,
        help="fault-pair samples per timed vectorized run "
        "(default: %(default)s)",
    )
    reliability.add_argument(
        "--scalar-mc-samples",
        type=int,
        default=64,
        help="samples per timed scalar-reference run; both timings are "
        "normalized to samples/sec before the ratio (default: %(default)s)",
    )
    reliability.add_argument(
        "--mc-shards",
        type=int,
        default=1,
        help="sample shards for the timed vectorized run; the merged "
        "estimate is bit-independent of this (default: %(default)s)",
    )
    reliability.add_argument(
        "--mc-pairs",
        type=int,
        default=1,
        help="register pairs of the benched geometry (default: %(default)s)",
    )
    reliability.add_argument(
        "--mc-parity-ways",
        type=int,
        default=8,
        help="parity interleave ways of the benched geometry "
        "(default: %(default)s)",
    )
    reliability.add_argument(
        "--mc-cache-bytes",
        type=int,
        default=8192,
        help="dirty-cache capacity of the benched geometry "
        "(default: %(default)s)",
    )
    reliability.add_argument(
        "--equivalence-subset",
        type=int,
        default=48,
        help="sampled fault pairs replayed through live Cache recovery "
        "and compared per sample; 0 skips the check (default: %(default)s)",
    )
    reliability.add_argument(
        "--min-mc-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the vectorized/scalar samples-per-sec "
        "ratio is below this (default: no gate)",
    )
    timing = parser.add_argument_group(
        "timing mode",
        "benchmark the vectorized Figure-10 timing fast path "
        "(columnar event collection + array pricing) against the scalar "
        "collect_events/time_events pipeline; bit-identity of events, "
        "cache statistics and every scheme's TimingResult is asserted "
        "across all benchmarks before anything is timed",
    )
    timing.add_argument(
        "--timing",
        action="store_true",
        help="time the Figure-10 timing fast path instead of trace replay",
    )
    timing.add_argument(
        "--timing-refs",
        type=int,
        default=12_000,
        help="measured references per benchmark; a quarter more are "
        "prepended as cache warmup (default: %(default)s)",
    )
    timing.add_argument(
        "--timing-benchmarks",
        nargs="+",
        choices=benchmark_names(),
        default=None,
        metavar="NAME",
        help="subset of benchmarks to run (default: the full Figure-10 "
        "workload set)",
    )
    timing.add_argument(
        "--min-timing-speedup",
        type=float,
        default=0.0,
        help="exit 3 when the fast/scalar speedup is below this "
        "(default: no gate)",
    )
    baseline = parser.add_argument_group(
        "baseline tracking",
        "compare ratio metrics against a committed baseline file; "
        "regressions warn on stderr but never change the exit status",
    )
    baseline.add_argument(
        "--compare-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=f"baseline JSON to compare against (default: {DEFAULT_BASELINE})",
    )
    baseline.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.8,
        help="warn when a tracked ratio falls below this fraction of the "
        "baseline (or exceeds 1/fraction for overhead ratios) "
        "(default: %(default)s)",
    )
    add_obs_arguments(parser)
    return parser


def compare_baseline(report: dict, mode: str, path, tolerance: float) -> dict:
    """Compare ``report``'s tracked ratios against the baseline file.

    Returns a comparison record (also attached to the report by the
    caller): per metric the current and baseline values, the allowed
    bound, and whether it regressed.  A missing baseline file or mode
    section yields ``{"status": "no-baseline"}`` so fresh checkouts and
    new modes stay silent.
    """
    if not 0.0 < tolerance <= 1.0:
        raise ValueError("baseline tolerance must be in (0, 1]")
    path = pathlib.Path(path)
    if not path.is_file():
        return {"status": "no-baseline", "path": str(path)}
    baseline = json.loads(path.read_text()).get(mode)
    if not baseline:
        return {"status": "no-baseline", "path": str(path), "mode": mode}
    metrics = {}
    regressed = False
    for metric, direction in BASELINE_METRICS[mode]:
        base = baseline.get(metric)
        current = report.get(metric)
        if base is None or current is None:
            continue
        if direction == "min":
            bound = base * tolerance
            bad = current < bound
        else:
            bound = base / tolerance
            bad = current > bound
        regressed = regressed or bad
        metrics[metric] = {
            "current": current,
            "baseline": base,
            "bound": bound,
            "regressed": bad,
        }
    return {
        "status": "regressed" if regressed else "ok",
        "path": str(path),
        "tolerance": tolerance,
        "metrics": metrics,
    }


def _apply_baseline(report: dict, mode: str, args) -> None:
    """Attach the baseline comparison and warn on regressions."""
    if args.compare_baseline is None:
        return
    comparison = compare_baseline(
        report, mode, args.compare_baseline, args.baseline_tolerance
    )
    report["baseline_comparison"] = comparison
    if comparison["status"] != "regressed":
        return
    for metric, entry in comparison["metrics"].items():
        if entry["regressed"]:
            print(
                f"WARNING: {mode} {metric} {entry['current']:.3f} "
                f"regressed past the baseline bound {entry['bound']:.3f} "
                f"(baseline {entry['baseline']:.3f}, "
                f"tolerance {args.baseline_tolerance})",
                file=sys.stderr,
            )


def _time_best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(
    benchmark: str = "gcc",
    trace_len: int = 100_000,
    *,
    equivalence_len: int = 1_000,
    repeats: int = 3,
    seed: int = 0,
    trace_out: Optional[str] = None,
    registry=None,
) -> dict:
    """Run the comparison and return the report dictionary.

    ``trace_out`` additionally replays the trace once with a live sink
    attached (per-chunk spans land in the file); ``registry`` (a
    :class:`repro.obs.MetricsRegistry`) receives the batch run's cache
    statistics.
    """
    if trace_len < 1:
        raise ValueError("trace_len must be positive")
    records = materialize(make_workload(benchmark, seed=seed).records(trace_len))
    replayer = FastReplay(equivalence="never")

    # Correctness first: replay a short prefix through both engines and
    # compare final state word-for-word (raises EquivalenceError on any
    # divergence).
    checked = min(equivalence_len, trace_len)
    if checked:
        FastReplay(equivalence="always").run(records[:checked])

    # Pack the trace (and the warmup prefix) into columns exactly once:
    # the engines being timed both consume the same immutable BatchTrace,
    # so the measurement no longer includes redundant from_records packing
    # repeated per engine per repeat.
    trace = BatchTrace.from_records(records)
    warm_trace = trace.slice(0, min(WARMUP_REFERENCES, trace_len))
    warm = records[: len(warm_trace)]

    # Warm both paths so one-time NumPy/interpreter setup costs do not
    # pollute the measurement.
    replayer.engine.replay(warm_trace)
    TraceReplayer(replayer.scalar_cache()).run(warm)

    batch_result = {}

    def batch_once():
        batch_result["value"] = replayer.engine.replay(trace)

    # Zero-overhead-when-disabled: a NullSink attached to the engine must
    # keep the hot loop on its uninstrumented branch, so this ratio stays
    # ~1.0 regardless of machine speed.  The two batch variants are timed
    # in alternation (not in separate back-to-back blocks) so slow drift
    # on a noisy machine cancels out of the ratio.
    disabled = FastReplay(equivalence="never", obs=NullSink())
    disabled.engine.replay(warm_trace)

    def disabled_once():
        disabled.engine.replay(trace)

    batch_s = disabled_s = float("inf")
    for _ in range(max(1, repeats)):
        batch_s = min(batch_s, _time_best(batch_once, 1))
        disabled_s = min(disabled_s, _time_best(disabled_once, 1))

    scalar_s = _time_best(
        lambda: TraceReplayer(replayer.scalar_cache()).run(records),
        repeats,
    )

    report = {
        "benchmark": benchmark,
        "trace_len": trace_len,
        "seed": seed,
        "repeats": repeats,
        "equivalence_checked_references": checked,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_ops_per_sec": trace_len / scalar_s,
        "batch_ops_per_sec": trace_len / batch_s,
        "speedup": scalar_s / batch_s,
        "disabled_sink_seconds": disabled_s,
        "obs_overhead_ratio": disabled_s / batch_s,
    }
    if registry is not None:
        batch_result["value"].stats.export_metrics(registry, prefix="batch.")
        registry.gauge("bench.speedup").set(report["speedup"])
        registry.gauge("bench.obs_overhead_ratio").set(
            report["obs_overhead_ratio"]
        )
    if trace_out is not None:
        with make_sink(trace_out) as sink:
            FastReplay(equivalence="never", obs=sink).run(trace)
        report["trace_out"] = str(trace_out)
    return report


def run_tracestore_bench(
    benchmark: str = "gcc",
    trace_len: int = 200_000,
    *,
    equivalence_len: int = 1_000,
    repeats: int = 3,
    seed: int = 0,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    workdir=None,
    registry=None,
) -> dict:
    """Benchmark the columnar trace store and return the report.

    Writes the same generated trace in both formats under ``workdir``
    (a temporary directory by default), then measures, best of
    ``repeats``:

    * columnar load (file → replay-ready :class:`BatchTrace` columns)
      against text parse (``load_trace`` → ``from_records``) — the
      ``load_speedup`` ratio this mode gates on;
    * chunked replay throughput straight off the reader;
    * trace-cache miss (generate + write) vs. hit (decode) latency.

    Correctness is asserted, not sampled: the columnar columns must be
    bit-identical to the text round-trip, and a ``trace_len``-capped
    prefix is replayed with ``FastReplay(equivalence="always")`` from
    the columnar file, so a format bug fails the bench rather than
    skewing it.  The writer streams from the generator; the report
    records its buffered high-water mark.
    """
    if trace_len < 1:
        raise ValueError("trace_len must be positive")
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(workdir) if workdir is not None else pathlib.Path(tmp)
        base.mkdir(parents=True, exist_ok=True)
        col_path = base / f"{benchmark}-{trace_len}.coltrace"
        text_path = base / f"{benchmark}-{trace_len}.trace"

        # Streaming generation straight into chunks (bounded memory).
        start = time.perf_counter()
        with ColumnarTraceWriter(
            col_path, chunk_records=chunk_records
        ) as writer:
            writer.extend(
                make_workload(benchmark, seed=seed).records(trace_len)
            )
        gen_columnar_s = time.perf_counter() - start
        peak_buffered = writer.peak_buffered
        if peak_buffered > chunk_records:
            raise EquivalenceError(
                f"streaming writer buffered {peak_buffered} records "
                f"(more than one {chunk_records}-record chunk)"
            )

        start = time.perf_counter()
        with open(text_path, "w") as fh:
            save_trace(
                make_workload(benchmark, seed=seed).records(trace_len), fh
            )
        gen_text_s = time.perf_counter() - start

        def text_load():
            with open(text_path) as fh:
                return BatchTrace.from_records(list(load_trace(fh)))

        def columnar_load():
            with ColumnarTraceReader(col_path, use_mmap=False) as reader:
                return reader.batch_trace()

        text_load_s = _time_best(text_load, repeats)
        col_load_s = _time_best(columnar_load, repeats)

        # Bit-identity between the two load paths, checked on the real
        # files the timings used.
        text_trace = text_load()
        col_trace = columnar_load()
        for field in (
            "addr", "size", "is_store", "gap", "value_word", "value_mask",
        ):
            if not np.array_equal(
                getattr(text_trace, field), getattr(col_trace, field)
            ):
                raise EquivalenceError(
                    f"columnar load diverged from the text round-trip "
                    f"on column {field!r}"
                )

        # Scalar equivalence through the full columnar path (chunked
        # replay + record decode for the scalar twin).
        checked = min(equivalence_len, trace_len)
        if checked:
            check_path = base / "equivalence-prefix.coltrace"
            with ColumnarTraceReader(col_path, use_mmap=False) as reader:
                prefix = []
                for record in reader.records():
                    prefix.append(record)
                    if len(prefix) >= checked:
                        break
            write_trace(
                prefix, check_path, chunk_records=max(1, checked // 4)
            )
            with ColumnarTraceReader(check_path) as reader:
                FastReplay(equivalence="always").run(reader)

        # Chunked replay throughput straight off the reader.
        engine_holder = FastReplay(equivalence="never")

        def replay_chunked():
            with ColumnarTraceReader(col_path, verify=False) as reader:
                engine_holder.engine.replay_chunks(reader.iter_chunks())

        replay_chunked()  # warm
        replay_s = _time_best(replay_chunked, repeats)

        # Content-addressed cache: first request generates and writes,
        # the second decodes the cached file.
        cache = TraceCache(base / "cache")
        start = time.perf_counter()
        cache.get_or_create(benchmark, seed, trace_len)
        cache_miss_s = time.perf_counter() - start
        start = time.perf_counter()
        cached_path = cache.get_or_create(benchmark, seed, trace_len)
        with ColumnarTraceReader(cached_path, use_mmap=False) as reader:
            reader.batch_trace()
        cache_hit_s = time.perf_counter() - start

        report = {
            "mode": "tracestore",
            "benchmark": benchmark,
            "trace_len": trace_len,
            "seed": seed,
            "repeats": repeats,
            "chunk_records": chunk_records,
            "equivalence_checked_references": checked,
            "columnar_bytes": col_path.stat().st_size,
            "text_bytes": text_path.stat().st_size,
            "gen_columnar_seconds": gen_columnar_s,
            "gen_text_seconds": gen_text_s,
            "writer_peak_buffered": peak_buffered,
            "text_load_seconds": text_load_s,
            "columnar_load_seconds": col_load_s,
            "load_speedup": text_load_s / col_load_s,
            "chunked_replay_seconds": replay_s,
            "chunked_replay_ops_per_sec": trace_len / replay_s,
            "cache_miss_seconds": cache_miss_s,
            "cache_hit_seconds": cache_hit_s,
            "columns_identical": True,
        }
    if registry is not None:
        registry.gauge("bench.tracestore_load_speedup").set(
            report["load_speedup"]
        )
        registry.gauge("bench.tracestore_replay_ops_per_sec").set(
            report["chunked_replay_ops_per_sec"]
        )
    return report


def run_campaign_bench(
    scheme: str = "cppc",
    benchmark: str = "gcc",
    *,
    trials: int = 200,
    warmup: int = 12_000,
    post: int = 250,
    seed: int = 0,
    registry=None,
) -> dict:
    """Time the legacy vs. snapshot-fork campaign and return the report.

    Runs the same shared-warmup campaign twice — once through the legacy
    warm-every-trial loop, once through the snapshot-fork fast path —
    and verifies per-trial bit-identity before reporting throughput.
    The fast timing includes building the warm snapshot (the cache is
    cleared first), so the reported ratio is what a cold campaign sees.
    """
    from ..faults.campaign import CampaignConfig, FaultCampaign, Outcome
    from ..faults.warmstate import clear_warm_cache

    if trials < 1:
        raise ValueError("trials must be positive")
    config = CampaignConfig(
        scheme_factory=scheme_factory(scheme),
        benchmark=benchmark,
        trials=trials,
        warmup_references=warmup,
        post_fault_references=post,
        seed=seed,
        shared_warmup=True,
    )

    start = time.perf_counter()
    legacy = FaultCampaign(config).run()
    legacy_s = time.perf_counter() - start

    clear_warm_cache()
    start = time.perf_counter()
    fast = FaultCampaign(config, fast=True).run()
    fast_s = time.perf_counter() - start

    mismatches = [
        f"trial {i}: fast={vars(b)!r} legacy={vars(a)!r}"
        for i, (a, b) in enumerate(zip(legacy.trials, fast.trials))
        if vars(a) != vars(b)
    ]
    if mismatches:
        raise EquivalenceError(
            "snapshot-fork campaign diverged from the legacy loop:\n  "
            + "\n  ".join(mismatches[:10]),
            mismatches=mismatches,
        )

    report = {
        "mode": "campaign",
        "scheme": scheme,
        "benchmark": benchmark,
        "trials": trials,
        "warmup_references": warmup,
        "post_fault_references": post,
        "seed": seed,
        "legacy_seconds": legacy_s,
        "fast_seconds": fast_s,
        "legacy_trials_per_sec": trials / legacy_s,
        "fast_trials_per_sec": trials / fast_s,
        "speedup": legacy_s / fast_s,
        "outcomes": {o.value: legacy.counts[o] for o in Outcome},
        "identical_trials": True,
    }
    if registry is not None:
        registry.gauge("bench.campaign_speedup").set(report["speedup"])
        registry.gauge("bench.campaign_fast_trials_per_sec").set(
            report["fast_trials_per_sec"]
        )
    return report


def run_reliability_bench(
    *,
    mc_samples: int = 200_000,
    scalar_samples: int = 64,
    shards: int = 1,
    num_pairs: int = 1,
    parity_ways: int = 8,
    cache_bytes: int = 8192,
    equivalence_subset: int = 48,
    repeats: int = 3,
    seed: int = 0,
    registry=None,
) -> dict:
    """Time the vectorized vs. scalar double-fault engine; return report.

    Correctness first, following the other fast-path benches:

    * **live equivalence** — a randomized ``equivalence_subset`` of the
      kernel's sampled fault pairs is replayed through full
      ``Cache``/``CppcProtection`` recovery and compared *per sample*
      (the subset deliberately front-loads the rare DUE/miscorrection
      verdicts), for the benched geometry and a second multi-pair one;
    * **shard-merge determinism** — the same seed estimated through one
      shard and through several must produce the identical outcome
      histogram, bit for bit.

    Both paths are then timed (best of ``repeats``) on their own sample
    budgets and normalized to samples/sec before the ``mc_speedup``
    ratio; the collision probability is capacity- and value-independent,
    so the two budgets measure the same estimator at different scales.
    """
    from ..reliability import fastmc, montecarlo

    if mc_samples < 1 or scalar_samples < 1:
        raise ValueError("sample budgets must be positive")

    equivalence = []
    if equivalence_subset:
        geometries = [(num_pairs, parity_ways)]
        if (4, parity_ways) not in geometries:
            geometries.append((4, parity_ways))
        for pairs, ways in geometries:
            summary = fastmc.cross_check_live(
                samples=512,
                subset=equivalence_subset,
                parity_ways=ways,
                num_pairs=pairs,
                seed=seed,
                cache_bytes=min(cache_bytes, 1024),
            )
            equivalence.append(summary)

    probe = max(1, min(mc_samples, 20_000))
    single = fastmc.estimate_double_fault_failure_fast(
        samples=probe,
        parity_ways=parity_ways,
        num_pairs=num_pairs,
        seed=seed,
        cache_bytes=cache_bytes,
        shards=1,
    )
    sharded = fastmc.estimate_double_fault_failure_fast(
        samples=probe,
        parity_ways=parity_ways,
        num_pairs=num_pairs,
        seed=seed,
        cache_bytes=cache_bytes,
        shards=max(4, shards),
    )
    if vars(single) != vars(sharded):
        raise EquivalenceError(
            f"shard merge is not deterministic: 1 shard {vars(single)!r} "
            f"vs {max(4, shards)} shards {vars(sharded)!r}",
            mismatches=[f"{vars(single)!r} != {vars(sharded)!r}"],
        )

    estimate_holder = {}

    def vector_once():
        estimate_holder["value"] = fastmc.estimate_double_fault_failure_fast(
            samples=mc_samples,
            parity_ways=parity_ways,
            num_pairs=num_pairs,
            seed=seed,
            cache_bytes=cache_bytes,
            shards=shards,
        )

    vector_once()  # warm NumPy / image construction
    vector_s = _time_best(vector_once, repeats)
    scalar_s = _time_best(
        lambda: montecarlo.estimate_double_fault_failure(
            samples=scalar_samples,
            parity_ways=parity_ways,
            num_pairs=num_pairs,
            seed=seed,
            cache_bytes=cache_bytes,
        ),
        repeats,
    )

    estimate = estimate_holder["value"]
    ci_low, ci_high = estimate.failure_rate_ci()
    vector_sps = mc_samples / vector_s
    scalar_sps = scalar_samples / scalar_s
    report = {
        "mode": "reliability",
        "mc_samples": mc_samples,
        "scalar_samples": scalar_samples,
        "shards": shards,
        "num_pairs": num_pairs,
        "parity_ways": parity_ways,
        "cache_bytes": cache_bytes,
        "seed": seed,
        "repeats": repeats,
        "vector_seconds": vector_s,
        "scalar_seconds": scalar_s,
        "vector_samples_per_sec": vector_sps,
        "scalar_samples_per_sec": scalar_sps,
        "mc_speedup": vector_sps / scalar_sps,
        "failure_rate": estimate.failure_rate,
        "failure_rate_ci95": [ci_low, ci_high],
        "sdc_rate": estimate.sdc_rate,
        "analytic": montecarlo.analytical_collision_probability(parity_ways, num_pairs),
        "corrected": estimate.corrected,
        "due": estimate.due,
        "miscorrected": estimate.miscorrected,
        "shard_merge_deterministic": True,
        "equivalence": equivalence,
    }
    if registry is not None:
        registry.gauge("bench.mc_speedup").set(report["mc_speedup"])
        registry.gauge("bench.mc_samples_per_sec").set(vector_sps)
    return report


def run_timing_bench(
    *,
    n_references: int = 12_000,
    warmup_fraction: float = 0.25,
    benchmarks: Optional[Sequence[str]] = None,
    repeats: int = 3,
    seed: int = 0,
    registry=None,
) -> dict:
    """Time the Figure-10 timing fast path vs. the scalar pipeline.

    Correctness first, following the other fast-path benches: for every
    benchmark the batch collector's events, L1/L2 statistics and all
    four schemes' priced :class:`TimingResult` objects must equal the
    scalar ``collect_events``/``time_events`` outputs *bit for bit*
    before anything is timed.

    Both stages then consume pre-generated traces (the scalar path a
    record list, the fast path the equivalent :class:`BatchTrace`) so
    the ratio measures simulation, not workload synthesis — the same
    convention the replay bench uses.  Each stage replays every
    benchmark and prices it under every scheme; best-of-``repeats``
    wall times feed the ``speedup`` ratio.
    """
    import itertools

    from ..memsim import PAPER_CONFIG, MemoryHierarchy
    from ..timing import (
        TIMING_POLICIES,
        collect_events,
        time_events,
        time_events_fast,
    )
    from ..timing.fast import EventColumns, collect_run_fast

    if n_references < 1:
        raise ValueError("timing reference count must be positive")
    names = list(benchmarks) if benchmarks else benchmark_names()
    warmup = int(n_references * warmup_fraction)
    total = n_references + warmup
    policies = {name: factory() for name, factory in TIMING_POLICIES.items()}

    records = {}
    batch_traces = {}
    for name in names:
        recs = list(make_workload(name, seed=seed).records(total))
        records[name] = recs
        batch_traces[name] = BatchTrace.from_records(recs)

    def scalar_events(name):
        hierarchy = MemoryHierarchy(PAPER_CONFIG)
        it = iter(records[name])
        if warmup:
            collect_events(itertools.islice(it, warmup), hierarchy)
            hierarchy.l1d.reset_stats()
            hierarchy.l2.reset_stats()
        return collect_events(it, hierarchy), hierarchy

    problems = []
    for name in names:
        run = collect_run_fast(
            batch_traces[name], PAPER_CONFIG, warmup=warmup, equivalence="never"
        )
        events, hierarchy = scalar_events(name)
        prefix = f"{name}: "
        problems += [
            prefix + m
            for m in run.events.mismatches(EventColumns.from_events(events))
        ]
        if hierarchy.l1d.stats != run.l1:
            problems.append(prefix + "L1 statistics diverged")
        if hierarchy.l2.stats != run.l2:
            problems.append(prefix + "L2 statistics diverged")
        for scheme, policy in policies.items():
            scalar_result = time_events(
                events, policy, units_per_block=hierarchy.l1d.units_per_block
            )
            fast_result = time_events_fast(
                run.events, policy, units_per_block=run.units_per_block
            )
            if scalar_result != fast_result:
                problems.append(
                    f"{prefix}{scheme}: {scalar_result!r} != {fast_result!r}"
                )
    if problems:
        raise EquivalenceError(
            "timing fast path diverged from the scalar pipeline",
            mismatches=problems,
        )

    def scalar_stage():
        for name in names:
            events, hierarchy = scalar_events(name)
            for policy in policies.values():
                time_events(
                    events, policy, units_per_block=hierarchy.l1d.units_per_block
                )

    def fast_stage():
        for name in names:
            run = collect_run_fast(
                batch_traces[name],
                PAPER_CONFIG,
                warmup=warmup,
                equivalence="never",
            )
            for policy in policies.values():
                time_events_fast(
                    run.events, policy, units_per_block=run.units_per_block
                )

    fast_stage()  # warm NumPy before the timed runs
    fast_s = _time_best(fast_stage, repeats)
    scalar_s = _time_best(scalar_stage, repeats)

    measured = len(names) * n_references
    report = {
        "mode": "timing",
        "benchmarks": names,
        "references": n_references,
        "warmup": warmup,
        "schemes": list(policies),
        "seed": seed,
        "repeats": repeats,
        "scalar_seconds": scalar_s,
        "fast_seconds": fast_s,
        "speedup": scalar_s / fast_s,
        "fast_references_per_sec": measured / fast_s,
        "equivalence": {
            "benchmarks": len(names),
            "schemes": len(policies),
            "status": "ok",
        },
    }
    if registry is not None:
        registry.gauge("bench.timing_speedup").set(report["speedup"])
        registry.gauge("bench.timing_references_per_sec").set(
            report["fast_references_per_sec"]
        )
    return report


def _timing_main(args, registry) -> int:
    try:
        report = run_timing_bench(
            n_references=args.timing_refs,
            benchmarks=args.timing_benchmarks,
            repeats=args.repeats,
            seed=args.seed,
            registry=registry,
        )
    except EquivalenceError as exc:
        return fail(f"equivalence check FAILED:\n{exc}")
    _apply_baseline(report, "timing", args)
    output = args.output or pathlib.Path("BENCH_timing.json")
    output.write_text(json.dumps(report, indent=2) + "\n")
    emit_metrics(args.emit_metrics, registry)
    print(
        "figure-10 timing, {n} benchmarks x {references} refs x "
        "{schemes} schemes: scalar {scalar_seconds:.2f}s  "
        "fast {fast_seconds:.2f}s  speedup {speedup:.1f}x".format(
            n=len(report["benchmarks"]),
            schemes=len(report["schemes"]),
            **{
                k: v
                for k, v in report.items()
                if k in ("references", "scalar_seconds", "fast_seconds", "speedup")
            },
        )
    )
    print(f"wrote {output}")
    gate_failed = False
    if args.min_timing_speedup and report["speedup"] < args.min_timing_speedup:
        print(
            f"timing speedup {report['speedup']:.1f}x is below "
            f"the required {args.min_timing_speedup:.1f}x",
            file=sys.stderr,
        )
        gate_failed = True
    return resolve_exit(partial=gate_failed)


def _reliability_main(args, registry) -> int:
    try:
        report = run_reliability_bench(
            mc_samples=args.mc_samples,
            scalar_samples=args.scalar_mc_samples,
            shards=args.mc_shards,
            num_pairs=args.mc_pairs,
            parity_ways=args.mc_parity_ways,
            cache_bytes=args.mc_cache_bytes,
            equivalence_subset=args.equivalence_subset,
            repeats=args.repeats,
            seed=args.seed,
            registry=registry,
        )
    except EquivalenceError as exc:
        return fail(f"equivalence check FAILED:\n{exc}")
    _apply_baseline(report, "reliability", args)
    output = args.output or pathlib.Path("BENCH_reliability.json")
    output.write_text(json.dumps(report, indent=2) + "\n")
    emit_metrics(args.emit_metrics, registry)
    print(
        "double-fault p={num_pairs} w={parity_ways}: "
        "scalar {scalar_samples_per_sec:.0f} samples/s  "
        "vector {vector_samples_per_sec:.0f} samples/s  "
        "speedup {mc_speedup:.0f}x  "
        "rate {failure_rate:.4f} (analytic {analytic:.4f})".format(**report)
    )
    print(f"wrote {output}")
    gate_failed = False
    if args.min_mc_speedup and report["mc_speedup"] < args.min_mc_speedup:
        print(
            f"Monte-Carlo speedup {report['mc_speedup']:.1f}x is below "
            f"the required {args.min_mc_speedup:.1f}x",
            file=sys.stderr,
        )
        gate_failed = True
    return resolve_exit(partial=gate_failed)


def _campaign_main(args, registry) -> int:
    try:
        report = run_campaign_bench(
            args.scheme,
            args.benchmark,
            trials=args.trials,
            warmup=args.warmup,
            post=args.post,
            seed=args.seed,
            registry=registry,
        )
    except EquivalenceError as exc:
        return fail(f"equivalence check FAILED:\n{exc}")
    _apply_baseline(report, "campaign", args)
    output = args.output or pathlib.Path("BENCH_campaign.json")
    output.write_text(json.dumps(report, indent=2) + "\n")
    emit_metrics(args.emit_metrics, registry)
    print(
        "{scheme}/{benchmark}: {trials} trials  "
        "legacy {legacy_trials_per_sec:.2f} trials/s  "
        "fast {fast_trials_per_sec:.2f} trials/s  "
        "speedup {speedup:.1f}x".format(**report)
    )
    print(f"wrote {output}")
    gate_failed = False
    if (
        args.min_campaign_speedup
        and report["speedup"] < args.min_campaign_speedup
    ):
        print(
            f"campaign speedup {report['speedup']:.1f}x is below the "
            f"required {args.min_campaign_speedup:.1f}x",
            file=sys.stderr,
        )
        gate_failed = True
    return resolve_exit(partial=gate_failed)


def _tracestore_main(args, registry) -> int:
    try:
        report = run_tracestore_bench(
            args.benchmark,
            args.trace_len,
            equivalence_len=args.equivalence_len,
            repeats=args.repeats,
            seed=args.seed,
            chunk_records=args.chunk_records,
            registry=registry,
        )
    except EquivalenceError as exc:
        return fail(f"equivalence check FAILED:\n{exc}")
    _apply_baseline(report, "tracestore", args)
    output = args.output or pathlib.Path("BENCH_tracestore.json")
    output.write_text(json.dumps(report, indent=2) + "\n")
    emit_metrics(args.emit_metrics, registry)
    print(
        "{benchmark}: {trace_len} refs  "
        "text-load {text_load_seconds:.3f}s  "
        "columnar-load {columnar_load_seconds:.3f}s  "
        "load-speedup {load_speedup:.1f}x  "
        "chunked-replay {chunked_replay_ops_per_sec:.0f} ops/s".format(
            **report
        )
    )
    print(f"wrote {output}")
    gate_failed = False
    if args.min_load_speedup and report["load_speedup"] < args.min_load_speedup:
        print(
            f"columnar load speedup {report['load_speedup']:.1f}x is below "
            f"the required {args.min_load_speedup:.1f}x",
            file=sys.stderr,
        )
        gate_failed = True
    return resolve_exit(partial=gate_failed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace_len < 1:
        parser.error("--trace-len must be positive")
    if args.timing_refs < 1:
        parser.error("--timing-refs must be positive")
    registry = metrics_registry(args.emit_metrics)
    if args.timing:
        return _timing_main(args, registry)
    if args.campaign:
        return _campaign_main(args, registry)
    if args.reliability:
        return _reliability_main(args, registry)
    if args.trace_format == "columnar":
        return _tracestore_main(args, registry)
    try:
        report = run_bench(
            args.benchmark,
            args.trace_len,
            equivalence_len=args.equivalence_len,
            repeats=args.repeats,
            seed=args.seed,
            trace_out=args.trace_out,
            registry=registry,
        )
    except EquivalenceError as exc:
        return fail(f"equivalence check FAILED:\n{exc}")
    _apply_baseline(report, "replay", args)
    output = args.output or pathlib.Path("BENCH_replay.json")
    output.write_text(json.dumps(report, indent=2) + "\n")
    emit_metrics(args.emit_metrics, registry)
    print(
        "{benchmark}: {trace_len} refs  "
        "scalar {scalar_ops_per_sec:.0f} ops/s  "
        "batch {batch_ops_per_sec:.0f} ops/s  "
        "speedup {speedup:.1f}x  "
        "obs-overhead {obs_overhead_ratio:.3f}".format(**report)
    )
    print(f"wrote {output}")
    gate_failed = False
    if args.min_speedup and report["speedup"] < args.min_speedup:
        print(
            f"speedup {report['speedup']:.1f}x is below the required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        gate_failed = True
    if (
        args.max_obs_overhead
        and report["obs_overhead_ratio"] > args.max_obs_overhead
    ):
        print(
            f"disabled-sink overhead {report['obs_overhead_ratio']:.3f} "
            f"exceeds the allowed {args.max_obs_overhead:.3f}",
            file=sys.stderr,
        )
        gate_failed = True
    return resolve_exit(partial=gate_failed)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
