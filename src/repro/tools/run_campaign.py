"""Command-line Monte-Carlo fault-injection campaign.

::

    python -m repro.tools.run_campaign cppc --trials 50 --fault spatial
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..cppc import CppcProtection
from ..faults import CampaignConfig, FaultCampaign, Outcome
from ..memsim import NoProtection, ParityProtection, SecdedProtection
from ..workloads import benchmark_names

SCHEMES = ("cppc", "parity", "secded", "none")


def scheme_factory(name: str):
    """Per-level protection factory for one scheme name."""

    def factory(level, unit_bits):
        if name == "cppc":
            return CppcProtection(data_bits=unit_bits)
        if name == "parity":
            return ParityProtection(data_bits=unit_bits)
        if name == "secded":
            return SecdedProtection(data_bits=unit_bits)
        return NoProtection()

    return factory


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-campaign",
        description="Monte-Carlo fault injection with outcome classification.",
    )
    parser.add_argument("scheme", choices=SCHEMES)
    parser.add_argument("--trials", "-t", type=int, default=30)
    parser.add_argument(
        "--benchmark", choices=benchmark_names(), default="gcc"
    )
    parser.add_argument(
        "--fault", choices=("temporal", "spatial"), default="temporal"
    )
    parser.add_argument(
        "--shape", type=int, nargs=2, default=(8, 8), metavar=("H", "W"),
        help="spatial strike extent (default: 8 8)",
    )
    parser.add_argument(
        "--level", choices=("L1D", "L2"), default="L1D",
        help="cache level to strike (default: L1D)",
    )
    parser.add_argument("--warmup", type=int, default=2000)
    parser.add_argument("--post", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dirty-only", action="store_true",
        help="restrict temporal faults to dirty data",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = CampaignConfig(
        scheme_factory=scheme_factory(args.scheme),
        benchmark=args.benchmark,
        trials=args.trials,
        warmup_references=args.warmup,
        post_fault_references=args.post,
        fault_kind=args.fault,
        spatial_shape=tuple(args.shape),
        dirty_only=args.dirty_only,
        target_level=args.level,
        seed=args.seed,
    )
    result = FaultCampaign(config).run()
    counts = result.counts
    print(f"scheme={args.scheme} benchmark={args.benchmark} "
          f"fault={args.fault} level={args.level} trials={args.trials}")
    for outcome in Outcome:
        print(f"{outcome.value:>10s}: {counts[outcome]:4d} "
              f"({result.rate(outcome):6.1%})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
