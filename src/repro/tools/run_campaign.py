"""Command-line Monte-Carlo fault-injection campaign.

::

    python -m repro.tools.run_campaign cppc --trials 50 --fault spatial

Crash-safe mode: any of ``--jobs/--timeout/--retries/--checkpoint-dir/
--resume`` routes trials through :mod:`repro.runtime` — each trial runs
in a worker subprocess with a wall-clock timeout and retry/backoff, every
finished trial is checkpointed, and an interrupted campaign resumed with
``--resume`` reproduces the uninterrupted result bit-identically.

Chaos mode: ``--chaos [KINDS]`` injects seeded deterministic faults into
the runtime itself (worker kills, wedges, delays, checkpoint I/O errors)
to exercise the recovery machinery; ``--quarantine``,
``--adaptive-timeout``, and ``--heartbeat SECONDS`` enable the
graceful-degradation layer.  A degraded-but-complete campaign reports a
``degradation`` summary (and still exits 0 unless trials were
quarantined or abandoned).

Exit codes follow :mod:`repro.tools._cli`: 0 complete, 3 partial (some
trials abandoned after retries or quarantined), 1 fatal.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Optional, Sequence

from ..errors import ConfigurationError, ReproError
from ..faults import CampaignConfig, FaultCampaign, Outcome
from ..faults.schemes import SCHEMES, scheme_factory
from ..runtime import (
    CHAOS_KINDS,
    CampaignRuntime,
    ChaosPlan,
    RetryPolicy,
    export_degradation_metrics,
)
from ..workloads import benchmark_names
from ._cli import (
    add_json_argument,
    add_obs_arguments,
    emit_json,
    emit_metrics,
    fail,
    metrics_registry,
    open_sink,
    require_non_negative,
    require_positive,
    resolve_exit,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-campaign",
        description="Monte-Carlo fault injection with outcome classification.",
    )
    parser.add_argument("scheme", choices=SCHEMES)
    parser.add_argument("--trials", "-t", type=int, default=30)
    parser.add_argument(
        "--benchmark", choices=benchmark_names(), default="gcc"
    )
    parser.add_argument(
        "--fault", choices=("temporal", "spatial"), default="temporal"
    )
    parser.add_argument(
        "--shape", type=int, nargs=2, default=(8, 8), metavar=("H", "W"),
        help="spatial strike extent (default: 8 8)",
    )
    parser.add_argument(
        "--level", choices=("L1D", "L2"), default="L1D",
        help="cache level to strike (default: L1D)",
    )
    parser.add_argument("--warmup", type=int, default=2000)
    parser.add_argument("--post", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dirty-only", action="store_true",
        help="restrict temporal faults to dirty data",
    )
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=False,
        help="snapshot-fork fast path: share one warmup across trials, "
             "simulate it once, and fork each trial from the snapshot "
             "(implies a shared warmup seed; bit-identical to running "
             "the same shared-warmup campaign trial by trial)",
    )
    parser.add_argument(
        "--fast-equivalence", choices=FaultCampaign.EQUIVALENCE_MODES,
        default="never", metavar="MODE",
        help="with --fast, 'always' re-runs every trial on the legacy "
             "path and fails on any divergence (default: never)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the campaign under cProfile and print the top 20 "
             "functions by cumulative time",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="also dump raw pstats data to FILE (implies --profile)",
    )
    runtime = parser.add_argument_group(
        "crash-safe runtime",
        "run trials in isolated worker subprocesses with timeout, retry, "
        "and resumable checkpoints",
    )
    runtime.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker subprocesses (default: in-process sequential loop)",
    )
    runtime.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock budget; a wedged trial is killed and "
             "classified TRIAL_TIMEOUT",
    )
    runtime.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for crashed/timed-out trials (default: 2)",
    )
    runtime.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="record every finished trial here (JSONL + manifest), "
             "keyed by config digest",
    )
    runtime.add_argument(
        "--resume", action="store_true",
        help="skip trials already recorded under --checkpoint-dir",
    )
    chaos = parser.add_argument_group(
        "chaos & graceful degradation",
        "inject deterministic faults into the runtime itself and degrade "
        "gracefully instead of failing the run",
    )
    chaos.add_argument(
        "--chaos", nargs="?", const="all", default=None, metavar="KINDS",
        help="inject seeded runtime faults; KINDS is 'all' or a "
             f"comma-list from {','.join(CHAOS_KINDS)} (implies the "
             "crash-safe runtime)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="seed of the chaos plan (default: --seed)",
    )
    chaos.add_argument(
        "--chaos-rate", type=float, default=0.25, metavar="P",
        help="probability a trial receives a fault (default: %(default)s)",
    )
    chaos.add_argument(
        "--quarantine", action="store_true",
        help="circuit breaker: a trial that exhausts its retries is "
             "quarantined (reported, exit 3) instead of failing the run "
             "outright",
    )
    chaos.add_argument(
        "--adaptive-timeout", action="store_true",
        help="tighten the per-trial deadline from completed-trial "
             "duration percentiles",
    )
    chaos.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="kill a worker whose heartbeat stalls this long "
             "(liveness, distinct from --timeout wall clock)",
    )
    add_json_argument(parser)
    add_obs_arguments(parser)
    return parser


def _wants_runtime(args) -> bool:
    return any(
        value is not None
        for value in (args.jobs, args.timeout, args.retries,
                      args.checkpoint_dir, args.chaos, args.heartbeat)
    ) or args.resume or args.quarantine or args.adaptive_timeout


def _validate_args(args) -> None:
    """Typed validation at the CLI boundary (before any work starts)."""
    require_positive(
        trials=args.trials,
        jobs=args.jobs,
        timeout=args.timeout,
        heartbeat=args.heartbeat,
    )
    require_non_negative(
        warmup=args.warmup,
        post=args.post,
        retries=args.retries,
        chaos_rate=args.chaos_rate,
    )
    if args.chaos_rate > 1.0:
        raise ConfigurationError(
            f"--chaos-rate must be within [0, 1], got {args.chaos_rate!r}"
        )


def _chaos_plan(args):
    if args.chaos is None:
        return None
    seed = args.chaos_seed if args.chaos_seed is not None else args.seed
    return ChaosPlan.from_spec(args.chaos, seed=seed, rate=args.chaos_rate)


def _summary_payload(args, result) -> dict:
    return {
        "scheme": args.scheme,
        "benchmark": args.benchmark,
        "fault": args.fault,
        "level": args.level,
        "seed": args.seed,
        "trials": result.config.trials,
        "completed": result.completed,
        "failed": result.failed,
        "counts": {o.value: result.counts[o] for o in Outcome},
        "rates": result.summary(),
        "failures": [dataclasses.asdict(f) for f in result.failures],
        "complete": result.complete,
        "degradation": result.degradation,
    }


def _print_profile(profiler, profile_out) -> None:
    import pstats

    stats = pstats.Stats(profiler)
    if profile_out is not None:
        stats.dump_stats(profile_out)
        print(f"profile data written to {profile_out}")
    stats.sort_stats("cumulative").print_stats(20)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiling = args.profile or args.profile_out is not None
    try:
        _validate_args(args)
        chaos = _chaos_plan(args)
        config = CampaignConfig(
            scheme_factory=scheme_factory(args.scheme),
            benchmark=args.benchmark,
            trials=args.trials,
            warmup_references=args.warmup,
            post_fault_references=args.post,
            fault_kind=args.fault,
            spatial_shape=tuple(args.shape),
            dirty_only=args.dirty_only,
            target_level=args.level,
            seed=args.seed,
            shared_warmup=args.fast,
        )
    except ConfigurationError as exc:
        return fail(f"invalid arguments: {exc}")
    registry = metrics_registry(args.emit_metrics)
    profiler = None
    if profiling:
        import cProfile

        profiler = cProfile.Profile()
    try:
        with open_sink(args.trace_out) as sink:
            campaign = FaultCampaign(
                config, obs=sink, fast=args.fast,
                fast_equivalence=args.fast_equivalence,
            )
            if profiler is not None:
                profiler.enable()
            try:
                if _wants_runtime(args):
                    retry = (
                        RetryPolicy(max_attempts=args.retries + 1)
                        if args.retries is not None
                        else RetryPolicy()
                    )
                    with CampaignRuntime(
                        jobs=args.jobs or 1,
                        timeout_s=args.timeout,
                        retry=retry,
                        checkpoint_dir=args.checkpoint_dir,
                        resume=args.resume,
                        chaos=chaos,
                        heartbeat_timeout_s=args.heartbeat,
                        adaptive_timeout=args.adaptive_timeout,
                        quarantine=args.quarantine,
                    ) as runtime:
                        result = campaign.run(runtime=runtime)
                else:
                    result = campaign.run()
            finally:
                if profiler is not None:
                    profiler.disable()
    except ReproError as exc:
        return fail(f"campaign failed: {exc}")
    if registry is not None:
        result.export_metrics(registry)
        if result.degradation is not None:
            export_degradation_metrics(registry, result.degradation)
        if args.fast:
            from ..faults.warmstate import warm_cache

            warm_cache().export_metrics(registry, prefix="warm_cache")
    if profiler is not None:
        _print_profile(profiler, args.profile_out)

    counts = result.counts
    print(f"scheme={args.scheme} benchmark={args.benchmark} "
          f"fault={args.fault} level={args.level} trials={args.trials}")
    for outcome in Outcome:
        print(f"{outcome.value:>10s}: {counts[outcome]:4d} "
              f"({result.rate(outcome):6.1%})")
    if result.failures:
        print(f"{'failed':>10s}: {result.failed:4d} "
              f"(abandoned after retries)")
        for failure in result.failures:
            print(f"            trial {failure.trial_index} "
                  f"[{failure.kind} x{failure.attempts}]: {failure.message}")
    degradation = result.degradation
    if degradation is not None and degradation.get("degraded"):
        executor_counts = degradation.get("executor", {})
        absorbed = " ".join(
            f"{key}={executor_counts.get(key, 0)}"
            for key in ("lane_kills", "timeouts", "heartbeat_kills",
                        "crashes", "quarantined")
            if executor_counts.get(key)
        )
        checkpoint = degradation.get("checkpoint", {})
        for key in ("io_retries", "torn_tail_dropped"):
            if checkpoint.get(key):
                absorbed += f" checkpoint_{key}={checkpoint[key]}"
        chaos_counts = executor_counts.get("chaos_injected") or {}
        injected = sum(chaos_counts.values())
        print(f"degraded: absorbed {absorbed.strip()}"
              + (f" (chaos injected: {injected})" if injected else ""))
        for entry in degradation.get("quarantined", ()):
            print(f"            quarantined trial {entry['trial']} "
                  f"[{entry.get('cause')} x{entry.get('attempts')}]")
    emit_json(args.json, _summary_payload(args, result))
    emit_metrics(args.emit_metrics, registry)
    return resolve_exit(partial=not result.complete)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
