"""Command-line experiment runner: regenerate paper tables and figures.

::

    python -m repro.tools.run_experiment fig11 --references 60000
    python -m repro.tools.run_experiment all -n 200000 --output results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from ..harness import (
    figure10,
    figure11,
    figure12,
    run_all_benchmarks,
    table2,
    table3,
)
from ..harness.reporting import format_table
from ..reliability import (
    analytical_collision_probability,
    estimate_double_fault_failure_fast,
)
from ..workloads import benchmark_names
from ._cli import add_obs_arguments, emit_metrics, metrics_registry, open_sink

EXPERIMENTS = (
    "fig10", "fig11", "fig12", "table2", "table3", "table3mc", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-experiment",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--references", "-n", type=int, default=60_000,
        help="trace length per benchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    parser.add_argument(
        "--benchmarks", nargs="+", choices=benchmark_names(), default=None,
        help="subset of benchmarks (default: all fifteen)",
    )
    parser.add_argument(
        "--output", "-o", type=pathlib.Path, default=None,
        help="directory to archive the tables into (optional)",
    )
    parser.add_argument(
        "--mc-samples", type=int, default=200_000,
        help="fault-pair samples per geometry for the table3mc "
        "empirical collision table (default: %(default)s)",
    )
    add_obs_arguments(parser)
    return parser


def table3mc_text(samples: int = 200_000, seed: int = 0) -> str:
    """Empirical double-fault collision table (Table 3's core claim).

    One row per register-pair count: the ``1/(p*w)`` analytic collision
    probability next to the measured failure rate of the vectorized
    Monte-Carlo engine, its Wilson 95% interval, and the silent-
    miscorrection (aliasing) rate — which must vanish at eight pairs,
    where the pair partition makes same-way spatial mimicry impossible.
    """
    rows = []
    for num_pairs in (1, 2, 4, 8):
        estimate = estimate_double_fault_failure_fast(
            samples=samples, num_pairs=num_pairs, seed=seed
        )
        ci_low, ci_high = estimate.failure_rate_ci()
        rows.append(
            [
                num_pairs,
                analytical_collision_probability(8, num_pairs),
                estimate.failure_rate,
                f"[{ci_low:.4f}, {ci_high:.4f}]",
                estimate.sdc_rate,
            ]
        )
    return format_table(
        ["pairs", "analytic 1/(p*w)", "measured", "95% CI", "SDC rate"],
        rows,
        title=f"Empirical double-fault collision rate (n={samples})",
        precision=4,
    )


def _tables_for(experiment: str, runs) -> dict:
    tables = {}
    if experiment in ("fig10", "all"):
        tables["fig10"] = figure10(runs).to_text()
    if experiment in ("fig11", "all"):
        tables["fig11"] = figure11(runs).to_text()
    if experiment in ("fig12", "all"):
        tables["fig12"] = figure12(runs).to_text()
    if experiment in ("table2", "all"):
        tables["table2"] = table2(runs).to_text()
    if experiment in ("table3", "all"):
        t2 = table2(runs)
        measured = table3(
            l1_inputs=t2.reliability_inputs("L1"),
            l2_inputs=t2.reliability_inputs("L2"),
        )
        tables["table3"] = (
            table3().to_text()
            + "\n\n(with this run's measured Table 2 inputs)\n"
            + measured.to_text()
        )
    return tables


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = metrics_registry(args.emit_metrics)
    tables = {}
    if args.experiment == "table3mc":
        # Pure Monte-Carlo: no benchmark traces needed, so skip the
        # (much slower) full-suite simulation entirely.
        runs = []
    else:
        with open_sink(args.trace_out) as sink:
            runs = run_all_benchmarks(
                n_references=args.references, seed=args.seed,
                benchmarks=args.benchmarks, obs=sink,
            )
        if registry is not None:
            for run in runs:
                run.l1.export_metrics(registry, prefix=f"{run.name}.l1.")
                run.l2.export_metrics(registry, prefix=f"{run.name}.l2.")
        tables = _tables_for(args.experiment, runs)
    if args.experiment in ("table3mc", "all"):
        tables["table3mc"] = table3mc_text(args.mc_samples, args.seed)
    for name, text in tables.items():
        print(text)
        print()
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")
    if args.output is not None:
        print(f"archived {len(tables)} table(s) under {args.output}",
              file=sys.stderr)
    emit_metrics(args.emit_metrics, registry)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
