"""Differential fuzzing entry point (:mod:`repro.crosscheck`).

Clean mode generates scenarios until the time budget expires, runs each
through its differential oracle, ddmin-shrinks any divergence and
writes it as a JSON reproducer under ``--corpus-dir``::

    python -m repro.tools.run_fuzz --time-budget 90 --seed 0 \\
        --corpus-dir tests/corpus --json report.json

Self-test mode (``--mutate``) instead plants each named seeded bug
(``--mutate all`` for the full set) and asserts the fuzzer detects it
within its share of the budget — the harness's detection power is
itself the thing under test, so no reproducers are written::

    python -m repro.tools.run_fuzz --mutate all --time-budget 120

Exit codes follow the shared contract (:mod:`repro.tools._cli`):
``EXIT_OK`` for a clean run / every mutation detected, ``EXIT_PARTIAL``
when the run completed but found divergences, ``EXIT_FATAL`` when a
seeded bug went undetected or the run itself failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..crosscheck import (
    DEFAULT_KIND_WEIGHTS,
    SCENARIO_KINDS,
    fuzz,
    oracles,
    resolve_mutations,
    run_mutation_self_test,
)
from ..errors import ReproError
from ._cli import (
    add_json_argument,
    add_obs_arguments,
    emit_json,
    emit_metrics,
    metrics_registry,
    open_sink,
    resolve_exit,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-fuzz",
        description="Differential fuzzing across the repo's redundant "
        "implementations (scalar/batch replay, legacy/fast campaigns, "
        "recovery audit replay, Monte-Carlo vs. analytic models).",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="wall-clock fuzzing budget (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed of the scenario stream (default: 0)",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="write shrunk reproducers here (clean mode only)",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        metavar="KIND[,KIND...]",
        help="restrict scenario kinds (default: all of "
        + ", ".join(SCENARIO_KINDS)
        + ")",
    )
    parser.add_argument(
        "--max-scenarios",
        type=int,
        default=None,
        metavar="N",
        help="stop after N scenarios even if budget remains",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="record raw failing scenarios without ddmin minimization",
    )
    parser.add_argument(
        "--mutate",
        default=None,
        metavar="NAME[,NAME...]|all",
        help="self-test mode: plant each seeded bug and require the "
        "fuzzer to detect it within budget",
    )
    parser.add_argument(
        "--mc-sample-scale",
        type=int,
        default=None,
        metavar="N",
        help="multiply each doublefault scenario's sample budget by N "
        "for the vectorized Monte-Carlo oracle (default: "
        f"{oracles.DOUBLEFAULT_SAMPLE_SCALE}); nightly runs pass a "
        "larger scale for tighter statistical bands",
    )
    add_json_argument(parser)
    add_obs_arguments(parser)
    return parser


def _kind_weights(kinds: Optional[str]) -> Optional[dict]:
    if kinds is None:
        return None
    chosen = [k.strip() for k in kinds.split(",") if k.strip()]
    for kind in chosen:
        if kind not in SCENARIO_KINDS:
            raise ReproError(
                f"unknown scenario kind {kind!r}; expected one of "
                f"{SCENARIO_KINDS}"
            )
    return {k: DEFAULT_KIND_WEIGHTS[k] for k in chosen}


def _mutate_main(args, sink, registry) -> int:
    mutations = resolve_mutations(args.mutate)
    outcomes = run_mutation_self_test(
        mutations,
        seed=args.seed,
        time_budget=args.time_budget,
        obs=sink,
        metrics=registry,
    )
    missed = [o for o in outcomes if not o.detected]
    for o in outcomes:
        status = "detected" if o.detected else "MISSED"
        line = (
            f"{o.mutation:26s} {status:9s} "
            f"({o.scenarios_run} scenarios, {o.elapsed_seconds:.1f}s)"
        )
        if o.detail:
            line += f"  {o.detail}"
        print(line)
    emit_json(
        args.json,
        {
            "mode": "mutate",
            "seed": args.seed,
            "time_budget": args.time_budget,
            "mc_sample_scale": oracles.DOUBLEFAULT_SAMPLE_SCALE,
            "mutations": [o.snapshot() for o in outcomes],
            "missed": [o.mutation for o in missed],
        },
    )
    if missed:
        print(
            f"{len(missed)}/{len(outcomes)} seeded bug(s) went undetected: "
            + ", ".join(o.mutation for o in missed),
            file=sys.stderr,
        )
    return resolve_exit(fatal=bool(missed))


def _fuzz_main(args, sink, registry) -> int:
    report = fuzz(
        seed=args.seed,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        kind_weights=_kind_weights(args.kinds),
        max_scenarios=args.max_scenarios,
        shrink=not args.no_shrink,
        obs=sink,
        metrics=registry,
    )
    kinds = "  ".join(
        f"{kind}={count}" for kind, count in sorted(report.by_kind.items())
    )
    print(
        f"{report.scenarios_run} scenarios in "
        f"{report.elapsed_seconds:.1f}s  ({kinds})"
    )
    for finding in report.findings:
        where = f" -> {finding.reproducer}" if finding.reproducer else ""
        print(
            f"DIVERGENCE at scenario {finding.index} "
            f"({finding.scenario.kind}){where}",
            file=sys.stderr,
        )
        for detail in finding.divergences[0].details[:5]:
            print(f"  {detail}", file=sys.stderr)
    if report.clean:
        print("no divergences")
    payload = report.snapshot()
    payload["mc_sample_scale"] = oracles.DOUBLEFAULT_SAMPLE_SCALE
    emit_json(args.json, payload)
    return resolve_exit(partial=not report.clean)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.time_budget <= 0:
        parser.error("--time-budget must be positive")
    if args.mc_sample_scale is not None:
        if args.mc_sample_scale < 1:
            parser.error("--mc-sample-scale must be >= 1")
        # The doublefault oracle reads the module attribute per scenario,
        # so a larger nightly budget needs no plumbing beyond this.
        oracles.DOUBLEFAULT_SAMPLE_SCALE = args.mc_sample_scale
    registry = metrics_registry(args.emit_metrics)
    try:
        with open_sink(args.trace_out) as sink:
            if args.mutate is not None:
                code = _mutate_main(args, sink, registry)
            else:
                code = _fuzz_main(args, sink, registry)
    except ReproError as exc:
        print(f"fuzz run failed: {exc}", file=sys.stderr)
        return resolve_exit(fatal=True)
    emit_metrics(args.emit_metrics, registry)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
