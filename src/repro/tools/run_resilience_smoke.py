"""Kill-and-resume smoke: SIGKILL a campaign mid-run, resume, compare.

::

    python -m repro.tools.run_resilience_smoke --trials 8

The CI campaign-resilience job runs this end-to-end drill:

1. run a reference campaign to completion (checkpointed);
2. launch the identical campaign as a child ``run_campaign`` process
   against a second checkpoint directory, wait until at least one trial
   is durably recorded, then SIGKILL the whole process tree;
3. resume the interrupted campaign with ``--resume``;
4. assert the resumed :class:`CampaignResult` summary is bit-identical
   to the reference and that the checkpoint recorded fewer trials than
   the campaign total before the kill (i.e. the kill interrupted real
   work).

Exit code 0 on success, 1 on any mismatch (per :mod:`repro.tools._cli`).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from ..faults import CampaignConfig, FaultCampaign, scheme_factory
from ..runtime import CampaignRuntime, campaign_digest
from ._cli import (
    EXIT_OK,
    add_obs_arguments,
    emit_metrics,
    fail,
    metrics_registry,
    open_sink,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-resilience-smoke",
        description="SIGKILL a checkpointed campaign mid-run and prove "
        "--resume reproduces the uninterrupted result.",
    )
    parser.add_argument("--scheme", default="parity")
    parser.add_argument("--benchmark", default="gzip")
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=800)
    parser.add_argument("--post", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workdir", default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--kill-after-records", type=int, default=1,
        help="SIGKILL once this many trials are durably recorded",
    )
    add_obs_arguments(parser)
    return parser


def _campaign_args(args, checkpoint_dir: Path) -> list:
    return [
        sys.executable, "-m", "repro.tools.run_campaign", args.scheme,
        "--benchmark", args.benchmark,
        "--trials", str(args.trials),
        "--warmup", str(args.warmup),
        "--post", str(args.post),
        "--seed", str(args.seed),
        "--dirty-only",
        "--jobs", "1",
        "--checkpoint-dir", str(checkpoint_dir),
    ]


def _count_records(log_path: Path) -> int:
    if not log_path.exists():
        return 0
    return sum(1 for line in log_path.read_text().splitlines() if line)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = metrics_registry(args.emit_metrics)
    with open_sink(args.trace_out) as sink:
        status = _run(args, sink, registry)
    emit_metrics(args.emit_metrics, registry)
    return status


def _run(args, sink, registry) -> int:
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="repro-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    config = CampaignConfig(
        scheme_factory=scheme_factory(args.scheme),
        benchmark=args.benchmark,
        trials=args.trials,
        warmup_references=args.warmup,
        post_fault_references=args.post,
        dirty_only=True,
        seed=args.seed,
    )
    digest = campaign_digest(config)

    # 1. Uninterrupted reference run.
    with CampaignRuntime(
        jobs=1, checkpoint_dir=workdir / "reference"
    ) as runtime:
        reference = FaultCampaign(config, obs=sink).run(runtime=runtime)
    if not reference.complete:
        return fail("reference campaign did not complete")
    print(f"reference summary: {reference.summary()}")

    # 2. Launch the same campaign as a child process and SIGKILL it once
    #    at least --kill-after-records trials are durable.
    interrupted_dir = workdir / "interrupted"
    log_path = interrupted_dir / digest[:16] / "trials.jsonl"
    child = subprocess.Popen(
        _campaign_args(args, interrupted_dir),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=os.environ.copy(),
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if _count_records(log_path) >= args.kill_after_records:
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        if child.poll() is not None:
            return fail(
                "campaign finished before it could be killed; increase "
                "--trials or workload size"
            )
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup path
            child.kill()
            child.wait(timeout=30)

    recorded = _count_records(log_path)
    print(f"killed child after {recorded} durable trial(s)")
    if sink.enabled:
        sink.emit(
            "smoke", "killed",
            {"durable_trials": recorded, "configured_trials": args.trials},
        )
    if recorded >= args.trials:
        return fail("kill landed too late: every trial was already recorded")

    # 3. Resume.
    with CampaignRuntime(
        jobs=1, checkpoint_dir=interrupted_dir, resume=True
    ) as runtime:
        resumed = FaultCampaign(config, obs=sink).run(runtime=runtime)

    # 4. Bit-identical equivalence: same per-trial outcomes, same rates.
    reference_trials = [vars(t) for t in reference.trials]
    resumed_trials = [vars(t) for t in resumed.trials]
    if resumed_trials != reference_trials:
        return fail("resumed per-trial outcomes differ from reference")
    if resumed.summary() != reference.summary():
        return fail("resumed summary differs from reference")
    if resumed.failures or not resumed.complete:
        return fail("resumed campaign is not complete")
    print("resume matches uninterrupted reference: "
          + json.dumps(resumed.summary(), sort_keys=True))
    if registry is not None:
        resumed.export_metrics(registry)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
