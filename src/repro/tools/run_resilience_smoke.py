"""Chaos-drill matrix: prove the runtime degrades gracefully end-to-end.

::

    python -m repro.tools.run_resilience_smoke --trials 8
    python -m repro.tools.run_resilience_smoke --drill all

Each ``--drill`` is one end-to-end recovery proof (the CI chaos-drill
job runs them as a matrix):

* ``kill`` (default) — SIGKILL a checkpointed child campaign mid-run,
  resume with ``--resume``, assert the resumed result is bit-identical
  to an uninterrupted reference and that the kill interrupted real work.
* ``wedge`` — every trial wedges on its first attempt
  (:class:`~repro.runtime.ChaosPlan`), the wall-clock timeout kills the
  lane, the retry succeeds; assert bit-identity to a chaos-free
  sequential baseline plus a degradation report that owns up to the
  timeouts.
* ``torn-checkpoint`` — tear the final checkpoint record mid-line (a
  crash between ``write`` and ``fsync``), resume; assert the loader
  drops the torn tail with a :class:`~repro.errors.CheckpointWarning`,
  re-executes that trial, and reproduces the reference bit-identically.
* ``enospc`` — every checkpoint append hits an injected ``ENOSPC``
  once; assert the appender's truncate-and-retry absorbs all of them
  (``io_retries`` counted in the degradation report) and the result
  matches the baseline.
* ``overhead`` — ratio gate: interleaved best-of timing of the runtime
  with the whole resilience stack armed-but-idle (heartbeat, adaptive
  deadlines, quarantine, chaos at rate 0) against the plain runtime;
  fails (exit 3) when the idle machinery costs more than
  ``--max-chaos-overhead``.
* ``all`` — every drill above, worst exit code wins.

Exit codes follow :mod:`repro.tools._cli`: 0 all drills pass, 3 a ratio
gate failed, 1 any recovery proof failed.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import warnings
from pathlib import Path
from typing import Optional, Sequence

from ..errors import CheckpointWarning
from ..faults import CampaignConfig, FaultCampaign, scheme_factory
from ..runtime import CampaignRuntime, ChaosPlan, RetryPolicy, campaign_digest
from ._cli import (
    EXIT_FATAL,
    EXIT_OK,
    EXIT_PARTIAL,
    add_obs_arguments,
    emit_metrics,
    fail,
    metrics_registry,
    open_sink,
)

DRILLS = ("kill", "wedge", "torn-checkpoint", "enospc", "overhead", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-resilience-smoke",
        description="Chaos-drill matrix: inject runtime faults end-to-end "
        "and prove recovery reproduces the undisturbed result.",
    )
    parser.add_argument(
        "--drill", choices=DRILLS, default="kill",
        help="which recovery proof to run (default: %(default)s)",
    )
    parser.add_argument("--scheme", default="parity")
    parser.add_argument("--benchmark", default="gzip")
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=800)
    parser.add_argument("--post", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the injected chaos plans (default: %(default)s)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--kill-after-records", type=int, default=1,
        help="kill drill: SIGKILL once this many trials are durable",
    )
    parser.add_argument(
        "--max-chaos-overhead", type=float, default=1.5, metavar="RATIO",
        help="overhead drill: fail when idle resilience machinery costs "
        "more than this ratio over the plain runtime "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="overhead drill: interleaved best-of repetitions "
        "(default: %(default)s)",
    )
    add_obs_arguments(parser)
    return parser


def _campaign_args(args, checkpoint_dir: Path) -> list:
    return [
        sys.executable, "-m", "repro.tools.run_campaign", args.scheme,
        "--benchmark", args.benchmark,
        "--trials", str(args.trials),
        "--warmup", str(args.warmup),
        "--post", str(args.post),
        "--seed", str(args.seed),
        "--dirty-only",
        "--jobs", "1",
        "--checkpoint-dir", str(checkpoint_dir),
    ]


def _count_records(log_path: Path) -> int:
    if not log_path.exists():
        return 0
    return sum(1 for line in log_path.read_text().splitlines() if line)


def _config(args) -> CampaignConfig:
    return CampaignConfig(
        scheme_factory=scheme_factory(args.scheme),
        benchmark=args.benchmark,
        trials=args.trials,
        warmup_references=args.warmup,
        post_fault_references=args.post,
        dirty_only=True,
        seed=args.seed,
    )


def _trial_rows(result) -> list:
    return [vars(t) for t in result.trials]


def _check_equivalence(name: str, reference, survived) -> Optional[int]:
    """Exit code when ``survived`` diverges from ``reference``, else None."""
    if _trial_rows(survived) != _trial_rows(reference):
        return fail(f"{name}: per-trial outcomes diverged from reference")
    if survived.summary() != reference.summary():
        return fail(f"{name}: summary diverged from reference")
    if survived.failures or not survived.complete:
        return fail(f"{name}: campaign did not complete cleanly")
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = metrics_registry(args.emit_metrics)
    drills = (
        ("kill", "wedge", "torn-checkpoint", "enospc", "overhead")
        if args.drill == "all"
        else (args.drill,)
    )
    statuses = {}
    with open_sink(args.trace_out) as sink:
        for drill in drills:
            runner = _DRILL_RUNNERS[drill]
            started = time.monotonic()
            status = runner(args, sink, registry)
            elapsed = time.monotonic() - started
            statuses[drill] = status
            print(f"drill {drill}: "
                  f"{'ok' if status == EXIT_OK else f'FAILED ({status})'} "
                  f"[{elapsed:.1f}s]")
    emit_metrics(args.emit_metrics, registry)
    if any(status == EXIT_FATAL for status in statuses.values()):
        return EXIT_FATAL
    if any(status == EXIT_PARTIAL for status in statuses.values()):
        return EXIT_PARTIAL
    return EXIT_OK


def _workdir(args, drill: str) -> Path:
    base = Path(args.workdir or tempfile.mkdtemp(prefix="repro-smoke-"))
    workdir = base / drill
    workdir.mkdir(parents=True, exist_ok=True)
    return workdir


# ----------------------------------------------------------------------
# kill: SIGKILL a child campaign mid-run, resume, compare.
# ----------------------------------------------------------------------
def _drill_kill(args, sink, registry) -> int:
    workdir = _workdir(args, "kill")
    config = _config(args)
    digest = campaign_digest(config)

    # 1. Uninterrupted reference run.
    with CampaignRuntime(
        jobs=1, checkpoint_dir=workdir / "reference"
    ) as runtime:
        reference = FaultCampaign(config, obs=sink).run(runtime=runtime)
    if not reference.complete:
        return fail("reference campaign did not complete")
    print(f"reference summary: {reference.summary()}")

    # 2. Launch the same campaign as a child process and SIGKILL it once
    #    at least --kill-after-records trials are durable.
    interrupted_dir = workdir / "interrupted"
    log_path = interrupted_dir / digest[:16] / "trials.jsonl"
    child = subprocess.Popen(
        _campaign_args(args, interrupted_dir),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=os.environ.copy(),
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if _count_records(log_path) >= args.kill_after_records:
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        if child.poll() is not None:
            return fail(
                "campaign finished before it could be killed; increase "
                "--trials or workload size"
            )
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup path
            child.kill()
            child.wait(timeout=30)

    recorded = _count_records(log_path)
    print(f"killed child after {recorded} durable trial(s)")
    if sink.enabled:
        sink.emit(
            "smoke", "killed",
            {"durable_trials": recorded, "configured_trials": args.trials},
        )
    if recorded >= args.trials:
        return fail("kill landed too late: every trial was already recorded")

    # 3. Resume.
    with CampaignRuntime(
        jobs=1, checkpoint_dir=interrupted_dir, resume=True
    ) as runtime:
        resumed = FaultCampaign(config, obs=sink).run(runtime=runtime)

    # 4. Bit-identical equivalence: same per-trial outcomes, same rates.
    status = _check_equivalence("kill", reference, resumed)
    if status is not None:
        return status
    print("resume matches uninterrupted reference: "
          + json.dumps(resumed.summary(), sort_keys=True))
    if registry is not None:
        resumed.export_metrics(registry)
    return EXIT_OK


# ----------------------------------------------------------------------
# wedge: every trial stalls past the deadline once, retries recover.
# ----------------------------------------------------------------------
def _drill_wedge(args, sink, registry) -> int:
    config = _config(args)
    reference = FaultCampaign(config, obs=sink).run()

    plan = ChaosPlan(
        seed=args.chaos_seed, kinds=("wedge",), rate=1.0, wedge_s=30.0
    )
    with CampaignRuntime(
        jobs=1,
        timeout_s=1.0,
        retry=RetryPolicy(max_attempts=3),
        chaos=plan,
    ) as runtime:
        survived = FaultCampaign(config, obs=sink).run(runtime=runtime)

    status = _check_equivalence("wedge", reference, survived)
    if status is not None:
        return status
    degradation = survived.degradation or {}
    executor = degradation.get("executor", {})
    if executor.get("timeouts", 0) < 1:
        return fail("wedge: no timeout was absorbed — chaos did not fire")
    if executor.get("chaos_injected", {}).get("wedge", 0) < args.trials:
        return fail("wedge: fewer injections than trials")
    print(f"wedge: absorbed {executor['timeouts']} timeout(s), "
          "result bit-identical to chaos-free baseline")
    return EXIT_OK


# ----------------------------------------------------------------------
# torn-checkpoint: tear the final record mid-line, resume, compare.
# ----------------------------------------------------------------------
def _drill_torn_checkpoint(args, sink, registry) -> int:
    workdir = _workdir(args, "torn")
    config = _config(args)
    digest = campaign_digest(config)

    with CampaignRuntime(jobs=1, checkpoint_dir=workdir) as runtime:
        reference = FaultCampaign(config, obs=sink).run(runtime=runtime)
    if not reference.complete:
        return fail("torn-checkpoint: reference campaign did not complete")

    log_path = workdir / digest[:16] / "trials.jsonl"
    data = log_path.read_bytes().rstrip(b"\n")
    cut = data.rfind(b"\n")
    last_line = data[cut + 1:]
    kept = max(1, len(last_line) // 2)
    log_path.write_bytes(data[:cut + 1] + last_line[:kept])
    print(f"tore final checkpoint record ({len(last_line) - kept} bytes lost)")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with CampaignRuntime(
            jobs=1, checkpoint_dir=workdir, resume=True
        ) as runtime:
            resumed = FaultCampaign(config, obs=sink).run(runtime=runtime)
    torn_warnings = [
        w for w in caught if issubclass(w.category, CheckpointWarning)
    ]
    if not torn_warnings:
        return fail("torn-checkpoint: loader did not warn about the tear")

    status = _check_equivalence("torn-checkpoint", reference, resumed)
    if status is not None:
        return status
    print("torn tail dropped with a warning; resume matches reference")
    return EXIT_OK


# ----------------------------------------------------------------------
# enospc: every checkpoint append fails once, rollback-and-retry heals.
# ----------------------------------------------------------------------
def _drill_enospc(args, sink, registry) -> int:
    workdir = _workdir(args, "enospc")
    config = _config(args)
    reference = FaultCampaign(config, obs=sink).run()

    plan = ChaosPlan(seed=args.chaos_seed, kinds=("enospc",), rate=1.0)
    with CampaignRuntime(
        jobs=1, checkpoint_dir=workdir, chaos=plan
    ) as runtime:
        survived = FaultCampaign(config, obs=sink).run(runtime=runtime)

    status = _check_equivalence("enospc", reference, survived)
    if status is not None:
        return status
    degradation = survived.degradation or {}
    io_retries = degradation.get("checkpoint", {}).get("io_retries", 0)
    if io_retries < 1:
        return fail("enospc: no I/O retry was absorbed — chaos did not fire")
    print(f"enospc: absorbed {io_retries} checkpoint I/O retries, "
          "result bit-identical to chaos-free baseline")
    return EXIT_OK


# ----------------------------------------------------------------------
# overhead: armed-but-idle resilience machinery must be ~free.
# ----------------------------------------------------------------------
def _drill_overhead(args, sink, registry) -> int:
    config = _config(args)

    def run_plain() -> float:
        started = time.perf_counter()
        with CampaignRuntime(jobs=1) as runtime:
            FaultCampaign(config).run(runtime=runtime)
        return time.perf_counter() - started

    def run_armed() -> float:
        started = time.perf_counter()
        with CampaignRuntime(
            jobs=1,
            timeout_s=120.0,
            chaos=ChaosPlan(seed=args.chaos_seed, rate=0.0),
            heartbeat_timeout_s=5.0,
            adaptive_timeout=True,
            quarantine=True,
        ) as runtime:
            FaultCampaign(config).run(runtime=runtime)
        return time.perf_counter() - started

    # Interleaved best-of: pairs alternate so drift (page cache, turbo)
    # hits both sides equally; best-of discards scheduler noise.
    plain_times, armed_times = [], []
    for _ in range(args.repeats):
        plain_times.append(run_plain())
        armed_times.append(run_armed())
    best_plain, best_armed = min(plain_times), min(armed_times)
    ratio = best_armed / best_plain if best_plain > 0 else float("inf")
    print(f"overhead: plain {best_plain:.3f}s, armed-idle {best_armed:.3f}s, "
          f"ratio {ratio:.2f} (gate {args.max_chaos_overhead:.2f})")
    if ratio > args.max_chaos_overhead:
        print(
            f"overhead gate failed: {ratio:.2f} > "
            f"{args.max_chaos_overhead:.2f}",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


_DRILL_RUNNERS = {
    "kill": _drill_kill,
    "wedge": _drill_wedge,
    "torn-checkpoint": _drill_torn_checkpoint,
    "enospc": _drill_enospc,
    "overhead": _drill_overhead,
}


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
