"""Command-line paper scorecard.

::

    python -m repro.tools.run_scorecard -n 20000

Exit codes follow :mod:`repro.tools._cli`: 0 when every claim holds,
3 when the scorecard ran but some claims fail (partial), 1 on fatal
errors.  ``--json`` emits the graded claims machine-readably.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..errors import ConfigurationError, ReproError
from ..harness.scorecard import scorecard
from ._cli import (
    add_json_argument,
    emit_json,
    fail,
    require_positive,
    resolve_exit,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-scorecard",
        description="Grade every reproduced paper claim in one run.",
    )
    parser.add_argument(
        "--references", "-n", type=int, default=20_000,
        help="trace length per benchmark (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        require_positive(references=args.references)
    except ConfigurationError as exc:
        return fail(f"invalid arguments: {exc}")
    try:
        card = scorecard(n_references=args.references, seed=args.seed)
    except ReproError as exc:
        return fail(f"scorecard failed: {exc}")
    print(card.to_text())
    emit_json(args.json, {
        "references": args.references,
        "seed": args.seed,
        "passed": card.passed,
        "pass_count": card.pass_count,
        "claim_count": len(card.claims),
        "claims": [
            {
                "section": c.section,
                "statement": c.statement,
                "expected": c.expected,
                "measured": c.measured,
                "passed": c.passed,
            }
            for c in card.claims
        ],
    })
    if not card.passed:
        print("scorecard has failing claims", file=sys.stderr)
    return resolve_exit(partial=not card.passed)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
