"""Command-line paper scorecard.

::

    python -m repro.tools.run_scorecard -n 20000
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..harness.scorecard import scorecard


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-scorecard",
        description="Grade every reproduced paper claim in one run.",
    )
    parser.add_argument(
        "--references", "-n", type=int, default=20_000,
        help="trace length per benchmark (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    card = scorecard(n_references=args.references, seed=args.seed)
    print(card.to_text())
    if not card.passed:
        print("scorecard has failing claims", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
