"""Command-line sensitivity sweeps.

::

    python -m repro.tools.run_sensitivity interleaving
    python -m repro.tools.run_sensitivity l1-size -n 20000 --jobs 4

Exit codes follow :mod:`repro.tools._cli`: 0 complete, 3 when some
sweeps failed but others produced rows (partial), 1 fatal.  ``--jobs``
runs simulation-backed sweep rows on the crash-safe
:mod:`repro.runtime` worker lanes.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..errors import ConfigurationError, ReproError
from ..harness import sweep_interleaving, sweep_l1_size, sweep_seu_rate
from ..runtime import CampaignRuntime, RetryPolicy
from ..workloads import benchmark_names
from ._cli import (
    add_json_argument,
    emit_json,
    fail,
    require_non_negative,
    require_positive,
    resolve_exit,
)

SWEEPS = ("l1-size", "seu-rate", "interleaving", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-sensitivity",
        description="Sensitivity sweeps around the paper's design point.",
    )
    parser.add_argument("sweep", choices=SWEEPS)
    parser.add_argument(
        "--references", "-n", type=int, default=20_000,
        help="trace length for simulation-backed sweeps (default: %(default)s)",
    )
    parser.add_argument(
        "--benchmark", choices=benchmark_names(), default="gcc",
        help="workload for the L1-size sweep (default: gcc)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="run simulation-backed sweep rows on N worker subprocesses",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-row wall-clock budget when --jobs is given",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for crashed/timed-out rows when --jobs is "
             "given (default: 2)",
    )
    add_json_argument(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        require_positive(
            references=args.references, jobs=args.jobs, timeout=args.timeout
        )
        require_non_negative(retries=args.retries)
    except ConfigurationError as exc:
        return fail(f"invalid arguments: {exc}")
    selected = []
    if args.sweep in ("l1-size", "all"):
        selected.append(
            ("l1-size",
             lambda runtime: sweep_l1_size(
                 benchmark=args.benchmark, n_references=args.references,
                 runtime=runtime,
             ))
        )
    if args.sweep in ("seu-rate", "all"):
        selected.append(("seu-rate", lambda runtime: sweep_seu_rate()))
    if args.sweep in ("interleaving", "all"):
        selected.append(
            ("interleaving", lambda runtime: sweep_interleaving())
        )

    retry = (
        RetryPolicy(max_attempts=args.retries + 1)
        if args.retries is not None
        else RetryPolicy()
    )
    runtime = (
        CampaignRuntime(jobs=args.jobs, timeout_s=args.timeout, retry=retry)
        if args.jobs is not None
        else None
    )
    results, errors = {}, {}
    try:
        for name, sweep in selected:
            try:
                result = sweep(runtime)
            except ReproError as exc:
                errors[name] = str(exc)
                print(f"sweep {name} failed: {exc}")
            else:
                results[name] = result
                print(result.to_text())
            print()
    finally:
        if runtime is not None:
            runtime.close()

    emit_json(args.json, {
        "sweeps": {
            name: {"headers": r.headers, "rows": r.rows, "title": r.title}
            for name, r in results.items()
        },
        "errors": errors,
    })
    if not results:
        return fail("every requested sweep failed")
    return resolve_exit(partial=bool(errors))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
