"""Command-line sensitivity sweeps.

::

    python -m repro.tools.run_sensitivity interleaving
    python -m repro.tools.run_sensitivity l1-size -n 20000
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..harness import sweep_interleaving, sweep_l1_size, sweep_seu_rate
from ..workloads import benchmark_names

SWEEPS = ("l1-size", "seu-rate", "interleaving", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run-sensitivity",
        description="Sensitivity sweeps around the paper's design point.",
    )
    parser.add_argument("sweep", choices=SWEEPS)
    parser.add_argument(
        "--references", "-n", type=int, default=20_000,
        help="trace length for simulation-backed sweeps (default: %(default)s)",
    )
    parser.add_argument(
        "--benchmark", choices=benchmark_names(), default="gcc",
        help="workload for the L1-size sweep (default: gcc)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sweep in ("l1-size", "all"):
        print(sweep_l1_size(
            benchmark=args.benchmark, n_references=args.references
        ).to_text())
        print()
    if args.sweep in ("seu-rate", "all"):
        print(sweep_seu_rate().to_text())
        print()
    if args.sweep in ("interleaving", "all"):
        print(sweep_interleaving().to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
