"""Bit- and byte-level utilities shared by the whole package.

Conventions (matching the paper's figures):

* A *word* is an unsigned integer of ``width`` bits (64 unless stated
  otherwise), held in a plain Python ``int``.
* Bit index ``k`` counts from the **left** (most significant bit), i.e.
  bit 0 of a 64-bit word is its MSB.  This matches the paper, where
  "bit 0 of Word0" in Figure 3 is the MSB flipped by the particle strike.
* Byte index ``b`` also counts from the left: byte 0 is the most
  significant byte.
* ``rotl_bytes(x, c)`` rotates *left* by ``c`` bytes: destination byte
  ``j`` receives source byte ``(j + c) mod nbytes``, exactly the barrel
  shifter of paper Figure 6.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError

WORD_BITS = 64
WORD_BYTES = WORD_BITS // 8


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits."""
    if width < 0:
        raise ConfigurationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def check_word(value: int, width: int = WORD_BITS) -> int:
    """Validate that ``value`` fits in ``width`` bits and return it."""
    if not 0 <= value <= mask(width):
        raise ConfigurationError(
            f"value {value:#x} does not fit in {width} bits"
        )
    return value


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (x must be non-negative)."""
    if x < 0:
        raise ConfigurationError("popcount requires a non-negative integer")
    return x.bit_count()


def parity(x: int) -> int:
    """Even-parity bit of ``x``: 1 if the number of set bits is odd."""
    if x < 0:
        raise ConfigurationError("parity requires a non-negative integer")
    return x.bit_count() & 1


def get_bit(x: int, k: int, width: int = WORD_BITS) -> int:
    """Bit ``k`` of ``x`` counting from the MSB (bit 0 = MSB)."""
    if not 0 <= k < width:
        raise ConfigurationError(f"bit index {k} out of range for width {width}")
    return (x >> (width - 1 - k)) & 1


def set_bit(x: int, k: int, bit: int, width: int = WORD_BITS) -> int:
    """Return ``x`` with MSB-first bit ``k`` set to ``bit`` (0 or 1)."""
    if bit not in (0, 1):
        raise ConfigurationError(f"bit value must be 0 or 1, got {bit}")
    pos = width - 1 - k
    if bit:
        return x | (1 << pos)
    return x & ~(1 << pos) & mask(width)


def flip_bit(x: int, k: int, width: int = WORD_BITS) -> int:
    """Return ``x`` with MSB-first bit ``k`` inverted."""
    if not 0 <= k < width:
        raise ConfigurationError(f"bit index {k} out of range for width {width}")
    return x ^ (1 << (width - 1 - k))


def flip_bits(x: int, positions: Iterable[int], width: int = WORD_BITS) -> int:
    """Flip every MSB-first bit index in ``positions``."""
    for k in positions:
        x = flip_bit(x, k, width)
    return x


def bit_positions(x: int, width: int = WORD_BITS) -> List[int]:
    """MSB-first indices of the set bits of ``x``."""
    return [k for k in range(width) if get_bit(x, k, width)]


def get_byte(x: int, b: int, nbytes: int = WORD_BYTES) -> int:
    """Byte ``b`` of ``x`` counting from the most significant byte."""
    if not 0 <= b < nbytes:
        raise ConfigurationError(f"byte index {b} out of range for {nbytes} bytes")
    return (x >> (8 * (nbytes - 1 - b))) & 0xFF


def set_byte(x: int, b: int, byte: int, nbytes: int = WORD_BYTES) -> int:
    """Return ``x`` with byte ``b`` (MSB-first) replaced by ``byte``."""
    if not 0 <= byte <= 0xFF:
        raise ConfigurationError(f"byte value must fit in 8 bits, got {byte}")
    shift = 8 * (nbytes - 1 - b)
    return (x & ~(0xFF << shift)) | (byte << shift)


def to_bytes_be(x: int, nbytes: int = WORD_BYTES) -> bytes:
    """Big-endian byte string of ``x`` (byte 0 first)."""
    return x.to_bytes(nbytes, "big")


def from_bytes_be(data: Sequence[int]) -> int:
    """Inverse of :func:`to_bytes_be`."""
    return int.from_bytes(bytes(data), "big")


def rotl_bytes(x: int, c: int, nbytes: int = WORD_BYTES) -> int:
    """Rotate ``x`` left by ``c`` bytes.

    Destination byte ``j`` receives source byte ``(j + c) mod nbytes``;
    this is the barrel-shifter rotation of paper Figure 6, where word rows
    in rotation class ``c`` are rotated by ``c`` bytes before being XORed
    into R1/R2.
    """
    c %= nbytes
    if c == 0:
        return x
    width = 8 * nbytes
    shift = 8 * c
    return ((x << shift) | (x >> (width - shift))) & mask(width)


def rotr_bytes(x: int, c: int, nbytes: int = WORD_BYTES) -> int:
    """Rotate ``x`` right by ``c`` bytes (inverse of :func:`rotl_bytes`)."""
    return rotl_bytes(x, nbytes - (c % nbytes), nbytes)


def rotl_bits(x: int, c: int, width: int = WORD_BITS) -> int:
    """Rotate ``x`` left by ``c`` bits."""
    c %= width
    if c == 0:
        return x
    return ((x << c) | (x >> (width - c))) & mask(width)


def xor_reduce(values: Iterable[int]) -> int:
    """XOR of all values (0 for an empty iterable)."""
    acc = 0
    for v in values:
        acc ^= v
    return acc


def iter_bytes(x: int, nbytes: int = WORD_BYTES) -> Iterator[Tuple[int, int]]:
    """Yield ``(byte_index, byte_value)`` MSB-first."""
    for b in range(nbytes):
        yield b, get_byte(x, b, nbytes)


def bytes_to_words(data: Sequence[int], word_bytes: int = WORD_BYTES) -> List[int]:
    """Split a byte sequence into big-endian words.

    ``len(data)`` must be a multiple of ``word_bytes``.
    """
    if len(data) % word_bytes:
        raise ConfigurationError(
            f"byte length {len(data)} is not a multiple of word size {word_bytes}"
        )
    blob = bytes(data)
    return [
        int.from_bytes(blob[i : i + word_bytes], "big")
        for i in range(0, len(blob), word_bytes)
    ]


def words_to_bytes(words: Sequence[int], word_bytes: int = WORD_BYTES) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    return b"".join(w.to_bytes(word_bytes, "big") for w in words)
