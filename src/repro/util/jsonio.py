"""Checksummed canonical-JSON line records and a fault-aware appender.

The writer discipline shared by campaign checkpoints
(:class:`repro.runtime.checkpoint.CheckpointStore`) and trace sinks
(:class:`repro.obs.JsonlSink`): each record is one line of canonical JSON
(sorted keys, no whitespace) carrying a short content checksum, so a
reader can detect corruption and distinguish a torn tail line (crash
mid-append) from damage anywhere earlier.

:class:`JsonlAppender` is the durable writer half of that discipline —
append + flush + fsync per record, with a remembered *good offset* (the
end of the last record known durable) so an I/O error mid-append can be
rolled back by truncating to the good offset and retrying once.  The
``inject`` hook exists for the chaos harness
(:mod:`repro.runtime.chaos`): it simulates ENOSPC, a torn partial write,
and a failed fsync at the exact points real disks fail, which is how the
self-healing path earns its test coverage.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

#: Injectable I/O fault kinds understood by :meth:`JsonlAppender.append`.
IO_FAULT_KINDS = ("enospc", "torn", "fsync")


def canonical_json(payload: dict) -> str:
    """Canonical single-line JSON rendering of ``payload``."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def line_checksum(payload: dict) -> str:
    """Content checksum of one record (sha256 prefix of its canonical form)."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


class JsonlAppender:
    """Append-only JSONL writer with fsync discipline and self-healing.

    Every :meth:`append` writes one line, flushes, and fsyncs before
    returning, so a record is durable (or the call raised) — the
    invariant :class:`~repro.runtime.checkpoint.CheckpointStore` builds
    its torn-tail tolerance on.  On an :class:`OSError` anywhere in that
    sequence the file is truncated back to the last known-good offset
    (discarding any partial line the failed write left behind) and the
    append is retried once on a freshly opened handle; a second failure
    propagates.  ``io_retries`` counts successful self-heals.

    Args:
        path: the JSONL file; created on first append.
        inject_next: optional one-shot fault (see :data:`IO_FAULT_KINDS`)
            applied to the next append — set by the chaos harness via
            :meth:`inject`.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None
        self._good_offset: Optional[int] = None
        self._inject_next: Optional[str] = None
        self.io_retries = 0

    # ------------------------------------------------------------------
    def inject(self, kind: Optional[str]) -> None:
        """Arm a one-shot injected I/O fault for the next append."""
        if kind is not None and kind not in IO_FAULT_KINDS:
            raise ValueError(
                f"unknown I/O fault kind {kind!r}; expected one of "
                f"{IO_FAULT_KINDS}"
            )
        self._inject_next = kind

    def _open(self):
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
            if self._good_offset is None:
                self._good_offset = self._fh.tell()
        return self._fh

    def append(self, line: str) -> None:
        """Durably append ``line`` (newline added); self-heal one failure."""
        inject, self._inject_next = self._inject_next, None
        try:
            self._write(line, inject)
        except OSError:
            self._rollback()
            self._write(line, None)
            self.io_retries += 1
        self._good_offset = self._fh.tell()

    def _write(self, line: str, inject: Optional[str]) -> None:
        fh = self._open()
        if inject == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        data = line + "\n"
        if inject == "torn":
            # Half a record reaches the disk, then the write "fails" —
            # the same shape a real torn append leaves behind.
            fh.write(data[: max(1, len(data) // 2)])
            fh.flush()
            raise OSError(errno.EIO, "injected: torn write")
        fh.write(data)
        fh.flush()
        if inject == "fsync":
            raise OSError(errno.EIO, "injected: fsync failed")
        os.fsync(fh.fileno())

    def _rollback(self) -> None:
        """Truncate back to the last durable record boundary."""
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:  # pragma: no cover - close-after-error race
                pass
        if self._good_offset is not None and self.path.exists():
            with open(self.path, "rb+") as raw:
                raw.truncate(self._good_offset)
                raw.flush()
                os.fsync(raw.fileno())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the handle (appended records are already durable)."""
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
