"""Checksummed canonical-JSON line records.

The writer discipline shared by campaign checkpoints
(:class:`repro.runtime.checkpoint.CheckpointStore`) and trace sinks
(:class:`repro.obs.JsonlSink`): each record is one line of canonical JSON
(sorted keys, no whitespace) carrying a short content checksum, so a
reader can detect corruption and distinguish a torn tail line (crash
mid-append) from damage anywhere earlier.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(payload: dict) -> str:
    """Canonical single-line JSON rendering of ``payload``."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def line_checksum(payload: dict) -> str:
    """Content checksum of one record (sha256 prefix of its canonical form)."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]
