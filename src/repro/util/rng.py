"""Deterministic random-number helpers.

Every stochastic component of the simulator (workload generators, fault
injectors, Monte-Carlo campaigns) takes an explicit seed and builds its
stream through :func:`make_rng` / :func:`spawn` so experiments are exactly
reproducible and independent components do not share a stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seed = Union[int, str, None, tuple]


def split_seed(base: Seed, *labels) -> int:
    """Derive an independent 64-bit integer seed from ``base`` and labels.

    The derivation hashes the canonical repr of ``(base, *labels)`` with
    SHA-256, so it is stable across processes and Python versions (unlike
    the built-in ``hash``) and never shares RNG state with the parent —
    trial ``i`` of a campaign gets the same stream whether it runs first,
    last, in a worker subprocess, or alone after a ``--resume``.
    """
    digest = hashlib.sha256(repr((base,) + labels).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: Seed) -> random.Random:
    """Create an independent ``random.Random`` for the given seed.

    Composite seeds (tuples of labels/indices) are accepted and hashed
    stably via their repr, so ``(base_seed, "component")`` gives each
    component a decorrelated, reproducible stream.
    """
    if seed is None or isinstance(seed, (int, float, str, bytes, bytearray)):
        return random.Random(seed)
    return random.Random(repr(seed))


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive a child stream from ``rng`` tagged with ``label``.

    The child is seeded from the parent's stream plus a hash of the label,
    so two children with different labels are decorrelated even if spawned
    from the same parent state.
    """
    base = rng.getrandbits(64)
    return make_rng((base, label))


def weighted_choice(rng: random.Random, weights: dict) -> object:
    """Pick a key of ``weights`` with probability proportional to its value."""
    keys = list(weights)
    return rng.choices(keys, weights=[weights[k] for k in keys], k=1)[0]
