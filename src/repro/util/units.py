"""Unit conversions used by the energy, timing and reliability models."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

NS_PER_S = 1e9
PJ_PER_J = 1e12

HOURS_PER_YEAR = 24 * 365.25
SECONDS_PER_HOUR = 3600.0

#: One FIT is one failure per 10^9 device-hours.
FIT_HOURS = 1e9


def fit_per_bit_to_rate_per_hour(fit: float) -> float:
    """Convert a per-bit FIT rate to a per-bit failure rate per hour."""
    return fit / FIT_HOURS


def cycles_to_hours(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to hours."""
    return cycles / frequency_hz / SECONDS_PER_HOUR


def hours_to_years(hours: float) -> float:
    """Convert hours to (Julian) years."""
    return hours / HOURS_PER_YEAR


def years_to_hours(years: float) -> float:
    """Convert years to hours."""
    return years * HOURS_PER_YEAR
