"""Workloads: trace format, synthetic generators, SPEC2000-like profiles."""

from .generators import SyntheticWorkload, WorkloadProfile
from .replay import (
    FastReplay,
    FastReplayResult,
    GoldenMemory,
    ReplayResult,
    TraceReplayer,
    fast_replay,
    replay,
)
from .spec import (
    BENCHMARKS,
    PROFILES,
    benchmark_names,
    get_profile,
    make_workload,
)
from .store import (
    ColumnarTraceReader,
    ColumnarTraceWriter,
    TraceCache,
    cached_records,
    default_trace_cache,
    load_batch_trace,
    write_trace,
)
from .trace import TraceRecord, load_trace, materialize, save_trace, trace_stats
from .transforms import (
    drop,
    interleave,
    multiprogrammed_mix,
    offset_addresses,
    scale_gaps,
    take,
)

__all__ = [
    "SyntheticWorkload",
    "WorkloadProfile",
    "FastReplay",
    "FastReplayResult",
    "GoldenMemory",
    "ReplayResult",
    "TraceReplayer",
    "fast_replay",
    "replay",
    "BENCHMARKS",
    "PROFILES",
    "benchmark_names",
    "get_profile",
    "make_workload",
    "ColumnarTraceReader",
    "ColumnarTraceWriter",
    "TraceCache",
    "cached_records",
    "default_trace_cache",
    "load_batch_trace",
    "write_trace",
    "TraceRecord",
    "load_trace",
    "materialize",
    "save_trace",
    "trace_stats",
    "drop",
    "interleave",
    "multiprogrammed_mix",
    "offset_addresses",
    "scale_gaps",
    "take",
]
