"""Synthetic workload generation.

The paper drives its evaluation with 100M-instruction SimPoints of SPEC
CPU2000.  Those traces are not redistributable, so this module provides
parametric generators whose knobs control exactly the behaviours the
paper's results depend on:

* temporal locality (a recency-weighted block-reuse pool) and spatial
  locality (sequential runs) -> L1/L2 miss rates,
* working-set size -> where capacity misses land in the hierarchy,
* store fraction and store re-write locality -> stores to dirty words
  (the CPPC read-before-write count) and dirty-data residency,
* instruction gaps between memory operations -> Tavg and CPI.

:mod:`repro.workloads.spec` instantiates fifteen named profiles standing
in for the paper's benchmarks.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Iterator, Optional

from ..errors import ConfigurationError
from ..memsim.types import AccessType
from ..util import Seed, make_rng
from .trace import TraceRecord

#: Access-size mix (bytes -> weight); dominated by 64-bit words with some
#: narrower accesses to exercise partial-store paths.
_SIZE_WEIGHTS = {8: 0.82, 4: 0.13, 1: 0.05}

_BLOCK_BYTES = 32  # paper Table 1 line size; spatial-locality granularity


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Tunable description of one synthetic benchmark.

    Attributes:
        name: benchmark label.
        working_set_bytes: span of the address region touched.
        hot_bytes: size of the frequently-targeted subset (controls where
            capacity misses land: a multi-MB hot set defeats the L2).
        p_hot: probability that a *fresh* access targets the hot subset.
        p_reuse: probability that a non-sequential access revisits a
            recently-used block (temporal locality; sets the miss rate).
        reuse_window_blocks: how far back the reuse pool reaches.
        seq_fraction: probability of extending the current sequential run
            (spatial locality).
        store_fraction: stores as a fraction of memory references.
        p_store_rewrite: probability a store revisits a recently-stored
            address (drives stores-to-dirty-words).
        rewrite_window: how many recent store addresses stay revisitable.
        store_region_bytes: width of the *sliding* window fresh stores
            target (stack frames / output buffers).  Keeps the resident
            dirty footprint bounded while the drift spreads write-backs
            over the whole working set.  0 disables the window (stores
            roam like loads).
        store_dwell: fresh stores per one-block advance of the sliding
            window (higher = dirtier lines linger longer).
        mean_gap: average non-memory instructions between references.
        base_address: start of the region (distinct per benchmark so
            multi-workload runs do not alias).
    """

    name: str
    working_set_bytes: int
    hot_bytes: int
    p_hot: float = 0.7
    p_reuse: float = 0.85
    reuse_window_blocks: int = 512
    seq_fraction: float = 0.3
    store_fraction: float = 0.35
    p_store_rewrite: float = 0.4
    rewrite_window: int = 256
    store_region_bytes: int = 0
    store_dwell: int = 8
    mean_gap: int = 2
    base_address: int = 0x1000_0000

    def __post_init__(self):
        if self.working_set_bytes < 2 * _BLOCK_BYTES:
            raise ConfigurationError("working set must span at least two blocks")
        if not 0 < self.hot_bytes <= self.working_set_bytes:
            raise ConfigurationError("hot set must fit inside the working set")
        for field in (
            "p_hot", "p_reuse", "seq_fraction", "store_fraction", "p_store_rewrite"
        ):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{field} must be in [0, 1], got {value}")
        if self.rewrite_window < 1 or self.reuse_window_blocks < 1:
            raise ConfigurationError("history windows must be >= 1")
        if self.store_region_bytes < 0 or self.store_dwell < 1:
            raise ConfigurationError(
                "store_region_bytes must be >= 0 and store_dwell >= 1"
            )
        if self.store_region_bytes > self.working_set_bytes:
            raise ConfigurationError("store region cannot exceed the working set")
        if self.mean_gap < 0:
            raise ConfigurationError("mean_gap must be >= 0")


class SyntheticWorkload:
    """Deterministic trace generator for one :class:`WorkloadProfile`."""

    def __init__(self, profile: WorkloadProfile, seed: Seed = 0):
        self.profile = profile
        self.seed = seed

    def records(self, n_references: int) -> Iterator[TraceRecord]:
        """Yield ``n_references`` trace records."""
        p = self.profile
        rng = make_rng((self.seed, p.name))
        recent_blocks: collections.deque = collections.deque(
            maxlen=p.reuse_window_blocks
        )
        recent_stores: collections.deque = collections.deque(maxlen=p.rewrite_window)
        seq_addr: Optional[int] = None
        sizes = list(_SIZE_WEIGHTS)
        size_weights = list(_SIZE_WEIGHTS.values())
        ws_end = p.base_address + p.working_set_bytes
        # Recency bias of reuse: mean rank is a quarter of the window.
        reuse_rate = 4.0 / p.reuse_window_blocks
        store_ptr = p.base_address
        fresh_stores = 0

        for _ in range(n_references):
            is_store = rng.random() < p.store_fraction
            # Store-stream addresses deliberately stay out of the load
            # reuse pool: once the sliding store window moves on, its
            # dirty lines cool down, age out of the cache and get written
            # back — that is what feeds the L2's dirty-data population.
            if is_store and recent_stores and rng.random() < p.p_store_rewrite:
                addr = rng.choice(recent_stores)
            elif is_store and p.store_region_bytes and rng.random() < 0.95:
                # Fresh store inside the sliding store window.
                addr = store_ptr + rng.randrange(p.store_region_bytes // 8) * 8
                if addr >= ws_end:
                    addr -= p.working_set_bytes
                fresh_stores += 1
                if fresh_stores % p.store_dwell == 0:
                    store_ptr += _BLOCK_BYTES
                    if store_ptr >= ws_end:
                        store_ptr = p.base_address
            elif seq_addr is not None and rng.random() < p.seq_fraction:
                seq_addr += 8
                if seq_addr >= ws_end:
                    seq_addr = p.base_address
                addr = seq_addr
                recent_blocks.append(addr & ~(_BLOCK_BYTES - 1))
            elif recent_blocks and rng.random() < p.p_reuse:
                rank = min(int(rng.expovariate(reuse_rate)), len(recent_blocks) - 1)
                block = recent_blocks[len(recent_blocks) - 1 - rank]
                addr = block + rng.randrange(_BLOCK_BYTES // 8) * 8
                recent_blocks.append(block)
            else:
                region = (
                    p.hot_bytes if rng.random() < p.p_hot else p.working_set_bytes
                )
                addr = p.base_address + rng.randrange(region // 8) * 8
                seq_addr = addr
                recent_blocks.append(addr & ~(_BLOCK_BYTES - 1))
            size = rng.choices(sizes, weights=size_weights, k=1)[0]
            # Natural alignment inside the chosen word.
            offset = rng.randrange(8 // size) * size
            addr = (addr & ~7) + offset

            gap = self._gap(rng)
            if is_store:
                recent_stores.append(addr & ~7)
                value = bytes(rng.getrandbits(8) for _ in range(size))
                yield TraceRecord(AccessType.STORE, addr, size, gap, value)
            else:
                yield TraceRecord(AccessType.LOAD, addr, size, gap)

    def _gap(self, rng) -> int:
        """Geometric-ish instruction gap with the profile's mean."""
        mean = self.profile.mean_gap
        if mean == 0:
            return 0
        # Geometric distribution with mean ``mean`` (support >= 0).
        p = 1.0 / (mean + 1.0)
        gap = 0
        while rng.random() > p and gap < 50 * mean:
            gap += 1
        return gap
