"""Trace replay: drive a memory hierarchy from a trace.

The replayer advances a logical cycle clock by each record's instruction
gap (one instruction per cycle, the bookkeeping basis for the Table 2
``Tavg`` metric) and can maintain a byte-granular golden memory image so
fault-injection campaigns can detect silent data corruption.

:class:`FastReplay` fronts the NumPy batch engine
(:mod:`repro.memsim.batch`): same single-cache semantics, orders of
magnitude faster, with an automatic equivalence mode that replays small
traces through the scalar :class:`~repro.memsim.cache.Cache` as well and
cross-checks final contents, dirty bits, statistics and the CPPC R1^R2
invariant word-for-word.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional

from ..cppc.protection import CppcProtection
from ..errors import ConfigurationError, EquivalenceError, SimulationError
from ..memsim.batch import (
    BatchReplayEngine,
    BatchReplayResult,
    BatchTrace,
    cross_check_scalar,
)
from ..memsim.cache import Cache
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.mainmem import MainMemory
from ..memsim.types import AccessType
from .trace import TraceRecord, materialize


class GoldenMemory:
    """Byte-granular reference image of what memory *should* contain."""

    def __init__(self):
        self._bytes: Dict[int, int] = {}

    def store(self, addr: int, data: bytes) -> None:
        """Record an architectural store."""
        for i, b in enumerate(data):
            self._bytes[addr + i] = b

    def read(self, addr: int, size: int) -> bytes:
        """Expected bytes at ``addr`` (unwritten bytes read as zero)."""
        return bytes(self._bytes.get(addr + i, 0) for i in range(size))

    def items(self):
        """Iterate ``(address, expected_byte)`` over every written byte."""
        return self._bytes.items()

    def snapshot(self) -> Dict[int, int]:
        """A copy of the full per-byte image (for campaign warm states)."""
        return dict(self._bytes)

    def restore(self, image: Dict[int, int]) -> None:
        """Replace the image with a previously captured snapshot."""
        self._bytes = dict(image)

    def __len__(self) -> int:
        return len(self._bytes)


@dataclasses.dataclass
class ReplayResult:
    """Summary of one trace replay."""

    references: int = 0
    loads: int = 0
    stores: int = 0
    instructions: int = 0
    mismatches: int = 0
    detected_faults: int = 0

    @property
    def cycles(self) -> int:
        """Logical cycles elapsed (1 instruction per cycle basis)."""
        return self.instructions


class TraceReplayer:
    """Feeds trace records into a hierarchy, with optional golden checking."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        *,
        golden: Optional[GoldenMemory] = None,
        check_loads: bool = False,
        start_cycle: int = 0,
    ):
        if check_loads and golden is None:
            raise SimulationError("check_loads requires a golden memory")
        self.hierarchy = hierarchy
        self.golden = golden
        self.check_loads = check_loads
        self.cycle = start_cycle
        self.result = ReplayResult()

    def step(self, record: TraceRecord) -> bool:
        """Execute one record.  Returns True when a load mismatched golden."""
        self.cycle += record.instructions
        self.result.instructions += record.instructions
        self.result.references += 1
        mismatch = False
        if record.op is AccessType.STORE:
            self.result.stores += 1
            outcome = self.hierarchy.store(record.addr, record.value, cycle=self.cycle)
            if self.golden is not None:
                self.golden.store(record.addr, record.value)
        else:
            self.result.loads += 1
            outcome = self.hierarchy.load(record.addr, record.size, cycle=self.cycle)
            if self.check_loads:
                expected = self.golden.read(record.addr, record.size)
                if outcome.data != expected:
                    mismatch = True
                    self.result.mismatches += 1
        if outcome.detected_fault:
            self.result.detected_faults += 1
        return mismatch

    def run(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """Execute every record; returns the accumulated summary."""
        for record in records:
            self.step(record)
        return self.result


def replay(
    records: Iterable[TraceRecord],
    hierarchy: MemoryHierarchy,
    *,
    golden: Optional[GoldenMemory] = None,
    check_loads: bool = False,
) -> ReplayResult:
    """Convenience wrapper: replay a full trace and return the summary."""
    return TraceReplayer(
        hierarchy, golden=golden, check_loads=check_loads
    ).run(records)


@dataclasses.dataclass
class FastReplayResult:
    """Outcome of one :class:`FastReplay` run.

    Attributes:
        replay: the scalar-compatible reference/cycle summary.
        batch: the engine's full result (stats, registers, final state).
        checked: whether the scalar cross-check ran (and passed — a
            failing check raises :class:`~repro.errors.EquivalenceError`).
    """

    replay: ReplayResult
    batch: BatchReplayResult
    checked: bool

    @property
    def stats(self):
        """The batch run's :class:`~repro.memsim.stats.CacheStats`."""
        return self.batch.stats

    @property
    def registers(self):
        """The batch run's CPPC :class:`~repro.cppc.registers.RegisterFile`."""
        return self.batch.registers


class FastReplay:
    """Batch-engine trace replay with automatic scalar cross-checking.

    Models one CPPC-protected write-back cache over main memory (the
    configuration :mod:`repro.memsim.batch` vectorizes).  Equivalence
    modes:

    * ``"auto"`` (default) — traces of at most ``equivalence_limit``
      references are *also* replayed through the scalar ``Cache`` and the
      results compared word-for-word; longer traces run batch-only.
    * ``"always"`` / ``"never"`` — force either behaviour.

    Args:
        size_bytes / ways / block_bytes: cache geometry.
        num_pairs / byte_shifting / num_classes: CPPC register
            configuration (as :class:`~repro.cppc.CppcProtection`).
        equivalence: cross-check mode.
        equivalence_limit: reference-count cutoff for ``"auto"``.
        obs: optional :class:`repro.obs.TraceSink`; the engine emits
            per-chunk spans into it, and the run/cross-check phases get
            spans of their own.  Trace emission never feeds back into
            simulation state, so equivalence results are unchanged.
    """

    MODES = ("auto", "always", "never")

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        ways: int = 2,
        block_bytes: int = 32,
        *,
        num_pairs: int = 1,
        byte_shifting: bool = True,
        num_classes: int = 8,
        equivalence: str = "auto",
        equivalence_limit: int = 2048,
        obs=None,
    ):
        if equivalence not in self.MODES:
            raise ConfigurationError(
                f"equivalence mode must be one of {self.MODES}, "
                f"got {equivalence!r}"
            )
        if equivalence_limit < 0:
            raise ConfigurationError("equivalence_limit must be >= 0")
        self.engine = BatchReplayEngine(
            size_bytes,
            ways,
            block_bytes,
            num_pairs=num_pairs,
            byte_shifting=byte_shifting,
            num_classes=num_classes,
        )
        self.engine.obs = obs
        self.obs = obs
        self.num_pairs = num_pairs
        self.byte_shifting = byte_shifting
        self.num_classes = num_classes
        self.equivalence = equivalence
        self.equivalence_limit = equivalence_limit

    def scalar_cache(self) -> Cache:
        """A fresh scalar cache configured identically to the engine."""
        return Cache(
            "batch-check",
            self.engine.size_bytes,
            self.engine.ways,
            self.engine.block_bytes,
            unit_bytes=self.engine.unit_bytes,
            protection=CppcProtection(
                data_bits=self.engine.unit_bytes * 8,
                num_pairs=self.num_pairs,
                byte_shifting=self.byte_shifting,
                num_classes=self.num_classes,
            ),
            next_level=MainMemory(block_bytes=self.engine.block_bytes),
        )

    def run(self, source) -> FastReplayResult:
        """Replay a trace; cross-check against the scalar cache when the
        equivalence mode says so.

        ``source`` may be an iterable of :class:`TraceRecord`, an
        already-packed :class:`~repro.memsim.batch.BatchTrace`, or a
        chunked columnar reader (anything with ``iter_chunks()``, e.g.
        :class:`~repro.workloads.store.ColumnarTraceReader`) — chunked
        sources replay through
        :meth:`~repro.memsim.batch.BatchReplayEngine.replay_chunks`
        without ever concatenating the trace.  Cross-checking a
        non-record source decodes records back out of the columns, so
        the scalar twin replays word-for-word the same stream.
        """
        obs = self.obs if self.obs is not None and self.obs.enabled else None
        t0 = time.perf_counter() if obs is not None else 0.0
        records = None
        if hasattr(source, "iter_chunks"):
            batch = self.engine.replay_chunks(source.iter_chunks())
            record_source = source.records
        elif isinstance(source, BatchTrace):
            batch = self.engine.replay(source)
            record_source = source.to_records
        else:
            records = materialize(source)
            batch = self.engine.replay(BatchTrace.from_records(records))
            record_source = None
        summary = ReplayResult(
            references=batch.references,
            loads=batch.loads,
            stores=batch.stores,
            instructions=batch.instructions,
        )
        check = self.equivalence == "always" or (
            self.equivalence == "auto"
            and batch.references <= self.equivalence_limit
        )
        if obs is not None:
            obs.span(
                "replay",
                "fast-replay",
                t0,
                time.perf_counter() - t0,
                {"references": batch.references, "checked": check},
            )
        if check:
            t0 = time.perf_counter() if obs is not None else 0.0
            if records is None:
                records = materialize(record_source())
            problems = self._cross_check(records, batch)
            if obs is not None:
                obs.span(
                    "replay",
                    "cross-check",
                    t0,
                    time.perf_counter() - t0,
                    {"problems": len(problems)},
                )
            if problems:
                raise EquivalenceError(
                    "batch replay diverged from the scalar cache:\n  "
                    + "\n  ".join(problems),
                    mismatches=problems,
                )
        return FastReplayResult(replay=summary, batch=batch, checked=check)

    def _cross_check(self, records, batch) -> List[str]:
        """Scalar replay of the same records plus the full comparison."""
        cache = self.scalar_cache()
        scalar_summary = TraceReplayer(cache).run(records)
        problems = cross_check_scalar(batch, cache, cache.next_level)
        for field in ("references", "loads", "stores", "instructions"):
            mine = getattr(batch, field)
            theirs = getattr(scalar_summary, field)
            if mine != theirs:
                problems.append(f"{field}: batch={mine} scalar={theirs}")
        return problems


def fast_replay(
    records: Iterable[TraceRecord], **kwargs
) -> FastReplayResult:
    """Convenience wrapper around :class:`FastReplay`."""
    return FastReplay(**kwargs).run(records)
