"""Trace replay: drive a memory hierarchy from a trace.

The replayer advances a logical cycle clock by each record's instruction
gap (one instruction per cycle, the bookkeeping basis for the Table 2
``Tavg`` metric) and can maintain a byte-granular golden memory image so
fault-injection campaigns can detect silent data corruption.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

from ..errors import SimulationError
from ..memsim.hierarchy import MemoryHierarchy
from ..memsim.types import AccessType
from .trace import TraceRecord


class GoldenMemory:
    """Byte-granular reference image of what memory *should* contain."""

    def __init__(self):
        self._bytes: Dict[int, int] = {}

    def store(self, addr: int, data: bytes) -> None:
        """Record an architectural store."""
        for i, b in enumerate(data):
            self._bytes[addr + i] = b

    def read(self, addr: int, size: int) -> bytes:
        """Expected bytes at ``addr`` (unwritten bytes read as zero)."""
        return bytes(self._bytes.get(addr + i, 0) for i in range(size))

    def items(self):
        """Iterate ``(address, expected_byte)`` over every written byte."""
        return self._bytes.items()

    def __len__(self) -> int:
        return len(self._bytes)


@dataclasses.dataclass
class ReplayResult:
    """Summary of one trace replay."""

    references: int = 0
    loads: int = 0
    stores: int = 0
    instructions: int = 0
    mismatches: int = 0
    detected_faults: int = 0

    @property
    def cycles(self) -> int:
        """Logical cycles elapsed (1 instruction per cycle basis)."""
        return self.instructions


class TraceReplayer:
    """Feeds trace records into a hierarchy, with optional golden checking."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        *,
        golden: Optional[GoldenMemory] = None,
        check_loads: bool = False,
        start_cycle: int = 0,
    ):
        if check_loads and golden is None:
            raise SimulationError("check_loads requires a golden memory")
        self.hierarchy = hierarchy
        self.golden = golden
        self.check_loads = check_loads
        self.cycle = start_cycle
        self.result = ReplayResult()

    def step(self, record: TraceRecord) -> bool:
        """Execute one record.  Returns True when a load mismatched golden."""
        self.cycle += record.instructions
        self.result.instructions += record.instructions
        self.result.references += 1
        mismatch = False
        if record.op is AccessType.STORE:
            self.result.stores += 1
            outcome = self.hierarchy.store(record.addr, record.value, cycle=self.cycle)
            if self.golden is not None:
                self.golden.store(record.addr, record.value)
        else:
            self.result.loads += 1
            outcome = self.hierarchy.load(record.addr, record.size, cycle=self.cycle)
            if self.check_loads:
                expected = self.golden.read(record.addr, record.size)
                if outcome.data != expected:
                    mismatch = True
                    self.result.mismatches += 1
        if outcome.detected_fault:
            self.result.detected_faults += 1
        return mismatch

    def run(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """Execute every record; returns the accumulated summary."""
        for record in records:
            self.step(record)
        return self.result


def replay(
    records: Iterable[TraceRecord],
    hierarchy: MemoryHierarchy,
    *,
    golden: Optional[GoldenMemory] = None,
    check_loads: bool = False,
) -> ReplayResult:
    """Convenience wrapper: replay a full trace and return the summary."""
    return TraceReplayer(
        hierarchy, golden=golden, check_loads=check_loads
    ).run(records)
