"""Fifteen named benchmark profiles standing in for SPEC CPU2000.

The real SimPoint traces are not redistributable; each profile below
encodes the qualitative memory behaviour commonly reported for its
namesake (working-set size, locality, store intensity), which is what the
paper's figures actually depend on.  ``mcf`` is deliberately pathological
— a multi-megabyte pointer-chasing working set with poor locality giving
it the ~80% L2 miss rate the paper reports — because Figure 12's outlier
hinges on it.

Use :func:`make_workload` to get a deterministic generator for one
benchmark and :data:`BENCHMARKS` for the evaluation order.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..util import KB, MB, Seed
from .generators import SyntheticWorkload, WorkloadProfile


def _profile(index: int, name: str, **kwargs) -> WorkloadProfile:
    kwargs.setdefault("base_address", 0x1000_0000 + index * 0x0400_0000)
    return WorkloadProfile(name=name, **kwargs)


#: Evaluation order (integer benchmarks first, then floating point).
BENCHMARKS: List[str] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk",
    "gap", "vortex", "bzip2", "twolf", "swim", "art", "equake",
]

PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        _profile(0, "gzip", working_set_bytes=200 * KB, hot_bytes=48 * KB,
                 p_hot=0.75, p_reuse=0.93, reuse_window_blocks=512,
                 seq_fraction=0.45, store_fraction=0.30,
                 p_store_rewrite=0.35, store_region_bytes=6 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(1, "vpr", working_set_bytes=512 * KB, hot_bytes=64 * KB,
                 p_hot=0.70, p_reuse=0.92, reuse_window_blocks=512,
                 seq_fraction=0.25, store_fraction=0.32,
                 p_store_rewrite=0.32, store_region_bytes=6 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(2, "gcc", working_set_bytes=2 * MB, hot_bytes=96 * KB,
                 p_hot=0.65, p_reuse=0.90, reuse_window_blocks=768,
                 seq_fraction=0.30, store_fraction=0.38,
                 p_store_rewrite=0.35, store_region_bytes=8 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(3, "mcf", working_set_bytes=48 * MB, hot_bytes=24 * MB,
                 p_hot=0.35, p_reuse=0.22, reuse_window_blocks=4096,
                 seq_fraction=0.05, store_fraction=0.22,
                 p_store_rewrite=0.20, mean_gap=3),
        _profile(4, "crafty", working_set_bytes=128 * KB, hot_bytes=24 * KB,
                 p_hot=0.85, p_reuse=0.95, reuse_window_blocks=512,
                 seq_fraction=0.30, store_fraction=0.30,
                 p_store_rewrite=0.40, store_region_bytes=4 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(5, "parser", working_set_bytes=1 * MB, hot_bytes=64 * KB,
                 p_hot=0.70, p_reuse=0.91, reuse_window_blocks=640,
                 seq_fraction=0.20, store_fraction=0.34,
                 p_store_rewrite=0.32, store_region_bytes=6 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(6, "eon", working_set_bytes=64 * KB, hot_bytes=16 * KB,
                 p_hot=0.90, p_reuse=0.97, reuse_window_blocks=384,
                 seq_fraction=0.35, store_fraction=0.36,
                 p_store_rewrite=0.42, store_region_bytes=4 * KB,
                 store_dwell=5, mean_gap=2),
        _profile(7, "perlbmk", working_set_bytes=512 * KB, hot_bytes=48 * KB,
                 p_hot=0.80, p_reuse=0.94, reuse_window_blocks=512,
                 seq_fraction=0.30, store_fraction=0.40,
                 p_store_rewrite=0.40, store_region_bytes=5 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(8, "gap", working_set_bytes=1536 * KB, hot_bytes=96 * KB,
                 p_hot=0.70, p_reuse=0.90, reuse_window_blocks=640,
                 seq_fraction=0.35, store_fraction=0.35,
                 p_store_rewrite=0.32, store_region_bytes=8 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(9, "vortex", working_set_bytes=2 * MB, hot_bytes=128 * KB,
                 p_hot=0.70, p_reuse=0.90, reuse_window_blocks=768,
                 seq_fraction=0.30, store_fraction=0.40,
                 p_store_rewrite=0.35, store_region_bytes=8 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(10, "bzip2", working_set_bytes=400 * KB, hot_bytes=64 * KB,
                 p_hot=0.70, p_reuse=0.90, reuse_window_blocks=512,
                 seq_fraction=0.55, store_fraction=0.31,
                 p_store_rewrite=0.30, store_region_bytes=8 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(11, "twolf", working_set_bytes=256 * KB, hot_bytes=32 * KB,
                 p_hot=0.80, p_reuse=0.93, reuse_window_blocks=512,
                 seq_fraction=0.20, store_fraction=0.30,
                 p_store_rewrite=0.38, store_region_bytes=4 * KB,
                 store_dwell=3, mean_gap=2),
        _profile(12, "swim", working_set_bytes=8 * MB, hot_bytes=2 * MB,
                 p_hot=0.45, p_reuse=0.40, reuse_window_blocks=2048,
                 seq_fraction=0.70, store_fraction=0.30,
                 p_store_rewrite=0.20, mean_gap=3),
        _profile(13, "art", working_set_bytes=4 * MB, hot_bytes=256 * KB,
                 p_hot=0.60, p_reuse=0.70, reuse_window_blocks=4096,
                 seq_fraction=0.40, store_fraction=0.25,
                 p_store_rewrite=0.25, store_region_bytes=16 * KB,
                 store_dwell=3, mean_gap=3),
        _profile(14, "equake", working_set_bytes=2 * MB, hot_bytes=192 * KB,
                 p_hot=0.65, p_reuse=0.80, reuse_window_blocks=2048,
                 seq_fraction=0.45, store_fraction=0.30,
                 p_store_rewrite=0.30, store_region_bytes=12 * KB,
                 store_dwell=4, mean_gap=3),
    ]
}


def benchmark_names() -> List[str]:
    """The fifteen benchmark labels in evaluation order."""
    return list(BENCHMARKS)


def get_profile(name: str) -> WorkloadProfile:
    """Profile for ``name``; raises ConfigurationError for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; choose from {BENCHMARKS}"
        ) from None


def make_workload(name: str, seed: Seed = 0) -> SyntheticWorkload:
    """Deterministic workload generator for benchmark ``name``."""
    return SyntheticWorkload(get_profile(name), seed=seed)
