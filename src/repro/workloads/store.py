"""Columnar on-disk trace store: streaming writer, mmap reader, cache.

The text format of :mod:`repro.workloads.trace` is human-auditable but
parses one Python object per line — at millions of references the parse
dominates every replay.  This module stores a trace as *columns* in a
chunked binary file, so loading is a handful of ``np.frombuffer`` views
(plus a CRC pass) straight into :class:`~repro.memsim.batch.BatchTrace`
columns, bypassing ``BatchTrace.from_records`` entirely.

File layout (all integers little-endian)::

    [ 8s magic ][ u32 format version ][ u32 meta_len ][ meta JSON ]
    chunk*:
        [ u32 records ][ u64 heap_len ][ u32 crc32(payload) ]
        payload = op u8[n] | addr i64[n] | size i64[n] | gap i64[n] | heap
    [ footer JSON ][ u64 footer_len ][ u64 records ][ 8s end magic ]

* ``op`` is 1 for a store, 0 for a load; the *heap* is the stores'
  value bytes packed back-to-back in record order (a store of ``size``
  bytes owns the next ``size`` heap bytes).
* Every chunk carries a CRC32 of its payload, so torn writes and bit
  rot raise :class:`~repro.errors.TraceFormatError` instead of decoding
  into garbage records.
* The footer holds the chunk directory (offsets) plus aggregate counts,
  and the trailing end-magic makes truncation detectable before any
  chunk is trusted.

Durability follows :mod:`repro.util.jsonio`: the writer appends to a
``*.tmp`` sibling with a flush+fsync per chunk and atomically
``os.replace``\\ s it into place on close, so a crash can never leave a
half-written file under the real name.

:class:`TraceCache` adds a content-addressed cache of *generated*
traces keyed by ``(benchmark profile, seed, n_references)``: benches,
campaigns and fuzz runs that request the same synthetic trace reuse one
on-disk columnar file across processes instead of regenerating it.
:func:`cached_records` is the drop-in helper — it honours the
``REPRO_TRACE_CACHE`` environment variable and falls back to plain
in-memory generation when no cache is configured.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..errors import ConfigurationError, TraceFormatError
from ..memsim.batch import BatchTrace
from ..memsim.types import AccessType
from ..util import WORD_BYTES
from ..util.jsonio import canonical_json
from .spec import make_workload
from .trace import TraceRecord

#: Identifies a columnar trace file (first eight bytes).
MAGIC = b"CPPCCOL\x00"
#: Last eight bytes of a *complete* file; absent on truncation.
END_MAGIC = b"CPPCEND\x00"
#: Bumped on any incompatible layout change.
FORMAT_VERSION = 1
#: Records buffered (and column bytes written) per chunk.
DEFAULT_CHUNK_RECORDS = 65536

_HEADER = struct.Struct("<8sII")
_CHUNK = struct.Struct("<IQI")
_TRAILER = struct.Struct("<QQ8s")
#: Fixed column bytes per record: op u8 + addr i64 + size i64 + gap i64.
_ROW_BYTES = 1 + 8 + 8 + 8


def _corrupt(path, detail: str) -> TraceFormatError:
    return TraceFormatError(f"{path}: {detail}")


class ColumnarTraceWriter:
    """Streaming columnar trace writer (bounded memory, crash-safe).

    Records are buffered until ``chunk_records`` accumulate, then packed
    into NumPy column bytes and appended as one CRC-protected chunk —
    the writer never holds more than one chunk of records, so a
    generator trace of any length streams to disk in constant memory
    (``peak_buffered`` records the high-water mark; tests assert it).

    Args:
        path: destination file (written via a ``*.tmp`` sibling and an
            atomic rename on :meth:`close`).
        chunk_records: records per chunk.
        meta: JSON-safe metadata stored in the header (e.g. benchmark
            profile, seed, requested length).
    """

    def __init__(
        self,
        path,
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        meta: Optional[dict] = None,
    ):
        if chunk_records < 1:
            raise ConfigurationError(
                f"chunk_records must be positive, got {chunk_records}"
            )
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.meta = dict(meta or {})
        self.records_written = 0
        self.peak_buffered = 0
        self.loads = 0
        self.stores = 0
        self.instructions = 0
        self._chunks: List[dict] = []
        self._op: List[int] = []
        self._addr: List[int] = []
        self._size: List[int] = []
        self._gap: List[int] = []
        self._heap = bytearray()
        self._tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp"
        )
        self._fh = open(self._tmp, "wb")
        meta_blob = canonical_json(self.meta).encode("utf-8")
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(meta_blob)))
        self._fh.write(meta_blob)

    # ------------------------------------------------------------------
    def append(self, record: TraceRecord) -> None:
        """Buffer one record; flush a chunk when the buffer fills."""
        if record.size > WORD_BYTES:
            raise TraceFormatError(
                f"the columnar store packs values into {WORD_BYTES}-byte "
                f"units; got a size-{record.size} record"
            )
        is_store = record.op is AccessType.STORE
        self._op.append(1 if is_store else 0)
        self._addr.append(record.addr)
        self._size.append(record.size)
        self._gap.append(record.gap)
        if is_store:
            self._heap += record.value
            self.stores += 1
        else:
            self.loads += 1
        self.instructions += record.instructions
        if len(self._op) > self.peak_buffered:
            self.peak_buffered = len(self._op)
        if len(self._op) >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records: Iterable[TraceRecord]) -> int:
        """Stream ``records`` through :meth:`append`; returns the count."""
        before = self.records_written + len(self._op)
        for record in records:
            self.append(record)
        return self.records_written + len(self._op) - before

    def _flush_chunk(self) -> None:
        n = len(self._op)
        if not n:
            return
        payload = b"".join(
            (
                np.array(self._op, dtype=np.uint8).tobytes(),
                np.array(self._addr, dtype=np.int64).tobytes(),
                np.array(self._size, dtype=np.int64).tobytes(),
                np.array(self._gap, dtype=np.int64).tobytes(),
                bytes(self._heap),
            )
        )
        self._chunks.append(
            {
                "offset": self._fh.tell(),
                "records": n,
                "heap": len(self._heap),
            }
        )
        self._fh.write(_CHUNK.pack(n, len(self._heap), zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += n
        self._op.clear()
        self._addr.clear()
        self._size.clear()
        self._gap.clear()
        self._heap.clear()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, write the footer, fsync and atomically publish."""
        if self._fh is None:
            return
        self._flush_chunk()
        footer = canonical_json(
            {
                "chunks": self._chunks,
                "records": self.records_written,
                "loads": self.loads,
                "stores": self.stores,
                "references": self.records_written,
                "instructions": self.instructions,
            }
        ).encode("utf-8")
        self._fh.write(footer)
        self._fh.write(
            _TRAILER.pack(len(footer), self.records_written, END_MAGIC)
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Discard the partial file (nothing appears under ``path``)."""
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()
            try:
                os.unlink(self._tmp)
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_trace(records: Iterable[TraceRecord], path, **kwargs) -> int:
    """Stream ``records`` into a columnar file; returns the count."""
    with ColumnarTraceWriter(path, **kwargs) as writer:
        return writer.extend(records)


def _heap_to_raw(heap: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Decode the packed value heap into right-aligned ``uint64`` values.

    ``sizes`` are the store records' value lengths in heap order.  Each
    distinct size is gathered with one fancy index and folded big-endian
    — at most a few iterations, never a per-record Python loop.
    """
    n = len(sizes)
    raw = np.zeros(n, dtype=np.uint64)
    if n == 0:
        return raw
    ends = np.cumsum(sizes)
    if int(ends[-1]) != len(heap):
        raise TraceFormatError(
            f"value heap holds {len(heap)} bytes but store sizes sum to "
            f"{int(ends[-1])}"
        )
    starts = ends - sizes
    for s in np.unique(sizes).tolist():
        sel = np.nonzero(sizes == s)[0]
        grp = heap[starts[sel][:, None] + np.arange(s)].astype(np.uint64)
        value = np.zeros(len(sel), dtype=np.uint64)
        for b in range(s):
            value = (value << np.uint64(8)) | grp[:, b]
        raw[sel] = value
    return raw


class ColumnarTraceReader:
    """Reader for the format written by :class:`ColumnarTraceWriter`.

    By default the file is ``mmap``-ed and the fixed-width columns are
    exposed as zero-copy ``np.frombuffer`` views — only the store
    values' unit positioning (``value_word`` / ``value_mask``) is
    computed, with the same vectorized shifts ``from_records`` uses.
    Every chunk's CRC is verified before its columns are trusted
    (``verify=False`` skips the pass for hot in-process pipelines).

    Args:
        path: columnar trace file.
        use_mmap: map the file instead of reading it into memory.
            Arrays returned from a mapped reader are views into the map
            — keep the reader open while they are in use.
        verify: check each chunk's CRC32 on first access.
    """

    def __init__(self, path, *, use_mmap: bool = True, verify: bool = True):
        self.path = Path(path)
        self.verify = verify
        self._mm = None
        self._fh = open(self.path, "rb")
        try:
            size = os.fstat(self._fh.fileno()).st_size
            if size < _HEADER.size + _TRAILER.size:
                raise _corrupt(self.path, "file too short to be a columnar trace")
            magic, version, meta_len = _HEADER.unpack(
                self._fh.read(_HEADER.size)
            )
            if magic != MAGIC:
                raise _corrupt(self.path, f"bad magic {magic!r}")
            if version != FORMAT_VERSION:
                raise _corrupt(
                    self.path,
                    f"format version {version} not supported "
                    f"(expected {FORMAT_VERSION})",
                )
            meta_end = _HEADER.size + meta_len
            if meta_end + _TRAILER.size > size:
                raise _corrupt(self.path, "truncated header metadata")
            try:
                self.meta: dict = json.loads(
                    self._fh.read(meta_len).decode("utf-8")
                )
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _corrupt(self.path, f"unreadable metadata: {exc}")
            self._fh.seek(size - _TRAILER.size)
            footer_len, n_records, end_magic = _TRAILER.unpack(
                self._fh.read(_TRAILER.size)
            )
            if end_magic != END_MAGIC:
                raise _corrupt(
                    self.path, "missing end marker (truncated file?)"
                )
            footer_off = size - _TRAILER.size - footer_len
            if footer_off < meta_end:
                raise _corrupt(self.path, "footer overlaps the header")
            self._fh.seek(footer_off)
            try:
                footer = json.loads(
                    self._fh.read(footer_len).decode("utf-8")
                )
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _corrupt(self.path, f"unreadable footer: {exc}")
            self._footer = footer
            self._chunks = footer.get("chunks", [])
            self._payload_end = footer_off
            if footer.get("records") != n_records or sum(
                c["records"] for c in self._chunks
            ) != n_records:
                raise _corrupt(self.path, "record counts disagree")
            self.n_records = int(n_records)
            if use_mmap and size:
                self._mm = mmap.mmap(
                    self._fh.fileno(), 0, access=mmap.ACCESS_READ
                )
                self._buf = self._mm
            else:
                self._fh.seek(0)
                self._buf = self._fh.read()
            self._verified = [not verify] * len(self._chunks)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_records

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the file."""
        return len(self._chunks)

    def stats(self) -> Dict[str, int]:
        """Aggregate counts recorded in the footer (no decode needed)."""
        return {
            key: int(self._footer[key])
            for key in ("loads", "stores", "references", "instructions")
        }

    def _chunk_columns(self, index: int):
        """``(op, addr, size, gap, heap)`` views of one chunk."""
        entry = self._chunks[index]
        offset, n, heap_len = entry["offset"], entry["records"], entry["heap"]
        payload_off = offset + _CHUNK.size
        payload_len = n * _ROW_BYTES + heap_len
        if payload_off + payload_len > self._payload_end:
            raise _corrupt(self.path, f"chunk {index} overruns the footer")
        head_n, head_heap, crc = _CHUNK.unpack_from(self._buf, offset)
        if head_n != n or head_heap != heap_len:
            raise _corrupt(
                self.path, f"chunk {index} header disagrees with the directory"
            )
        if not self._verified[index]:
            view = memoryview(self._buf)[payload_off : payload_off + payload_len]
            if zlib.crc32(view) != crc:
                raise _corrupt(self.path, f"chunk {index} CRC mismatch")
            self._verified[index] = True
        op = np.frombuffer(self._buf, dtype=np.uint8, count=n, offset=payload_off)
        addr = np.frombuffer(
            self._buf, dtype=np.int64, count=n, offset=payload_off + n
        )
        size = np.frombuffer(
            self._buf, dtype=np.int64, count=n, offset=payload_off + 9 * n
        )
        gap = np.frombuffer(
            self._buf, dtype=np.int64, count=n, offset=payload_off + 17 * n
        )
        heap = np.frombuffer(
            self._buf,
            dtype=np.uint8,
            count=heap_len,
            offset=payload_off + _ROW_BYTES * n,
        )
        if int(op.max(initial=0)) > 1:
            raise _corrupt(self.path, f"chunk {index} has an op byte > 1")
        return op, addr, size, gap, heap

    def chunk_batch(self, index: int) -> BatchTrace:
        """One chunk as a :class:`BatchTrace` (columns are file views)."""
        op, addr, size, gap, heap = self._chunk_columns(index)
        is_store = op.view(np.bool_)
        raw = np.zeros(len(op), dtype=np.uint64)
        raw[is_store] = _heap_to_raw(heap, size[is_store])
        return BatchTrace.from_columns(addr, size, is_store, gap, raw)

    def iter_chunks(self) -> Iterator[BatchTrace]:
        """Yield each chunk as a :class:`BatchTrace`, in trace order."""
        for index in range(len(self._chunks)):
            yield self.chunk_batch(index)

    def batch_trace(self, limit: Optional[int] = None) -> BatchTrace:
        """The whole trace (or its first ``limit`` rows) as one batch.

        A single-chunk file is returned zero-copy; multi-chunk files
        concatenate their column views once (still no record objects).
        """
        if limit is None and len(self._chunks) == 1:
            return self.chunk_batch(0)
        parts: List[BatchTrace] = []
        have = 0
        for chunk in self.iter_chunks():
            parts.append(chunk)
            have += len(chunk)
            if limit is not None and have >= limit:
                break
        if not parts:
            return BatchTrace.from_records([])
        merged = BatchTrace(
            addr=np.concatenate([p.addr for p in parts]),
            size=np.concatenate([p.size for p in parts]),
            is_store=np.concatenate([p.is_store for p in parts]),
            gap=np.concatenate([p.gap for p in parts]),
            value_word=np.concatenate([p.value_word for p in parts]),
            value_mask=np.concatenate([p.value_mask for p in parts]),
        )
        if limit is not None and len(merged) > limit:
            merged = merged.slice(0, limit)
        return merged

    def records(self) -> Iterator[TraceRecord]:
        """Decode back into :class:`TraceRecord` objects, lazily."""
        for index in range(len(self._chunks)):
            op, addr, size, gap, heap = self._chunk_columns(index)
            heap_bytes = heap.tobytes()
            pos = 0
            for o, a, s, g in zip(
                op.tolist(), addr.tolist(), size.tolist(), gap.tolist()
            ):
                if o:
                    value = heap_bytes[pos : pos + s]
                    pos += s
                    yield TraceRecord(AccessType.STORE, a, s, g, value)
                else:
                    yield TraceRecord(AccessType.LOAD, a, s, g)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the map and handle.

        Live column views keep an mmap exporting buffers; in that case
        the map stays open until the arrays are garbage collected.
        """
        mm, self._mm = self._mm, None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                pass
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "ColumnarTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_batch_trace(path, *, verify: bool = True) -> BatchTrace:
    """Load a columnar file into a self-contained :class:`BatchTrace`.

    Reads the file into memory (no mmap) so the returned arrays stay
    valid after the reader is gone.
    """
    with ColumnarTraceReader(path, use_mmap=False, verify=verify) as reader:
        return reader.batch_trace()


# ----------------------------------------------------------------------
# Content-addressed cache of generated traces
# ----------------------------------------------------------------------
#: Environment variable naming the shared cache directory.
CACHE_ENV = "REPRO_TRACE_CACHE"


class TraceCache:
    """Cross-process cache of generated synthetic traces.

    Keyed by everything the generated stream depends on — benchmark
    profile, workload seed and requested reference count (plus the
    format version, so incompatible files never collide).  Creation is
    atomic (writer tmp file + rename), so concurrent processes racing
    on the same key simply publish identical files.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, benchmark: str, seed, n_references: int) -> str:
        """Content hash of everything the generated trace depends on."""
        digest = hashlib.sha256(
            canonical_json(
                {
                    "benchmark": benchmark,
                    "seed": repr(seed),
                    "n_references": n_references,
                    "format_version": FORMAT_VERSION,
                }
            ).encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def path_for(self, benchmark: str, seed, n_references: int) -> Path:
        """Cache file path for the key (may not exist yet)."""
        key = self.key(benchmark, seed, n_references)
        return self.root / f"trace-{benchmark}-{n_references}-{key}.coltrace"

    def get_or_create(
        self,
        benchmark: str,
        seed,
        n_references: int,
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> Path:
        """The cached columnar file, generating it on first use."""
        path = self.path_for(benchmark, seed, n_references)
        if not path.exists():
            workload = make_workload(benchmark, seed=seed)
            write_trace(
                workload.records(n_references),
                path,
                chunk_records=chunk_records,
                meta={
                    "benchmark": benchmark,
                    "seed": repr(seed),
                    "n_references": n_references,
                },
            )
        return path


def default_trace_cache() -> Optional[TraceCache]:
    """The cache named by ``REPRO_TRACE_CACHE``, or None when unset."""
    root = os.environ.get(CACHE_ENV)
    return TraceCache(root) if root else None


def cached_records(
    benchmark: str, seed, n_references: int
) -> List[TraceRecord]:
    """Materialized records for a synthetic trace, via the cache if set.

    With ``REPRO_TRACE_CACHE`` configured the trace is generated once
    per ``(benchmark, seed, n_references)`` across all processes and
    decoded from the columnar file (bit-identical to fresh generation —
    tested); otherwise it is generated in memory as before.
    """
    cache = default_trace_cache()
    if cache is None:
        return list(make_workload(benchmark, seed=seed).records(n_references))
    path = cache.get_or_create(benchmark, seed, n_references)
    with ColumnarTraceReader(path, use_mmap=False) as reader:
        return list(reader.records())
