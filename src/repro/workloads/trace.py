"""Memory-access trace format and (de)serialisation.

A trace is a sequence of :class:`TraceRecord`; each record carries the
instruction gap since the previous memory operation so the timing model
and the Tavg bookkeeping can reconstruct time without simulating every
non-memory instruction.
"""

from __future__ import annotations

import dataclasses
from typing import IO, Iterable, Iterator, List, Sequence, Tuple

from ..errors import TraceFormatError
from ..memsim.types import AccessType


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One memory reference.

    Attributes:
        op: load or store.
        addr: byte address (naturally aligned to ``size``).
        size: access size in bytes.
        gap: non-memory instructions executed since the previous record.
        value: bytes stored (stores only; length == size).
    """

    op: AccessType
    addr: int
    size: int
    gap: int = 0
    value: bytes = b""

    def __post_init__(self):
        if self.size < 1:
            raise TraceFormatError(f"record size must be positive, got {self.size}")
        if self.addr < 0:
            raise TraceFormatError("record address must be non-negative")
        if self.gap < 0:
            raise TraceFormatError("record gap must be non-negative")
        if self.op is AccessType.STORE and len(self.value) != self.size:
            raise TraceFormatError(
                f"store record carries {len(self.value)} bytes for size {self.size}"
            )

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (the gap plus itself)."""
        return self.gap + 1


def save_trace(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write records in the one-line-per-record text format.

    Format: ``L addr size gap`` or ``S addr size gap hexvalue``.
    Returns the number of records written.
    """
    count = 0
    for r in records:
        if r.op is AccessType.LOAD:
            fh.write(f"L {r.addr:x} {r.size} {r.gap}\n")
        else:
            fh.write(f"S {r.addr:x} {r.size} {r.gap} {r.value.hex()}\n")
        count += 1
    return count


def load_trace(fh: IO[str]) -> Iterator[TraceRecord]:
    """Parse the format written by :func:`save_trace`."""
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        try:
            kind = fields[0].upper()
            addr = int(fields[1], 16)
            size = int(fields[2])
            gap = int(fields[3])
            if kind == "L":
                yield TraceRecord(AccessType.LOAD, addr, size, gap)
            elif kind == "S":
                yield TraceRecord(
                    AccessType.STORE, addr, size, gap, bytes.fromhex(fields[4])
                )
            else:
                raise TraceFormatError(f"line {lineno}: unknown op {kind!r}")
        except (IndexError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: {line!r}: {exc}") from exc


def trace_stats(
    records: Iterable[TraceRecord],
) -> Tuple[dict, Sequence[TraceRecord]]:
    """Aggregate counts of a trace (loads, stores, instructions).

    Returns ``(stats, records)`` where ``records`` is re-iterable: a
    sequence input is handed back untouched, a generator is materialized
    first.  Statting a one-shot iterator used to silently consume it, so
    a caller who then replayed the "trace" replayed nothing.
    """
    if not isinstance(records, Sequence):
        records = tuple(records)
    loads = stores = instructions = 0
    for r in records:
        instructions += r.instructions
        if r.op is AccessType.LOAD:
            loads += 1
        else:
            stores += 1
    stats = {
        "loads": loads,
        "stores": stores,
        "references": loads + stores,
        "instructions": instructions,
    }
    return stats, records


def materialize(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Force a generator trace into a list (for multi-pass experiments)."""
    return list(records)
