"""Trace transformations: slicing, relocation, merging, scaling.

Building blocks for derived experiments:

* :func:`offset_addresses` relocates a trace so two copies do not alias —
  the basis of multiprogrammed mixes;
* :func:`interleave` round-robins several traces into one stream (or, for
  the coherence substrate, splits one stream across cores *without*
  relocation to force sharing);
* :func:`scale_gaps` stretches or compresses the non-memory instruction
  gaps (a crude IPC/memory-intensity knob);
* :func:`take` / :func:`drop` slice by reference count.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Iterator, List, Sequence

from ..errors import ConfigurationError
from .trace import TraceRecord


def take(records: Iterable[TraceRecord], n: int) -> Iterator[TraceRecord]:
    """First ``n`` records."""
    if n < 0:
        raise ConfigurationError("take count must be non-negative")
    return itertools.islice(records, n)


def drop(records: Iterable[TraceRecord], n: int) -> Iterator[TraceRecord]:
    """Everything after the first ``n`` records."""
    if n < 0:
        raise ConfigurationError("drop count must be non-negative")
    return itertools.islice(records, n, None)


def offset_addresses(
    records: Iterable[TraceRecord], offset: int
) -> Iterator[TraceRecord]:
    """Relocate every address by ``offset`` bytes (must preserve
    alignment: offset is required to be 8-byte aligned)."""
    if offset % 8:
        raise ConfigurationError("offset must be 8-byte aligned")
    for r in records:
        yield dataclasses.replace(r, addr=r.addr + offset)


def scale_gaps(
    records: Iterable[TraceRecord], factor: float
) -> Iterator[TraceRecord]:
    """Multiply every instruction gap by ``factor`` (>= 0)."""
    if factor < 0:
        raise ConfigurationError("gap factor must be non-negative")
    for r in records:
        yield dataclasses.replace(r, gap=int(r.gap * factor))


def interleave(
    *traces: Iterable[TraceRecord],
) -> Iterator[TraceRecord]:
    """Round-robin several traces into one stream.

    Stops when the shortest trace is exhausted, keeping the mix ratio
    exact.  Relocate the inputs first (``offset_addresses``) for a
    multiprogrammed mix, or leave them aliased to model sharing.
    """
    if not traces:
        raise ConfigurationError("need at least one trace")
    iterators = [iter(t) for t in traces]
    while True:
        batch: List[TraceRecord] = []
        for it in iterators:
            record = next(it, None)
            if record is None:
                return
            batch.append(record)
        yield from batch


def multiprogrammed_mix(
    traces: Sequence[Iterable[TraceRecord]],
    *,
    spacing_bytes: int = 1 << 30,
) -> Iterator[TraceRecord]:
    """Relocate and interleave ``traces`` into one non-aliasing stream."""
    if spacing_bytes % 8:
        raise ConfigurationError("spacing must be 8-byte aligned")
    relocated = [
        offset_addresses(trace, i * spacing_bytes)
        for i, trace in enumerate(traces)
    ]
    return interleave(*relocated)
