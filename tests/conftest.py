"""Shared fixtures: small caches and hierarchies sized for fast tests."""

from __future__ import annotations

import random

import pytest

from repro.cppc import CppcProtection
from repro.memsim import (
    Cache,
    CacheGeometry,
    HierarchyConfig,
    MainMemory,
    MemoryHierarchy,
)

#: A small hierarchy: 1KB/2-way/32B L1 over 8KB/4-way/32B L2.
TINY_CONFIG = HierarchyConfig(
    l1d=CacheGeometry(
        size_bytes=1024, ways=2, block_bytes=32, unit_bytes=8, latency_cycles=2
    ),
    l2=CacheGeometry(
        size_bytes=8192, ways=4, block_bytes=32, unit_bytes=32, latency_cycles=8
    ),
)


def make_tiny_cache(protection=None, *, size=1024, ways=2, block=32, unit=8):
    """A small standalone cache backed directly by main memory."""
    memory = MainMemory(block_bytes=block)
    cache = Cache(
        "L1D",
        size,
        ways,
        block,
        unit_bytes=unit,
        protection=protection,
        next_level=memory,
    )
    return cache, memory


def make_cppc_cache(**cppc_kwargs):
    """A small cache protected by CPPC (64-bit units)."""
    protection = CppcProtection(data_bits=64, **cppc_kwargs)
    return make_tiny_cache(protection)


def cppc_hierarchy_factory(num_pairs=1, byte_shifting=True):
    """Protection factory for a tiny all-CPPC hierarchy."""

    def factory(level, unit_bits):
        return CppcProtection(
            data_bits=unit_bits, num_pairs=num_pairs, byte_shifting=byte_shifting
        )

    return factory


@pytest.fixture
def tiny_hierarchy():
    """Unprotected tiny hierarchy."""
    return MemoryHierarchy(TINY_CONFIG)


@pytest.fixture
def cppc_hierarchy():
    """Tiny hierarchy with CPPC at both levels."""
    return MemoryHierarchy(
        TINY_CONFIG, protection_factory=cppc_hierarchy_factory()
    )


@pytest.fixture
def rng():
    """Deterministic RNG for test-local randomness."""
    return random.Random(1234)


def fill_random(cache, memory, rng, n_stores=60, addr_space=4096):
    """Store random words through ``cache``; returns {addr: value_bytes}."""
    golden = {}
    for _ in range(n_stores):
        addr = rng.randrange(addr_space // 8) * 8
        value = rng.getrandbits(64).to_bytes(8, "big")
        cache.store(addr, value)
        golden[addr] = value
    return golden
