"""Dedicated tests for repro.reliability.aliasing (paper Section 4.7)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.reliability.aliasing import (
    aliasing_vulnerable_bits,
    mttf_aliasing_years,
)
from repro.reliability.mttf import ReliabilityInputs

#: The paper's L2 configuration (Table 2 gzip-like numbers).
L2 = ReliabilityInputs(
    size_bits=512 * 1024 * 8,
    dirty_fraction=0.3,
    tavg_cycles=2.0e6,
)


class TestVulnerableBits:
    def test_section_411_table(self):
        """The k values the paper derives for each pair count."""
        assert aliasing_vulnerable_bits(8, 1) == 7
        assert aliasing_vulnerable_bits(8, 2) == 3
        assert aliasing_vulnerable_bits(8, 4) == 1
        assert aliasing_vulnerable_bits(8, 8) == 0

    def test_more_pairs_never_increases_exposure(self):
        values = [aliasing_vulnerable_bits(8, p) for p in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aliasing_vulnerable_bits(8, 0)
        with pytest.raises(ConfigurationError):
            aliasing_vulnerable_bits(0, 1)
        with pytest.raises(ConfigurationError):
            aliasing_vulnerable_bits(8, 3)  # 3 does not divide 8


class TestMttf:
    def test_eight_pairs_eliminate_the_hazard(self):
        assert mttf_aliasing_years(L2, num_pairs=8) == math.inf

    def test_mttf_grows_with_fewer_vulnerable_bits(self):
        one = mttf_aliasing_years(L2, num_pairs=1)
        two = mttf_aliasing_years(L2, num_pairs=2)
        four = mttf_aliasing_years(L2, num_pairs=4)
        assert one < two < four

    def test_scales_inversely_with_dirty_bits(self):
        """Twice the dirty bits -> twice the first-fault rate -> half the
        MTTF (the second-fault window is per-bit, unchanged)."""
        small = mttf_aliasing_years(L2)
        big = mttf_aliasing_years(
            ReliabilityInputs(
                size_bits=2 * L2.size_bits,
                dirty_fraction=L2.dirty_fraction,
                tavg_cycles=L2.tavg_cycles,
            )
        )
        assert big == pytest.approx(small / 2)

    def test_scales_inversely_with_scrub_window(self):
        """A 10x longer Tavg leaves 10x the window for the second fault."""
        slow = mttf_aliasing_years(
            ReliabilityInputs(
                size_bits=L2.size_bits,
                dirty_fraction=L2.dirty_fraction,
                tavg_cycles=10 * L2.tavg_cycles,
            )
        )
        assert slow == pytest.approx(mttf_aliasing_years(L2) / 10)

    def test_paper_magnitude(self):
        """Section 4.7: ~4.19e20 years for the L2 configuration — only
        the order of magnitude is pinned here (inputs are Table 2
        roundings)."""
        assert 1e19 < mttf_aliasing_years(L2) < 1e22
