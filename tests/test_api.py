"""Public API surface and exception-hierarchy tests."""

import pytest

import repro
from repro import build_cppc_hierarchy
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    FaultLocatorError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UncorrectableError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, AlignmentError, SimulationError,
        UncorrectableError, TraceFormatError, FaultLocatorError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_locator_error_is_uncorrectable(self):
        assert issubclass(FaultLocatorError, UncorrectableError)

    def test_uncorrectable_carries_detail(self):
        e = UncorrectableError("boom", detail={"loc": 1})
        assert e.detail == {"loc": 1}


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        hierarchy = build_cppc_hierarchy()
        hierarchy.store(0x1000, b"\x12" * 8)
        assert hierarchy.load(0x1000, 8).data == b"\x12" * 8

    def test_build_cppc_hierarchy_uses_paper_shapes(self):
        hierarchy = build_cppc_hierarchy()
        assert hierarchy.l1d.protection.name == "cppc"
        assert hierarchy.l1d.protection.code.data_bits == 64
        assert hierarchy.l2.protection.code.data_bits == 256

    def test_build_with_pairs(self):
        hierarchy = build_cppc_hierarchy(num_pairs=4)
        assert hierarchy.l1d.protection.registers.num_pairs == 4

    def test_subpackages_importable(self):
        import repro.coding
        import repro.cppc
        import repro.energy
        import repro.faults
        import repro.harness
        import repro.memsim
        import repro.reliability
        import repro.timing
        import repro.util
        import repro.workloads

    @pytest.mark.parametrize("module_name", [
        "coding", "cppc", "energy", "faults", "harness",
        "memsim", "reliability", "timing", "util", "workloads",
    ])
    def test_subpackage_all_exports_resolve(self, module_name):
        import importlib

        module = importlib.import_module(f"repro.{module_name}")
        for name in module.__all__:
            assert hasattr(module, name), f"repro.{module_name}.{name}"
