"""The CPPC R1 ^ R2 invariant under randomized batch/scalar replay.

These tests drive both engines through randomized store / evict /
overwrite interleavings (seeded via :func:`repro.util.make_rng`) and
assert, word-for-word, that the batch fast path reproduces the scalar
simulator — including that R1 ^ R2 always equals the XOR of the rotated
resident dirty words, the equality CPPC's recovery (paper Section 3)
depends on.
"""

import pytest

from repro.memsim import AccessType
from repro.util import WORD_BYTES, make_rng, rotl_bytes
from repro.workloads import FastReplay, TraceRecord

BLOCK = 32
UNITS_PER_BLOCK = BLOCK // WORD_BYTES


def random_records(rng, n, *, blocks=64, store_fraction=0.6):
    """A trace over few blocks, dense enough to force dirty evictions."""
    records = []
    for _ in range(n):
        base = BLOCK * rng.randrange(blocks)
        size = rng.choice([1, 2, 4, 8])
        offset = size * rng.randrange(BLOCK // size)
        gap = rng.randrange(4)
        if rng.random() < store_fraction:
            value = bytes(rng.randrange(256) for _ in range(size))
            records.append(
                TraceRecord(AccessType.STORE, base + offset, size, gap, value)
            )
        else:
            records.append(TraceRecord(AccessType.LOAD, base + offset, size, gap))
    return records


def expected_dirty_xor(result, *, num_pairs, byte_shifting, num_classes=8):
    """Recompute the invariant directly from the final line states."""
    expected = {i: 0 for i in range(num_pairs)}
    classes_per_pair = num_classes // num_pairs
    for (set_index, _way), line in result.batch.lines.items():
        for unit, dirty in enumerate(line.dirty):
            if not dirty:
                continue
            word = line.data[unit * WORD_BYTES : (unit + 1) * WORD_BYTES]
            value = int.from_bytes(word, "big")
            cls = (set_index * UNITS_PER_BLOCK + unit) % num_classes
            if byte_shifting:
                value = rotl_bytes(value, cls)
            expected[cls // classes_per_pair] ^= value
    return expected


class TestRandomizedInvariant:
    @pytest.mark.parametrize("num_pairs", [1, 2, 4, 8])
    @pytest.mark.parametrize("byte_shifting", [True, False])
    def test_interleavings_match_scalar(self, num_pairs, byte_shifting):
        rng = make_rng(("batch-invariant", num_pairs, byte_shifting))
        records = random_records(rng, 600)
        replay = FastReplay(
            1024,
            2,
            BLOCK,
            num_pairs=num_pairs,
            byte_shifting=byte_shifting,
            equivalence="always",
        )
        # "always" cross-checks lines, stats, R1/R2 and parities
        # word-for-word against the scalar Cache (raises on divergence).
        result = replay.run(records)
        assert result.checked
        # The trace must actually exercise eviction and overwrite paths.
        assert result.stats.evictions_dirty > 0
        assert result.stats.stores_to_dirty_units > 0
        assert result.batch.dirty_xor == expected_dirty_xor(
            result, num_pairs=num_pairs, byte_shifting=byte_shifting
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_seed_sweep_single_pair(self, seed):
        rng = make_rng(("batch-invariant-sweep", seed))
        records = random_records(rng, 400, blocks=48, store_fraction=0.75)
        result = FastReplay(1024, 2, BLOCK, equivalence="always").run(records)
        assert result.checked
        assert result.stats.evictions_dirty > 0


class TestRotationClasses:
    @pytest.mark.parametrize("rotation_class", range(8))
    def test_single_class_store_rotates_into_r1(self, rotation_class):
        # Pick (set, unit) so that set*units_per_block + unit lands in
        # the requested rotation class, then store one word there.
        set_index = rotation_class // UNITS_PER_BLOCK
        unit = rotation_class % UNITS_PER_BLOCK
        addr = set_index * BLOCK + unit * WORD_BYTES
        value = bytes(range(0x10, 0x18))
        records = [TraceRecord(AccessType.STORE, addr, 8, 0, value)]
        result = FastReplay(
            1024,
            2,
            BLOCK,
            num_pairs=8,
            equivalence="always",
        ).run(records)
        rotated = rotl_bytes(int.from_bytes(value, "big"), rotation_class)
        for pair_index, pair in enumerate(result.registers.pairs):
            if pair_index == rotation_class:
                assert pair.r1 == rotated
                assert pair.r1_parity == bin(rotated).count("1") & 1
            else:
                assert pair.r1 == 0
            assert pair.r2 == 0

    @pytest.mark.parametrize("rotation_class", range(8))
    def test_overwrite_moves_old_value_to_r2(self, rotation_class):
        set_index = rotation_class // UNITS_PER_BLOCK
        unit = rotation_class % UNITS_PER_BLOCK
        addr = set_index * BLOCK + unit * WORD_BYTES
        first = b"\xaa" * 8
        second = b"\x5b" * 8
        records = [
            TraceRecord(AccessType.STORE, addr, 8, 0, first),
            TraceRecord(AccessType.STORE, addr, 8, 0, second),
        ]
        result = FastReplay(
            1024,
            2,
            BLOCK,
            num_pairs=8,
            equivalence="always",
        ).run(records)
        pair = result.registers.pairs[rotation_class]
        rot_first = rotl_bytes(int.from_bytes(first, "big"), rotation_class)
        rot_second = rotl_bytes(int.from_bytes(second, "big"), rotation_class)
        assert pair.r1 == rot_first ^ rot_second
        assert pair.r2 == rot_first
        # The invariant holds: R1 ^ R2 is the rotated resident word.
        assert pair.r1 ^ pair.r2 == rot_second
