"""Batch replay engine: packing, configuration, scalar equivalence."""

import numpy as np
import pytest

from repro.errors import (
    AlignmentError,
    ConfigurationError,
    EquivalenceError,
    TraceFormatError,
)
from repro.memsim import AccessType, BatchReplayEngine, BatchTrace, cross_check_scalar
from repro.workloads import (
    FastReplay,
    TraceRecord,
    TraceReplayer,
    fast_replay,
    make_workload,
    materialize,
)


def store(addr, value, gap=0):
    return TraceRecord(AccessType.STORE, addr, len(value), gap=gap, value=value)


def load(addr, size=8, gap=0):
    return TraceRecord(AccessType.LOAD, addr, size, gap=gap)


def workload_records(name="gcc", n=1500, seed=7):
    return materialize(make_workload(name, seed=seed).records(n))


class TestBatchTrace:
    def test_packs_fields(self):
        trace = BatchTrace.from_records(
            [
                store(0, b"\x11" * 8),
                load(8, 4, gap=3),
                store(16, b"\xab\xcd", gap=1),
            ]
        )
        assert len(trace) == 3
        assert trace.is_store.tolist() == [True, False, True]
        assert trace.gap.tolist() == [0, 3, 1]
        assert trace.instructions == 3 + 4

    def test_positions_store_bytes_inside_unit(self):
        # A 2-byte store at byte offset 6 of its unit lands in the two
        # least-significant bytes of the big-endian word.
        trace = BatchTrace.from_records([store(6, b"\xab\xcd")])
        assert int(trace.value_word[0]) == 0xABCD
        assert int(trace.value_mask[0]) == 0xFFFF
        # At offset 0 it occupies the most-significant bytes.
        trace = BatchTrace.from_records([store(0, b"\xab\xcd")])
        assert int(trace.value_word[0]) == 0xABCD << 48
        assert int(trace.value_mask[0]) == 0xFFFF << 48

    def test_loads_have_empty_mask(self):
        trace = BatchTrace.from_records([load(0), load(20, 4)])
        assert trace.value_mask.tolist() == [0, 0]

    def test_rejects_misaligned_access(self):
        with pytest.raises(AlignmentError):
            BatchTrace.from_records([load(3, 2)])

    def test_rejects_wide_access(self):
        with pytest.raises(AlignmentError):
            BatchTrace.from_records([load(0, 16)])

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(AlignmentError):
            BatchTrace.from_records([load(0, 3)])

    def test_empty_trace_replays(self):
        engine = BatchReplayEngine(1024, 2, 32)
        result = engine.replay(BatchTrace.from_records([]))
        assert result.references == 0
        assert result.stats.fills == 0
        assert result.lines == {}


class TestEngineConfiguration:
    def test_rejects_wide_units(self):
        with pytest.raises(ConfigurationError):
            BatchReplayEngine(1024, 2, 32, unit_bytes=32)

    def test_rejects_non_lru_policy(self):
        with pytest.raises(ConfigurationError):
            BatchReplayEngine(1024, 2, 32, policy="fifo")

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            BatchReplayEngine(1000, 3, 32)

    def test_rejects_bad_register_geometry(self):
        with pytest.raises(ConfigurationError):
            BatchReplayEngine(1024, 2, 32, num_pairs=3)


class TestScalarEquivalence:
    @pytest.mark.parametrize("workload_name", ["gcc", "mcf", "art"])
    def test_workload_matches_scalar(self, workload_name):
        records = workload_records(workload_name)
        replay = FastReplay(4096, 2, 32, equivalence="always")
        result = replay.run(records)
        assert result.checked
        assert result.replay.references == len(records)
        stats = result.stats
        assert stats.read_hits + stats.read_misses == result.replay.loads

    def test_directed_eviction_sequence(self):
        # Three blocks aliasing into one set of a 2-way cache: the third
        # fill must evict, writing dirty words back through R2.
        spread = 1024 // 2  # one set's worth of address stride
        records = [
            store(0, b"\x01" * 8),
            store(spread, b"\x02" * 8),
            store(2 * spread, b"\x03" * 8),
            load(0),
            store(8, b"\xff" * 4 + b"\x00" * 4),
            store(8, b"\x55" * 8),
        ]
        result = FastReplay(1024, 2, 32, equivalence="always").run(records)
        assert result.checked
        assert result.stats.evictions_dirty >= 1
        assert result.stats.stores_to_dirty_units >= 1

    def test_cross_check_flags_tampered_registers(self):
        records = workload_records(n=400)
        replay = FastReplay(1024, 2, 32, equivalence="never")
        batch = replay.engine.replay(BatchTrace.from_records(records))
        batch.registers.pairs[0].r1 ^= 1
        cache = replay.scalar_cache()
        TraceReplayer(cache).run(records)
        problems = cross_check_scalar(batch, cache, cache.next_level)
        assert any("r1" in p for p in problems)

    def test_batch_memory_matches_scalar_writebacks(self):
        records = workload_records(n=800)
        replay = FastReplay(1024, 2, 32, equivalence="never")
        batch = replay.engine.replay(BatchTrace.from_records(records))
        cache = replay.scalar_cache()
        TraceReplayer(cache).run(records)
        assert cross_check_scalar(batch, cache, cache.next_level) == []


class TestFastReplay:
    def test_auto_mode_checks_small_traces(self):
        result = FastReplay(equivalence="auto", equivalence_limit=64).run(
            workload_records(n=50)
        )
        assert result.checked

    def test_auto_mode_skips_long_traces(self):
        result = FastReplay(equivalence="auto", equivalence_limit=64).run(
            workload_records(n=200)
        )
        assert not result.checked

    def test_never_mode_skips(self):
        result = FastReplay(equivalence="never").run(workload_records(n=50))
        assert not result.checked

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            FastReplay(equivalence="sometimes")

    def test_rejects_negative_limit(self):
        with pytest.raises(ConfigurationError):
            FastReplay(equivalence_limit=-1)

    def test_wrapper_function(self):
        result = fast_replay(workload_records(n=60), equivalence="always")
        assert result.checked
        assert result.registers is result.batch.registers

    def test_dirty_xor_property(self):
        result = fast_replay(workload_records(n=60), equivalence="always")
        xors = result.batch.dirty_xor
        assert set(xors) == {0}
        pair = result.batch.registers.pairs[0]
        assert xors[0] == pair.r1 ^ pair.r2


class TestRecordValidation:
    def test_trace_record_rejects_bad_store(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(AccessType.STORE, 0, 8, value=b"\x00")

    def test_equivalence_error_carries_mismatches(self):
        err = EquivalenceError("diverged", mismatches=["r1: 1 != 2"])
        assert err.mismatches == ["r1: 1 != 2"]
        assert isinstance(err, Exception)


class TestRunBench:
    def test_report_contents(self):
        from repro.tools.run_bench import run_bench

        report = run_bench("gcc", 1200, equivalence_len=300, repeats=1)
        assert report["trace_len"] == 1200
        assert report["equivalence_checked_references"] == 300
        assert report["batch_ops_per_sec"] > 0
        assert report["speedup"] == pytest.approx(
            report["scalar_seconds"] / report["batch_seconds"]
        )

    def test_cli_writes_json(self, tmp_path, capsys):
        import json

        from repro.tools.run_bench import main

        out = tmp_path / "BENCH_replay.json"
        code = main(
            [
                "--trace-len",
                "1000",
                "--equivalence-len",
                "200",
                "--repeats",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["trace_len"] == 1000
        assert "speedup" in capsys.readouterr().out

    def test_cli_min_speedup_gate(self, tmp_path):
        from repro.tools.run_bench import main

        out = tmp_path / "BENCH_replay.json"
        code = main(
            [
                "--trace-len",
                "500",
                "--equivalence-len",
                "0",
                "--repeats",
                "1",
                "--min-speedup",
                "1e9",
                "--output",
                str(out),
            ]
        )
        # A failed ratio gate is "results exist but a claim failed" —
        # EXIT_PARTIAL under the shared exit-code contract.
        assert code == 3


class TestTracestoreBench:
    def test_report_and_gate(self, tmp_path, capsys):
        import json

        from repro.tools.run_bench import main

        out = tmp_path / "BENCH_tracestore.json"
        code = main(
            [
                "--trace-format",
                "columnar",
                "--trace-len",
                "3000",
                "--chunk-records",
                "512",
                "--equivalence-len",
                "300",
                "--repeats",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "tracestore"
        assert report["trace_len"] == 3000
        assert report["columns_identical"] is True
        assert report["writer_peak_buffered"] <= 512
        assert report["load_speedup"] > 0
        assert "load-speedup" in capsys.readouterr().out

    def test_unreachable_load_gate_is_partial(self, tmp_path):
        from repro.tools.run_bench import main

        code = main(
            [
                "--trace-format",
                "columnar",
                "--trace-len",
                "1000",
                "--equivalence-len",
                "0",
                "--repeats",
                "1",
                "--min-load-speedup",
                "1e9",
                "--output",
                str(tmp_path / "BENCH_tracestore.json"),
            ]
        )
        assert code == 3


def test_module_exports_are_arrays():
    trace = BatchTrace.from_records([load(0)])
    assert isinstance(trace.addr, np.ndarray)
    assert trace.value_word.dtype == np.uint64
