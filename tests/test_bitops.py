"""Unit and property tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util import (
    bit_positions,
    bytes_to_words,
    check_word,
    flip_bit,
    flip_bits,
    from_bytes_be,
    get_bit,
    get_byte,
    iter_bytes,
    mask,
    parity,
    popcount,
    rotl_bits,
    rotl_bytes,
    rotr_bytes,
    set_bit,
    set_byte,
    to_bytes_be,
    words_to_bytes,
    xor_reduce,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMaskAndCheck:
    def test_mask_widths(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(64) == (1 << 64) - 1

    def test_mask_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            mask(-1)

    def test_check_word_accepts_in_range(self):
        assert check_word(0xFF, 8) == 0xFF

    def test_check_word_rejects_too_wide(self):
        with pytest.raises(ConfigurationError):
            check_word(0x100, 8)

    def test_check_word_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_word(-1, 8)


class TestPopcountParity:
    def test_popcount_basics(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(mask(64)) == 64

    def test_popcount_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            popcount(-5)

    def test_parity_basics(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(0b11) == 0

    def test_negative_errors_name_the_right_function(self):
        # parity() once raised popcount's copy-pasted message; pin both.
        with pytest.raises(ConfigurationError, match="popcount requires"):
            popcount(-1)
        with pytest.raises(ConfigurationError, match="parity requires"):
            parity(-1)

    @given(words, st.integers(min_value=0, max_value=63))
    def test_single_flip_changes_parity(self, x, k):
        assert parity(x) != parity(flip_bit(x, k))


class TestBitIndexing:
    def test_bit0_is_msb(self):
        assert get_bit(1 << 63, 0) == 1
        assert get_bit(1, 63) == 1

    def test_set_bit_roundtrip(self):
        x = set_bit(0, 5, 1)
        assert get_bit(x, 5) == 1
        assert set_bit(x, 5, 0) == 0

    def test_set_bit_rejects_bad_value(self):
        with pytest.raises(ConfigurationError):
            set_bit(0, 0, 2)

    def test_flip_bit_out_of_range(self):
        with pytest.raises(ConfigurationError):
            flip_bit(0, 64)

    @given(words, st.integers(min_value=0, max_value=63))
    def test_flip_twice_is_identity(self, x, k):
        assert flip_bit(flip_bit(x, k), k) == x

    @given(words)
    def test_bit_positions_match_popcount(self, x):
        assert len(bit_positions(x)) == popcount(x)

    @given(st.sets(st.integers(min_value=0, max_value=63)))
    def test_flip_bits_sets_exact_positions(self, positions):
        x = flip_bits(0, positions)
        assert set(bit_positions(x)) == positions


class TestByteIndexing:
    def test_byte0_is_most_significant(self):
        assert get_byte(0xAB << 56, 0) == 0xAB
        assert get_byte(0xCD, 7) == 0xCD

    def test_set_byte(self):
        x = set_byte(0, 2, 0x7F)
        assert get_byte(x, 2) == 0x7F
        assert set_byte(x, 2, 0) == 0

    def test_set_byte_rejects_wide_value(self):
        with pytest.raises(ConfigurationError):
            set_byte(0, 0, 0x100)

    def test_get_byte_out_of_range(self):
        with pytest.raises(ConfigurationError):
            get_byte(0, 8)

    @given(words)
    def test_iter_bytes_reassembles(self, x):
        assert from_bytes_be([b for _i, b in iter_bytes(x)]) == x

    @given(words)
    def test_to_from_bytes_roundtrip(self, x):
        assert from_bytes_be(to_bytes_be(x)) == x


class TestRotation:
    def test_rotl_bytes_moves_msb_byte(self):
        x = 0xAA << 56  # byte 0
        # After rotl by 1 the value at byte 0 comes from byte 1; 0xAA
        # moves to the last byte position.
        assert get_byte(rotl_bytes(x, 1), 7) == 0xAA

    def test_rotl_zero_is_identity(self):
        assert rotl_bytes(0x1234, 0) == 0x1234

    def test_rotl_full_period_is_identity(self):
        assert rotl_bytes(0x123456789ABCDEF0, 8) == 0x123456789ABCDEF0

    @given(words, st.integers(min_value=0, max_value=16))
    def test_rotr_inverts_rotl(self, x, c):
        assert rotr_bytes(rotl_bytes(x, c), c) == x

    @given(words, st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7))
    def test_rotl_composes_additively(self, x, a, b):
        assert rotl_bytes(rotl_bytes(x, a), b) == rotl_bytes(x, a + b)

    @given(words, st.integers(min_value=0, max_value=7))
    def test_rotation_preserves_popcount(self, x, c):
        assert popcount(rotl_bytes(x, c)) == popcount(x)

    @given(words, st.integers(min_value=0, max_value=7))
    def test_byte_rotation_preserves_bit_in_byte_position(self, x, c):
        rotated = rotl_bytes(x, c)
        def groups(v):
            return sorted(k % 8 for k in bit_positions(v))
        assert groups(rotated) == groups(x)

    @given(words, st.integers(min_value=0, max_value=63))
    def test_rotl_bits_period(self, x, c):
        assert rotl_bits(rotl_bits(x, c), 64 - c) == x


class TestWordPacking:
    @given(st.lists(words, min_size=0, max_size=8))
    def test_words_bytes_roundtrip(self, ws):
        assert bytes_to_words(words_to_bytes(ws)) == ws

    def test_bytes_to_words_rejects_ragged(self):
        with pytest.raises(ConfigurationError):
            bytes_to_words(b"\x00" * 12)

    @given(st.lists(words, min_size=0, max_size=10))
    def test_xor_reduce_matches_functools(self, ws):
        acc = 0
        for w in ws:
            acc ^= w
        assert xor_reduce(ws) == acc

    def test_xor_reduce_empty(self):
        assert xor_reduce([]) == 0
