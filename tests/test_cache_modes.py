"""Additional cache-mode coverage: policies, block interface, results."""

import random

import pytest

from repro.memsim import Cache, MainMemory

from conftest import make_tiny_cache


class TestAccessResultFlags:
    def test_writeback_flag_on_displacing_miss(self):
        cache, _ = make_tiny_cache()
        cache.store(0, b"\x01" * 8)
        stride = cache.num_sets * 32
        cache.load(stride, 8)
        result = cache.load(2 * stride, 8)  # displaces the dirty line
        assert result.writeback is True

    def test_no_writeback_flag_on_clean_displacement(self):
        cache, _ = make_tiny_cache()
        cache.load(0, 8)
        stride = cache.num_sets * 32
        cache.load(stride, 8)
        result = cache.load(2 * stride, 8)
        assert result.writeback is False

    def test_store_result_has_no_data(self):
        cache, _ = make_tiny_cache()
        assert cache.store(0, b"\x01" * 8).data == b""


class TestBlockInterface:
    def test_read_block_returns_full_line(self):
        cache, memory = make_tiny_cache()
        memory.poke(0, bytes(range(32)))
        assert cache.read_block(0) == bytes(range(32))

    def test_write_block_marks_all_units_dirty(self):
        cache, _ = make_tiny_cache()
        cache.write_block(0, bytes(32))
        loc = cache.locate(0)
        line = cache.line(loc.set_index, loc.way)
        assert all(line.dirty)

    def test_block_interface_counts_accesses(self):
        cache, _ = make_tiny_cache()
        cache.read_block(0)
        cache.write_block(0, bytes(32))
        assert cache.stats.loads == 1
        assert cache.stats.stores == 1


class TestAlternativePolicies:
    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_cache_correct_under_any_policy(self, policy):
        memory = MainMemory(block_bytes=32)
        cache = Cache(
            "L1D", 1024, 2, 32, next_level=memory, policy=policy,
            policy_seed=3,
        )
        rng = random.Random(0)
        flat = {}
        for _ in range(500):
            addr = rng.randrange(256) * 8
            if rng.random() < 0.5:
                value = rng.getrandbits(64).to_bytes(8, "big")
                cache.store(addr, value)
                flat[addr] = value
            else:
                assert cache.load(addr, 8).data == flat.get(addr, bytes(8))
        cache.flush()
        for addr, value in flat.items():
            assert memory.peek(addr, 8) == value

    def test_fifo_differs_from_lru_in_evictions(self):
        def run(policy):
            memory = MainMemory(block_bytes=32)
            cache = Cache("L1D", 128, 2, 32, next_level=memory, policy=policy)
            # One set (2 sets of 2 ways at 128B... num_sets=2); craft
            # conflicting references in set 0.
            stride = cache.num_sets * 32
            cache.load(0, 8)
            cache.load(stride, 8)
            cache.load(0, 8)      # LRU protects block 0; FIFO does not
            cache.load(2 * stride, 8)
            return cache.load(0, 8).hit

        assert run("lru") is True
        assert run("fifo") is False


class TestIterHelpers:
    def test_resident_locations_match_iter_units(self):
        cache, _ = make_tiny_cache()
        cache.load(0, 8)
        cache.store(512, b"\x01" * 8)
        locations = cache.resident_locations()
        assert len(locations) == len(list(cache.iter_units()))
        assert len(locations) == 8  # two lines x four units

    def test_iter_dirty_units_subset(self):
        cache, _ = make_tiny_cache()
        cache.load(0, 8)
        cache.store(512, b"\x01" * 8)
        dirty = dict(cache.iter_dirty_units())
        assert len(dirty) == 1
        assert cache.dirty_unit_count() == 1
