"""Monte-Carlo fault campaign tests.

These assert the outcome *distributions* that define each scheme:
CPPC never produces an SDC for single-bit faults; detection-only parity
produces DUEs on dirty faults; an unprotected cache produces SDCs.
"""

import pytest

from repro.cppc import CppcProtection
from repro.errors import ConfigurationError, TrialCrashError
from repro.faults import (
    CampaignConfig,
    FaultCampaign,
    Outcome,
    TrialFailure,
)
from repro.memsim import NoProtection, ParityProtection, SecdedProtection


def cppc_factory(level, unit_bits):
    return CppcProtection(data_bits=unit_bits)


def parity_factory(level, unit_bits):
    return ParityProtection(data_bits=unit_bits)


def secded_factory(level, unit_bits):
    return SecdedProtection(data_bits=unit_bits)


def none_factory(level, unit_bits):
    return NoProtection()


def run(factory, **kwargs):
    config = CampaignConfig(
        scheme_factory=factory,
        benchmark="gzip",
        trials=kwargs.pop("trials", 12),
        warmup_references=kwargs.pop("warmup_references", 600),
        post_fault_references=kwargs.pop("post_fault_references", 400),
        **kwargs,
    )
    return FaultCampaign(config).run()


class TestConfigValidation:
    def test_bad_fault_kind(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, fault_kind="weird")

    def test_bad_level(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, target_level="L3")

    def test_bad_trials(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, trials=0)


class TestCppcCampaigns:
    def test_temporal_faults_never_sdc_or_due(self):
        result = run(cppc_factory, fault_kind="temporal", dirty_only=True)
        counts = result.counts
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.DUE] == 0
        assert counts[Outcome.CORRECTED] + counts[Outcome.BENIGN] == len(
            result.trials
        )

    def test_temporal_faults_mostly_observed(self):
        result = run(cppc_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        assert result.counts[Outcome.CORRECTED] >= 1

    def test_spatial_4x4_no_sdc(self):
        result = run(cppc_factory, fault_kind="spatial", spatial_shape=(4, 4))
        assert result.counts[Outcome.SDC] == 0

    def test_l2_campaign_runs(self):
        result = run(cppc_factory, fault_kind="temporal", target_level="L2",
                     trials=6)
        assert result.counts[Outcome.SDC] == 0
        assert result.counts[Outcome.DUE] == 0


class TestParityCampaigns:
    def test_dirty_faults_become_dues(self):
        result = run(parity_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        counts = result.counts
        assert counts[Outcome.SDC] == 0  # detection prevents corruption
        assert counts[Outcome.DUE] >= 1  # ...but dirty faults kill the run

    def test_clean_faults_are_recoverable(self):
        result = run(parity_factory, fault_kind="temporal", dirty_only=False,
                     trials=15)
        # Some faults hit clean data and get refetched, or are benign.
        assert (
            result.counts[Outcome.CORRECTED] + result.counts[Outcome.BENIGN]
        ) >= 1


class TestSecdedCampaigns:
    def test_single_bit_faults_corrected(self):
        result = run(secded_factory, fault_kind="temporal", dirty_only=True)
        assert result.counts[Outcome.SDC] == 0
        assert result.counts[Outcome.DUE] == 0


class TestUnprotectedBaseline:
    def test_unprotected_cache_eventually_corrupts(self):
        result = run(none_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        # With no detection at all, dirty-data faults surface as SDCs.
        assert result.counts[Outcome.SDC] >= 1
        assert result.counts[Outcome.DUE] == 0


class TestResultApi:
    def test_rates_sum_to_one(self):
        result = run(cppc_factory, trials=8)
        assert sum(result.summary().values()) == pytest.approx(1.0)

    def test_trial_details_present(self):
        result = run(cppc_factory, trials=5)
        assert len(result.trials) == 5
        for trial in result.trials:
            assert isinstance(trial.outcome, Outcome)

    def test_complete_and_failure_accounting(self):
        result = run(cppc_factory, trials=5)
        assert result.complete
        assert result.completed == 5
        assert result.failed == 0
        result.failures.append(
            TrialFailure(
                trial_index=5, seed=0, kind="timeout", attempts=3
            )
        )
        assert not result.complete
        assert result.failed == 1
        # Rates stay over completed trials only.
        assert sum(result.summary().values()) == pytest.approx(1.0)


class TestTrialCrashHandling:
    """Satellite: unexpected trial exceptions become structured crashes
    naming the trial; KeyboardInterrupt is never classified."""

    def campaign(self):
        return FaultCampaign(
            CampaignConfig(scheme_factory=cppc_factory, trials=5)
        )

    def test_unexpected_exception_wrapped_with_trial_identity(
        self, monkeypatch
    ):
        campaign = self.campaign()

        def explode(trial):
            raise ValueError("synthetic bug")

        monkeypatch.setattr(campaign, "_classify_trial", explode)
        with pytest.raises(TrialCrashError) as excinfo:
            campaign._run_trial(3)
        error = excinfo.value
        assert error.trial_index == 3
        assert error.seed == campaign.config.trial_seed(3)
        assert "trial 3" in str(error)
        assert "synthetic bug" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_keyboard_interrupt_reraised_never_classified(self, monkeypatch):
        campaign = self.campaign()

        def interrupt(trial):
            raise KeyboardInterrupt()

        monkeypatch.setattr(campaign, "_classify_trial", interrupt)
        with pytest.raises(KeyboardInterrupt):
            campaign._run_trial(0)

    def test_sequential_run_propagates_crash(self, monkeypatch):
        campaign = self.campaign()

        def explode(trial):
            raise RuntimeError("dead")

        monkeypatch.setattr(campaign, "_classify_trial", explode)
        with pytest.raises(TrialCrashError) as excinfo:
            campaign.run()
        assert excinfo.value.trial_index == 0

    def test_trial_seeds_split_deterministically(self):
        config = self.campaign().config
        seeds = [config.trial_seed(i) for i in range(5)]
        assert len(set(seeds)) == 5
        assert seeds == [config.trial_seed(i) for i in range(5)]
