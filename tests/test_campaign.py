"""Monte-Carlo fault campaign tests.

These assert the outcome *distributions* that define each scheme:
CPPC never produces an SDC for single-bit faults; detection-only parity
produces DUEs on dirty faults; an unprotected cache produces SDCs.
"""

import pytest

from repro.cppc import CppcProtection
from repro.errors import ConfigurationError
from repro.faults import CampaignConfig, FaultCampaign, Outcome
from repro.memsim import NoProtection, ParityProtection, SecdedProtection


def cppc_factory(level, unit_bits):
    return CppcProtection(data_bits=unit_bits)


def parity_factory(level, unit_bits):
    return ParityProtection(data_bits=unit_bits)


def secded_factory(level, unit_bits):
    return SecdedProtection(data_bits=unit_bits)


def none_factory(level, unit_bits):
    return NoProtection()


def run(factory, **kwargs):
    config = CampaignConfig(
        scheme_factory=factory,
        benchmark="gzip",
        trials=kwargs.pop("trials", 12),
        warmup_references=kwargs.pop("warmup_references", 600),
        post_fault_references=kwargs.pop("post_fault_references", 400),
        **kwargs,
    )
    return FaultCampaign(config).run()


class TestConfigValidation:
    def test_bad_fault_kind(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, fault_kind="weird")

    def test_bad_level(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, target_level="L3")

    def test_bad_trials(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme_factory=cppc_factory, trials=0)


class TestCppcCampaigns:
    def test_temporal_faults_never_sdc_or_due(self):
        result = run(cppc_factory, fault_kind="temporal", dirty_only=True)
        counts = result.counts
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.DUE] == 0
        assert counts[Outcome.CORRECTED] + counts[Outcome.BENIGN] == len(
            result.trials
        )

    def test_temporal_faults_mostly_observed(self):
        result = run(cppc_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        assert result.counts[Outcome.CORRECTED] >= 1

    def test_spatial_4x4_no_sdc(self):
        result = run(cppc_factory, fault_kind="spatial", spatial_shape=(4, 4))
        assert result.counts[Outcome.SDC] == 0

    def test_l2_campaign_runs(self):
        result = run(cppc_factory, fault_kind="temporal", target_level="L2",
                     trials=6)
        assert result.counts[Outcome.SDC] == 0
        assert result.counts[Outcome.DUE] == 0


class TestParityCampaigns:
    def test_dirty_faults_become_dues(self):
        result = run(parity_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        counts = result.counts
        assert counts[Outcome.SDC] == 0  # detection prevents corruption
        assert counts[Outcome.DUE] >= 1  # ...but dirty faults kill the run

    def test_clean_faults_are_recoverable(self):
        result = run(parity_factory, fault_kind="temporal", dirty_only=False,
                     trials=15)
        # Some faults hit clean data and get refetched, or are benign.
        assert (
            result.counts[Outcome.CORRECTED] + result.counts[Outcome.BENIGN]
        ) >= 1


class TestSecdedCampaigns:
    def test_single_bit_faults_corrected(self):
        result = run(secded_factory, fault_kind="temporal", dirty_only=True)
        assert result.counts[Outcome.SDC] == 0
        assert result.counts[Outcome.DUE] == 0


class TestUnprotectedBaseline:
    def test_unprotected_cache_eventually_corrupts(self):
        result = run(none_factory, fault_kind="temporal", dirty_only=True,
                     trials=15)
        # With no detection at all, dirty-data faults surface as SDCs.
        assert result.counts[Outcome.SDC] >= 1
        assert result.counts[Outcome.DUE] == 0


class TestResultApi:
    def test_rates_sum_to_one(self):
        result = run(cppc_factory, trials=8)
        assert sum(result.summary().values()) == pytest.approx(1.0)

    def test_trial_details_present(self):
        result = run(cppc_factory, trials=5)
        assert len(result.trials) == 5
        for trial in result.trials:
            assert isinstance(trial.outcome, Outcome)
