"""Snapshot-fork fast path vs. the legacy warm-every-trial loop.

The fast path's contract is *bit-identity*: for the same shared-warmup
config and seeds it must produce exactly the per-trial
:class:`TrialResult` sequence (and therefore the same outcome tallies)
as the legacy loop.  These tests enforce that over randomized
scheme/benchmark/seed combinations, exercise both warm engines (batch
for CPPC, scalar for everything else), and pin down the warm-state
cache and configuration guard rails.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CampaignConfig,
    FaultCampaign,
    Outcome,
    build_warm_state,
    clear_warm_cache,
    scheme_factory,
    warm_state_for,
)
from repro.faults import warmstate as warmstate_mod


@pytest.fixture(autouse=True)
def _fresh_warm_cache():
    clear_warm_cache()
    yield
    clear_warm_cache()


def shared_config(**overrides):
    params = dict(
        scheme_factory=scheme_factory("cppc"),
        benchmark="gcc",
        trials=6,
        warmup_references=600,
        post_fault_references=350,
        seed=0,
        shared_warmup=True,
    )
    params.update(overrides)
    return CampaignConfig(**params)


def run_both(config):
    legacy = FaultCampaign(config).run()
    clear_warm_cache()
    fast = FaultCampaign(config, fast=True).run()
    return legacy, fast


def assert_identical(legacy, fast):
    assert [vars(t) for t in fast.trials] == [vars(t) for t in legacy.trials]
    assert {o: fast.counts[o] for o in Outcome} == {
        o: legacy.counts[o] for o in Outcome
    }


class TestBitIdentity:
    @pytest.mark.parametrize(
        "scheme,bench,seed",
        [
            ("cppc", "gcc", 0),
            ("cppc", "mcf", 17),
            ("cppc", "gzip", 4),
            ("secded", "gcc", 0),
            ("secded", "swim", 9),
            ("parity", "gzip", 23),
            ("none", "gcc", 5),
        ],
    )
    def test_fast_matches_legacy(self, scheme, bench, seed):
        config = shared_config(
            scheme_factory=scheme_factory(scheme),
            benchmark=bench,
            seed=seed,
        )
        legacy, fast = run_both(config)
        assert_identical(legacy, fast)

    def test_spatial_faults_match(self):
        config = shared_config(fault_kind="spatial", spatial_shape=(4, 4))
        legacy, fast = run_both(config)
        assert_identical(legacy, fast)

    def test_dirty_only_matches(self):
        config = shared_config(dirty_only=True, seed=3)
        legacy, fast = run_both(config)
        assert_identical(legacy, fast)

    def test_l2_target_matches(self):
        config = shared_config(target_level="L2", seed=1)
        legacy, fast = run_both(config)
        assert_identical(legacy, fast)

    def test_zero_warmup_matches(self):
        config = shared_config(warmup_references=0, trials=4)
        state = build_warm_state(config)
        assert state.warm_engine == "pristine"
        legacy, fast = run_both(config)
        assert_identical(legacy, fast)

    def test_equivalence_always_passes_and_returns_fast_results(self):
        config = shared_config(trials=4)
        campaign = FaultCampaign(config, fast=True, fast_equivalence="always")
        result = campaign.run()
        legacy = FaultCampaign(config).run()
        assert_identical(legacy, result)


class TestWarmEngines:
    def test_cppc_uses_batch_engine(self):
        state = build_warm_state(shared_config())
        assert state.warm_engine == "batch"

    def test_secded_falls_back_to_scalar(self):
        state = build_warm_state(shared_config(scheme_factory=scheme_factory("secded")))
        assert state.warm_engine == "scalar"

    def test_batch_and_scalar_warm_agree(self, monkeypatch):
        config = shared_config(warmup_references=900)
        batch_state = build_warm_state(config)
        assert batch_state.warm_engine == "batch"
        monkeypatch.setattr(warmstate_mod, "_batch_compatible", lambda l1: False)
        scalar_state = build_warm_state(config)
        assert scalar_state.warm_engine == "scalar"
        assert scalar_state.snapshot == batch_state.snapshot
        assert scalar_state.golden_image == batch_state.golden_image
        assert scalar_state.start_cycle == batch_state.start_cycle


class TestGuards:
    def test_fast_requires_shared_warmup(self):
        config = shared_config(shared_warmup=False)
        with pytest.raises(ConfigurationError):
            FaultCampaign(config, fast=True)

    def test_bad_equivalence_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultCampaign(shared_config(), fast=True, fast_equivalence="sometimes")

    def test_shared_warmup_changes_workload_seed(self):
        config = shared_config()
        assert config.workload_seed(0) == config.workload_seed(5)
        plain = shared_config(shared_warmup=False)
        assert plain.workload_seed(0) != plain.workload_seed(5)


class TestWarmCache:
    def test_warm_state_is_memoized(self):
        config = shared_config()
        cache = warmstate_mod.warm_cache()
        before = cache.hits
        first = warm_state_for(config)
        assert warm_state_for(config) is first
        assert cache.hits == before + 1

    def test_distinct_configs_get_distinct_states(self):
        a = warm_state_for(shared_config())
        b = warm_state_for(shared_config(benchmark="gzip"))
        assert a is not b
        assert a.key != b.key

    def test_trial_count_does_not_affect_warm_key(self):
        a = warm_state_for(shared_config(trials=4))
        b = warm_state_for(shared_config(trials=9))
        assert a.key == b.key
        assert b is a

    def test_size_accounting(self):
        state = warm_state_for(shared_config())
        assert state.size_bytes > 0
        assert warmstate_mod.warm_cache().total_bytes >= state.size_bytes
