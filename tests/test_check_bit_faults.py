"""Faults in the *check bits* (parity/ECC arrays) rather than the data.

A strike can hit the parity array just as well as the data array.  For
every scheme: the data must survive — either because the check bits are
simply regenerated (clean data refetch), or because recovery reconstructs
the same data and rewrites fresh parity (CPPC dirty data), or because
SECDED's code disambiguates check-bit flips by construction.
"""

import pytest

from repro.errors import UncorrectableError
from repro.memsim import ParityProtection, SecdedProtection

from conftest import make_cppc_cache, make_tiny_cache


class TestCppcCheckBitFaults:
    def test_parity_bit_fault_on_dirty_word_recovers_data(self):
        """The data was never wrong; recovery must return it unchanged and
        regenerate the parity (no false DUE)."""
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x6B" * 8)
        loc = cache.locate(0)
        cache.corrupt_check(loc, 0b1)
        result = cache.load(0, 8)
        assert result.detected_fault
        assert result.data == b"\x6B" * 8
        # The stored check bits are fresh and consistent again.
        value, check, _ = cache.peek_unit(loc)
        assert not cache.protection.inspect(value, check).detected

    def test_multiple_parity_bits_fault_recovers(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x6C" * 8)
        loc = cache.locate(0)
        cache.corrupt_check(loc, 0b1011)
        assert cache.load(0, 8).data == b"\x6C" * 8

    def test_parity_fault_on_clean_word_refetches(self):
        cache, memory = make_cppc_cache()
        memory.poke(0, b"\x2E" * 32)
        cache.load(0, 8)
        cache.corrupt_check(cache.locate(0), 0b1)
        assert cache.load(0, 8).data == b"\x2E" * 8

    def test_data_fault_still_distinguished_from_check_fault(self):
        """A real data fault flips the data; recovery must fix it, not
        just regenerate parity around it."""
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x6D" * 8)
        loc = cache.locate(0)
        cache.corrupt_data(loc, 1 << 40)
        assert cache.load(0, 8).data == b"\x6D" * 8
        value, _check, _ = cache.peek_unit(loc)
        assert value.to_bytes(8, "big") == b"\x6D" * 8


class TestParitySchemeCheckBitFaults:
    def test_check_fault_on_dirty_word_is_a_due(self):
        """Detection-only parity cannot tell a parity-bit fault from a
        data fault: the conservative outcome is the same halt."""
        cache, _ = make_tiny_cache(ParityProtection())
        cache.store(0, b"\x01" * 8)
        cache.corrupt_check(cache.locate(0), 0b1)
        with pytest.raises(UncorrectableError):
            cache.load(0, 8)

    def test_check_fault_on_clean_word_refetches(self):
        cache, memory = make_tiny_cache(ParityProtection())
        memory.poke(0, b"\x4D" * 32)
        cache.load(0, 8)
        cache.corrupt_check(cache.locate(0), 0b100)
        assert cache.load(0, 8).data == b"\x4D" * 8


class TestSecdedCheckBitFaults:
    def test_single_check_bit_fault_corrected_in_place(self):
        """Hamming SECDED locates a flipped check bit by syndrome; the
        data passes through untouched."""
        cache, _ = make_tiny_cache(SecdedProtection())
        cache.store(0, b"\x0E" * 8)
        loc = cache.locate(0)
        cache.corrupt_check(loc, 0b10)
        result = cache.load(0, 8)
        assert result.detected_fault
        assert result.data == b"\x0E" * 8
        value, check, _ = cache.peek_unit(loc)
        assert not cache.protection.inspect(value, check).detected
