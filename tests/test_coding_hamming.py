"""Tests for the (72, 64) SECDED Hamming code."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import DetectionOutcome, SecdedCode
from repro.errors import ConfigurationError
from repro.util import flip_bit, flip_bits

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
bits = st.integers(min_value=0, max_value=63)


class TestConstruction:
    def test_64_bit_code_is_72_64(self):
        code = SecdedCode(64)
        assert code.check_bits == 8  # 7 Hamming + overall parity
        assert code.hamming_bits == 7
        assert code.relative_overhead == 0.125

    def test_256_bit_code(self):
        code = SecdedCode(256)
        assert code.hamming_bits == 9
        assert code.check_bits == 10

    def test_small_codes(self):
        assert SecdedCode(8).check_bits == 5  # 4 Hamming + overall
        assert SecdedCode(1).check_bits >= 2

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            SecdedCode(0)

    def test_can_correct(self):
        assert SecdedCode(64).can_correct()


class TestCleanPath:
    @given(words)
    def test_roundtrip_clean(self, x):
        code = SecdedCode(64)
        assert code.inspect(x, code.encode(x)).outcome is DetectionOutcome.CLEAN


class TestSingleBitCorrection:
    @pytest.mark.parametrize("k", list(range(64)))
    def test_every_data_bit_position_corrected(self, k):
        code = SecdedCode(64)
        x = 0x0123456789ABCDEF
        inspection = code.inspect(flip_bit(x, k), code.encode(x))
        assert inspection.outcome is DetectionOutcome.CORRECTED
        assert inspection.corrected_data == x

    @given(words, bits)
    def test_random_single_flip_corrected(self, x, k):
        code = SecdedCode(64)
        inspection = code.inspect(flip_bit(x, k), code.encode(x))
        assert inspection.outcome is DetectionOutcome.CORRECTED
        assert inspection.corrected_data == x

    @pytest.mark.parametrize("c", list(range(8)))
    def test_check_bit_flip_leaves_data_intact(self, c):
        code = SecdedCode(64)
        x = 0xDEADBEEFCAFEF00D
        check = code.encode(x) ^ (1 << c)
        inspection = code.inspect(x, check)
        assert inspection.outcome is DetectionOutcome.CORRECTED
        assert inspection.corrected_data == x


class TestDoubleBitDetection:
    @given(words, bits, bits)
    def test_double_data_flip_is_uncorrectable(self, x, a, b):
        if a == b:
            return
        code = SecdedCode(64)
        inspection = code.inspect(flip_bits(x, [a, b]), code.encode(x))
        assert inspection.outcome is DetectionOutcome.UNCORRECTABLE

    @given(words, bits, st.integers(min_value=0, max_value=7))
    def test_data_plus_check_flip_detected(self, x, k, c):
        code = SecdedCode(64)
        check = code.encode(x) ^ (1 << c)
        inspection = code.inspect(flip_bit(x, k), check)
        # Two flips total (one data + one check): never silently accepted,
        # and never "corrected" back to the original data with a wrong bit.
        assert inspection.detected
        if inspection.outcome is DetectionOutcome.CORRECTED:
            # Correction may land on a check-bit position; data must then
            # be the corrupted word repaired to *some* consistent codeword,
            # never a silent pass-through of wrong data as clean.
            assert inspection.corrected_data is not None


class TestWiderCode:
    @given(st.integers(min_value=0, max_value=(1 << 256) - 1),
           st.integers(min_value=0, max_value=255))
    def test_256_bit_single_flip_corrected(self, x, k):
        code = SecdedCode(256)
        inspection = code.inspect(flip_bit(x, k, 256), code.encode(x))
        assert inspection.outcome is DetectionOutcome.CORRECTED
        assert inspection.corrected_data == x


class TestLinearity:
    """The SECDED encoder is linear over GF(2) — required by the cache's
    partial-store check-bit delta update."""

    @given(words, words)
    def test_secded_is_linear(self, a, b):
        code = SecdedCode(64)
        assert code.encode(a ^ b) == code.encode(a) ^ code.encode(b)

    def test_zero_codeword(self):
        assert SecdedCode(64).encode(0) == 0
