"""Tests for the physical bit-interleaving model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import BitInterleaving
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults(self):
        il = BitInterleaving(degree=8)
        assert il.row_bits == 512
        assert il.bitline_energy_factor == 8
        assert il.max_correctable_burst() == 8

    def test_rejects_bad_degree(self):
        with pytest.raises(ConfigurationError):
            BitInterleaving(degree=0)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            BitInterleaving(degree=2, word_bits=0)


class TestMapping:
    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=63))
    def test_column_mapping_bijection(self, word, bit):
        il = BitInterleaving(degree=8)
        col = il.physical_column(word, bit)
        assert il.logical_location(col) == (word, bit)

    def test_adjacent_columns_are_different_words(self):
        il = BitInterleaving(degree=8)
        words = [il.logical_location(c)[0] for c in range(8)]
        assert len(set(words)) == 8

    def test_out_of_range_rejected(self):
        il = BitInterleaving(degree=4)
        with pytest.raises(ConfigurationError):
            il.physical_column(4, 0)
        with pytest.raises(ConfigurationError):
            il.physical_column(0, 64)
        with pytest.raises(ConfigurationError):
            il.logical_location(il.row_bits)


class TestBurstSplitting:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=8))
    def test_burst_within_degree_hits_each_word_once(self, start, length):
        """The property that makes interleaved SECDED work (Section 1)."""
        il = BitInterleaving(degree=8)
        hits = il.burst_to_word_bits(start, length)
        assert all(len(bit_list) == 1 for bit_list in hits.values())

    def test_burst_longer_than_degree_doubles_up(self):
        il = BitInterleaving(degree=4)
        hits = il.burst_to_word_bits(0, 5)
        assert max(len(b) for b in hits.values()) == 2

    def test_burst_clipped_at_row_end(self):
        il = BitInterleaving(degree=2, word_bits=8)
        hits = il.burst_to_word_bits(il.row_bits - 1, 10)
        assert sum(len(b) for b in hits.values()) == 1

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            BitInterleaving(degree=2).burst_to_word_bits(0, 0)
