"""Tests for 1-D and interleaved parity codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import DetectionOutcome, InterleavedParity, byte_parity_code, word_parity_code
from repro.errors import ConfigurationError
from repro.util import flip_bit, flip_bits

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
bits = st.integers(min_value=0, max_value=63)


class TestConstruction:
    def test_word_parity_is_one_way(self):
        assert word_parity_code().ways == 1
        assert word_parity_code().check_bits == 1

    def test_byte_parity_is_eight_way(self):
        code = byte_parity_code()
        assert code.ways == 8
        assert code.check_bits == 8
        assert code.relative_overhead == 0.125

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            InterleavedParity(ways=0)

    def test_rejects_non_dividing_ways(self):
        with pytest.raises(ConfigurationError):
            InterleavedParity(data_bits=64, ways=7)

    def test_cannot_self_correct(self):
        assert not byte_parity_code().can_correct()


class TestGroups:
    def test_group_of_bit_is_mod_ways(self):
        code = byte_parity_code()
        assert code.group_of_bit(0) == 0
        assert code.group_of_bit(9) == 1
        assert code.group_of_bit(63) == 7

    def test_bits_of_group_roundtrip(self):
        code = byte_parity_code()
        for g in range(8):
            for k in code.bits_of_group(g):
                assert code.group_of_bit(k) == g

    def test_group_mask_popcount(self):
        code = byte_parity_code()
        for g in range(8):
            assert bin(code.group_mask(g)).count("1") == 8

    def test_group_out_of_range(self):
        code = byte_parity_code()
        with pytest.raises(ConfigurationError):
            code.bits_of_group(8)
        with pytest.raises(ConfigurationError):
            code.group_mask(-1)
        with pytest.raises(ConfigurationError):
            code.group_of_bit(64)


class TestDetection:
    @given(words)
    def test_clean_word_passes(self, x):
        code = byte_parity_code()
        assert not code.inspect(x, code.encode(x)).detected

    @given(words, bits)
    def test_single_flip_detected_in_right_group(self, x, k):
        code = byte_parity_code()
        check = code.encode(x)
        inspection = code.inspect(flip_bit(x, k), check)
        assert inspection.outcome is DetectionOutcome.DETECTED
        assert inspection.faulty_parities == {k % 8}

    @given(words, st.integers(min_value=0, max_value=56),
           st.integers(min_value=1, max_value=8))
    def test_burst_up_to_ways_detected(self, x, start, length):
        """Any burst of <= 8 adjacent flipped bits is detected (Sec 3.6)."""
        code = byte_parity_code()
        check = code.encode(x)
        corrupted = flip_bits(x, range(start, start + length))
        inspection = code.inspect(corrupted, check)
        assert inspection.detected
        assert len(inspection.faulty_parities) == length

    @given(words, bits, bits)
    def test_even_flips_same_group_escape_word_parity_groups(self, x, a, b):
        """Two flips in one parity group are invisible to that group."""
        code = byte_parity_code()
        if a == b or a % 8 != b % 8:
            return
        corrupted = flip_bits(x, [a, b])
        inspection = code.inspect(corrupted, code.encode(x))
        assert not inspection.detected

    @given(words, bits, bits)
    def test_two_flips_different_groups_detected(self, x, a, b):
        code = byte_parity_code()
        if a % 8 == b % 8:
            return
        corrupted = flip_bits(x, [a, b])
        inspection = code.inspect(corrupted, code.encode(x))
        assert inspection.faulty_parities == {a % 8, b % 8}

    @given(words)
    def test_word_parity_detects_odd_flips_only(self, x):
        code = word_parity_code()
        check = code.encode(x)
        assert code.inspect(flip_bit(x, 3), check).detected
        assert not code.inspect(flip_bits(x, [3, 40]), check).detected

    def test_check_bit_corruption_detected(self):
        code = byte_parity_code()
        x = 0x0123456789ABCDEF
        check = code.encode(x) ^ 0b1
        assert code.inspect(x, check).detected

    def test_inspect_validates_widths(self):
        code = byte_parity_code()
        with pytest.raises(ConfigurationError):
            code.inspect(1 << 64, 0)
        with pytest.raises(ConfigurationError):
            code.inspect(0, 1 << 8)


class TestPaperExample:
    def test_parity_bit_definition_matches_section_3_6(self):
        """Parity[i] = XOR(bit[i], bit[i+8], ..., bit[i+56])."""
        code = byte_parity_code()
        # A word with only bit 8 set: parity group 0 must flag.
        x = flip_bit(0, 8)
        check = code.encode(x)
        inspection = code.inspect(0, check)  # data lost the bit
        assert inspection.faulty_parities == {0}


class TestLinearity:
    """encode(a ^ b) == encode(a) ^ encode(b) — the property the cache's
    partial-store delta update of check bits relies on."""

    @given(words, words)
    def test_interleaved_parity_is_linear(self, a, b):
        code = byte_parity_code()
        assert code.encode(a ^ b) == code.encode(a) ^ code.encode(b)

    @given(words)
    def test_zero_encodes_to_zero(self, a):
        code = byte_parity_code()
        assert code.encode(0) == 0
        assert code.encode(a) == code.encode(a ^ 0)
