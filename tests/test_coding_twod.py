"""Tests for the vertical parity register (two-dimensional parity)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import VerticalParity
from repro.errors import ConfigurationError

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBasics:
    def test_starts_zero(self):
        assert VerticalParity(64).value == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            VerticalParity(0)

    def test_insert_remove_cancel(self):
        vp = VerticalParity(64)
        vp.insert(0xABCD)
        vp.remove(0xABCD)
        assert vp.value == 0

    def test_update_is_remove_plus_insert(self):
        vp1, vp2 = VerticalParity(64), VerticalParity(64)
        vp1.insert(5)
        vp1.update(5, 9)
        vp2.insert(9)
        assert vp1.value == vp2.value

    def test_width_validation(self):
        vp = VerticalParity(8)
        with pytest.raises(ConfigurationError):
            vp.insert(0x100)

    def test_clear(self):
        vp = VerticalParity(64)
        vp.insert(123)
        vp.clear()
        assert vp.value == 0


class TestReconstruction:
    @given(st.lists(words, min_size=1, max_size=16),
           st.integers(min_value=0, max_value=15))
    def test_reconstruct_recovers_any_row(self, rows, idx):
        if idx >= len(rows):
            return
        vp = VerticalParity(64)
        for r in rows:
            vp.insert(r)
        others = rows[:idx] + rows[idx + 1 :]
        assert vp.reconstruct(others) == rows[idx]

    @given(st.lists(words, max_size=16))
    def test_matches_detects_consistency(self, rows):
        vp = VerticalParity(64)
        for r in rows:
            vp.insert(r)
        assert vp.matches(rows)
        assert vp.matches(rows) == (vp.reconstruct(rows) == 0)

    @given(st.lists(words, min_size=1, max_size=16), words)
    def test_matches_fails_after_corruption(self, rows, noise):
        if noise == 0:
            return
        vp = VerticalParity(64)
        for r in rows:
            vp.insert(r)
        corrupted = list(rows)
        corrupted[0] ^= noise
        assert not vp.matches(corrupted)

    @given(st.lists(words, min_size=2, max_size=16))
    def test_random_store_stream_keeps_register_consistent(self, stream):
        """Model a sequence of read-before-write updates on one row."""
        vp = VerticalParity(64)
        current = 0
        vp.insert(current)
        for new in stream:
            vp.update(current, new)
            current = new
        assert vp.matches([current])
