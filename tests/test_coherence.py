"""Tests for the multi-core write-invalidate substrate (paper Section 7)."""

import random

import pytest

from repro.cppc import CppcProtection
from repro.errors import ConfigurationError
from repro.memsim import CoherentSystem, small_coherent_config


def cppc_factory(core, level, unit_bits):
    return CppcProtection(data_bits=unit_bits)


def make_system(num_cores=2, protected=False):
    return CoherentSystem(
        num_cores,
        small_coherent_config(),
        protection_factory=cppc_factory if protected else (
            lambda c, lvl, u: __import__("repro.memsim", fromlist=["NoProtection"]).NoProtection()
        ),
    )


class TestConstruction:
    def test_core_count(self):
        assert make_system(4).num_cores == 4

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            CoherentSystem(0, small_coherent_config())

    def test_core_range_checked(self):
        system = make_system(2)
        with pytest.raises(ConfigurationError):
            system.load(2, 0)


class TestCoherenceSemantics:
    def test_store_invalidates_remote_copy(self):
        system = make_system()
        system.load(1, 0)
        assert system.l1s[1].locate(0) is not None
        system.store(0, 0, b"\xAB" * 8)
        assert system.l1s[1].locate(0) is None
        assert system.bus.invalidations == 1

    def test_remote_dirty_data_visible_after_invalidation(self):
        system = make_system()
        system.store(0, 0, b"\x11" * 8)
        # Core 1 writes the same block: core 0's dirty copy must be
        # written back first, then core 1 sees it.
        system.store(1, 8, b"\x22" * 8)
        assert system.load(1, 0).data == b"\x11" * 8
        assert system.bus.dirty_invalidations == 1

    def test_load_downgrades_remote_dirty_copy(self):
        system = make_system()
        system.store(0, 0, b"\x33" * 8)
        data = system.load(1, 0).data
        assert data == b"\x33" * 8
        # Core 0 keeps a clean copy (downgrade, not invalidation).
        assert system.l1s[0].locate(0) is not None
        assert system.l1s[0].dirty_unit_count() == 0
        assert system.bus.downgrades == 1

    def test_sequential_consistency_of_final_state(self):
        system = make_system(2)
        rng = random.Random(9)
        golden = {}
        for _ in range(600):
            core = rng.randrange(2)
            addr = rng.randrange(512) * 8
            if rng.random() < 0.5:
                value = rng.getrandbits(64).to_bytes(8, "big")
                system.store(core, addr, value)
                golden[addr] = value
            else:
                data = system.load(core, addr, 8).data
                assert data == golden.get(addr, bytes(8))
        system.flush()
        for addr, value in golden.items():
            assert system.memory.peek(addr, 8) == value


class TestCppcUnderCoherence:
    def assert_invariants(self, system):
        for l1 in system.l1s:
            protection = l1.protection
            for i in range(protection.registers.num_pairs):
                assert protection.registers.pairs[i].dirty_xor == (
                    protection.dirty_xor_expected(i)
                ), f"{l1.name} pair {i}"

    def test_invariant_after_invalidations(self):
        system = make_system(protected=True)
        rng = random.Random(4)
        for _ in range(400):
            core = rng.randrange(2)
            addr = rng.randrange(256) * 8
            if rng.random() < 0.6:
                system.store(core, addr, rng.getrandbits(64).to_bytes(8, "big"))
            else:
                system.load(core, addr)
        self.assert_invariants(system)

    def test_fault_recovery_still_works_after_sharing(self):
        system = make_system(protected=True)
        system.store(0, 0, b"\x44" * 8)
        system.load(1, 0)        # downgrade core 0's copy
        system.store(0, 0, b"\x55" * 8)  # invalidates core 1, re-dirties 0
        l1 = system.l1s[0]
        l1.corrupt_data(l1.locate(0), 1 << 63)
        assert system.load(0, 0).data == b"\x55" * 8
        assert l1.protection.recoveries == 1

    def test_invalidations_reduce_read_before_writes(self):
        """The paper's Section 7 hypothesis: write-invalidate sharing
        cleans dirty words before their owner re-stores to them, so the
        shared run performs fewer L1 read-before-writes than a private
        run with the same per-core store stream."""
        rng = random.Random(5)
        stream = [
            (rng.randrange(128) * 8, rng.getrandbits(64).to_bytes(8, "big"))
            for _ in range(500)
        ]
        private = make_system(1, protected=True)
        for addr, value in stream:
            private.store(0, addr, value)

        shared = make_system(2, protected=True)
        for i, (addr, value) in enumerate(stream):
            shared.store(i % 2, addr, value)

        assert shared.bus.dirty_invalidations > 0
        assert (
            shared.total_read_before_writes()
            < private.total_read_before_writes()
        )


class TestSharedL2Protection:
    def test_l2_factory_gets_core_minus_one(self):
        calls = []

        def factory(core, level, unit_bits):
            from repro.memsim import NoProtection

            calls.append((core, level))
            return NoProtection()

        CoherentSystem(2, small_coherent_config(), protection_factory=factory)
        assert (-1, "L2") in calls
        assert (0, "L1D") in calls and (1, "L1D") in calls

    def test_shared_l2_cppc_invariant_under_sharing(self):
        system = CoherentSystem(
            2, small_coherent_config(), protection_factory=cppc_factory
        )
        rng = random.Random(30)
        for i in range(400):
            addr = rng.randrange(512) * 8
            if rng.random() < 0.6:
                system.store(i % 2, addr, rng.getrandbits(64).to_bytes(8, "big"))
            else:
                system.load(i % 2, addr)
        protection = system.l2.protection
        for p in range(protection.registers.num_pairs):
            assert protection.registers.pairs[p].dirty_xor == (
                protection.dirty_xor_expected(p)
            )
