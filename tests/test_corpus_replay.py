"""Tier-1 replay of the fuzzing regression corpus.

Every ``tests/corpus/*.json`` reproducer is a minimal scenario that once
exposed (or guards against) a divergence between redundant
implementations.  This suite replays each through its differential
oracle and requires agreement — a regression in any fast path turns one
of these green files red with a word-level diff attached.
"""

import pathlib

import pytest

from repro.crosscheck import run_scenario
from repro.crosscheck.mutations import MUTATIONS, active
from repro.crosscheck.scenario import Scenario
from repro.crosscheck.shrink import (
    corpus_files,
    load_reproducer,
    save_reproducer,
    shrink_scenario,
)

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = corpus_files(CORPUS_DIR)


def test_corpus_is_populated():
    """At least one seed reproducer per oracle kind is committed."""
    kinds = {load_reproducer(path)[0].kind for path in CORPUS}
    assert kinds == {"replay", "recovery", "campaign", "doublefault"}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_reproducer_replays_clean(path):
    scenario, _recorded = load_reproducer(path)
    divergences = run_scenario(scenario)
    assert not divergences, [d.details for d in divergences]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_reproducer_round_trips(path):
    scenario, _recorded = load_reproducer(path)
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_find_shrink_save_replay_loop(tmp_path):
    """The full pipeline the nightly job runs, end to end.

    Under a seeded bug the fuzzer finds a divergence; the shrinker
    minimizes it; the reproducer file round-trips; the loaded scenario
    still fails under the bug and passes on the fixed (clean) tree —
    exactly the lifecycle of a real corpus entry.
    """
    from repro.crosscheck import ScenarioGenerator

    mutation = MUTATIONS["skip-byte-rotation"]
    generator = ScenarioGenerator(6, kind_weights={"replay": 1.0})
    with active(mutation):
        failing = None
        for index in range(20):
            scenario = generator.generate(index)
            if run_scenario(scenario):
                failing = scenario
                break
        assert failing is not None, "seeded bug never observed"
        shrunk = shrink_scenario(failing, run_scenario, max_seconds=20)
        assert len(shrunk.records) <= len(failing.records)
        divergences = run_scenario(shrunk)
        assert divergences
        path = save_reproducer(shrunk, divergences, tmp_path)
        loaded, _ = load_reproducer(path)
        assert loaded == shrunk
        assert run_scenario(loaded), "reproducer must fail under the bug"
    assert not run_scenario(loaded), "reproducer must pass once fixed"
