"""Tests for the physical array geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cppc import PhysicalGeometry
from repro.errors import ConfigurationError
from repro.memsim import UnitLocation

from conftest import make_tiny_cache


@pytest.fixture
def geometry():
    return PhysicalGeometry(num_sets=16, ways=2, units_per_block=4, unit_bits=64)


class TestRowMapping:
    def test_rows_per_way(self, geometry):
        assert geometry.rows_per_way == 64
        assert geometry.total_rows == 128

    def test_row_zero(self, geometry):
        assert geometry.row_of(UnitLocation(0, 0, 0)) == 0

    def test_consecutive_units_are_adjacent_rows(self, geometry):
        r0 = geometry.row_of(UnitLocation(3, 0, 1))
        r1 = geometry.row_of(UnitLocation(3, 0, 2))
        assert r1 == r0 + 1

    def test_consecutive_sets_are_adjacent_rows(self, geometry):
        last = geometry.row_of(UnitLocation(3, 0, 3))
        first = geometry.row_of(UnitLocation(4, 0, 0))
        assert first == last + 1

    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=63))
    def test_loc_of_inverts_row_of(self, way, row):
        geometry = PhysicalGeometry(num_sets=16, ways=2, units_per_block=4, unit_bits=64)
        loc = geometry.loc_of(way, row)
        assert geometry.row_of(loc) == row
        assert loc.way == way

    def test_out_of_range(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.loc_of(2, 0)
        with pytest.raises(ConfigurationError):
            geometry.loc_of(0, 64)
        with pytest.raises(ConfigurationError):
            geometry.row_of(UnitLocation(16, 0, 0))

    def test_of_cache_matches_shape(self):
        cache, _ = make_tiny_cache()
        geometry = PhysicalGeometry.of_cache(cache)
        assert geometry.num_sets == cache.num_sets
        assert geometry.total_rows == cache.total_units


class TestDistances:
    def test_same_way_distance(self, geometry):
        a = geometry.loc_of(0, 10)
        b = geometry.loc_of(0, 14)
        assert geometry.row_distance(a, b) == 4

    def test_cross_way_distance_is_sentinel(self, geometry):
        a = geometry.loc_of(0, 10)
        b = geometry.loc_of(1, 10)
        assert geometry.row_distance(a, b) == geometry.rows_per_way

    def test_rows_in_square_clips_at_bottom(self, geometry):
        locs = geometry.rows_in_square(0, 62, 8)
        assert len(locs) == 2
