"""Property tests of the fundamental CPPC register invariant.

At any instant, for every register pair, ``R1 XOR R2`` must equal the XOR
of the rotated values of all dirty units in the pair's domain — under any
sequence of loads, stores (full and partial), evictions and flushes, and
for every register-file configuration the paper describes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cppc import CppcProtection

from conftest import make_cppc_cache


def assert_invariant(cache):
    protection: CppcProtection = cache.protection
    for i in range(protection.registers.num_pairs):
        assert protection.registers.pairs[i].dirty_xor == (
            protection.dirty_xor_expected(i)
        ), f"register pair {i} diverged from cache dirty contents"


operations = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "store", "partial"]),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    max_size=80,
)


@pytest.mark.parametrize("num_pairs", [1, 2, 4, 8])
@pytest.mark.parametrize("byte_shifting", [True, False])
class TestInvariantConfigurations:
    @settings(max_examples=20, deadline=None)
    @given(ops=operations)
    def test_invariant_under_random_operations(self, num_pairs, byte_shifting, ops):
        cache, _ = make_cppc_cache(
            num_pairs=num_pairs, byte_shifting=byte_shifting
        )
        for kind, slot, value in ops:
            addr = (slot * 8) % 4096
            if kind == "load":
                cache.load(addr, 8)
            elif kind == "store":
                cache.store(addr, value.to_bytes(8, "big"))
            else:  # partial store of 1 byte
                cache.store(addr + (value % 8), bytes([value & 0xFF]))
        assert_invariant(cache)

    def test_invariant_after_flush(self, num_pairs, byte_shifting):
        cache, _ = make_cppc_cache(
            num_pairs=num_pairs, byte_shifting=byte_shifting
        )
        rng = random.Random(11)
        for _ in range(100):
            cache.store(rng.randrange(1024) * 8, rng.getrandbits(64).to_bytes(8, "big"))
        cache.flush()
        assert_invariant(cache)
        # After a flush nothing is dirty, so every pair must read zero.
        for pair in cache.protection.registers.pairs:
            assert pair.dirty_xor == 0


class TestInvariantDetails:
    def test_clean_to_dirty_transition_enters_full_word(self):
        """Our documented interpretation: a byte store to a clean word
        XORs the whole resulting word into R1 (DESIGN.md)."""
        cache, memory = make_cppc_cache()
        memory.poke(0, bytes(range(32)))
        cache.load(0, 8)  # line resident and clean
        cache.store(3, b"\xAA")  # 1-byte store to a clean word
        assert_invariant(cache)

    def test_overwrite_dirty_moves_old_to_r2(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x01" * 8)
        cache.store(0, b"\x02" * 8)
        protection = cache.protection
        pair = protection.registers.pairs[0]
        assert pair.r2 != 0  # the displaced value entered R2
        assert_invariant(cache)

    def test_eviction_moves_dirty_words_to_r2(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x03" * 8)
        stride = cache.num_sets * 32
        cache.load(stride, 8)
        cache.load(2 * stride, 8)  # evict the dirty line
        assert cache.dirty_unit_count() == 0
        assert_invariant(cache)

    def test_rbw_counter_tracks_dirty_stores_only(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x01" * 8)  # clean -> dirty: no RBW
        assert cache.stats.read_before_writes == 0
        cache.store(0, b"\x02" * 8)  # dirty overwrite: RBW
        assert cache.stats.read_before_writes == 1

    def test_wide_store_updates_multiple_units(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x0F" * 32)  # full block store
        assert cache.dirty_unit_count() == 4
        assert_invariant(cache)
