"""End-to-end tests of CPPC as an L2 cache (paper Section 3.5).

The L2 protection unit is an L1 block (32 bytes here): registers are
L1-block wide, dirty bits are kept per L1-block-sized chunk, and faults in
dirty L2 data are recovered through the same register mechanism at the
wider granularity.
"""

import random

import pytest

from repro.cppc import l1_cppc, l2_cppc
from repro.errors import UncorrectableError
from repro.memsim import MemoryHierarchy

from conftest import TINY_CONFIG, cppc_hierarchy_factory


def make_l2_hierarchy(num_pairs=1):
    return MemoryHierarchy(
        TINY_CONFIG, protection_factory=cppc_hierarchy_factory(num_pairs)
    )


def force_l1_writeback(h, addr):
    """Evict the L1 line holding ``addr`` so its data lands dirty in L2."""
    l1_span = h.l1d.num_sets * h.l1d.block_bytes
    base = addr - (addr % h.l1d.block_bytes)
    h.load(base + l1_span, 8)
    h.load(base + 2 * l1_span, 8)


class TestFactories:
    def test_l1_factory_shape(self):
        p = l1_cppc()
        assert p.code.data_bits == 64
        assert p.code.ways == 8
        assert p.registers.width_bits == 64

    def test_l2_factory_shape(self):
        p = l2_cppc(l1_block_bytes=32)
        assert p.code.data_bits == 256
        assert p.code.ways == 8  # 8 interleaved parity bits per block
        assert p.registers.width_bits == 256
        assert p.rotation.unit_bytes == 32


class TestL2Recovery:
    def test_dirty_l2_unit_single_bit_recovered(self):
        h = make_l2_hierarchy()
        h.store(0, b"\x3C" * 8)
        force_l1_writeback(h, 0)
        loc = h.l2.locate(0)
        assert loc is not None and h.l2.peek_unit(loc)[2]
        h.l2.corrupt_data(loc, 1 << 255)
        # An L1 miss on that block reads it from L2, triggering recovery.
        data = h.load(0, 8).data
        assert data == b"\x3C" * 8
        assert h.l2.protection.recoveries == 1

    def test_l2_clean_fault_refetched_from_memory(self):
        h = make_l2_hierarchy()
        h.memory.poke(0x4000, b"\x5A" * 32)
        h.load(0x4000, 8)
        loc = h.l2.locate(0x4000)
        h.l2.corrupt_data(loc, 1 << 100)
        # Evict from L1 so the next load goes through L2 again.
        force_l1_writeback(h, 0x4000)
        assert h.load(0x4000, 8).data == b"\x5A" * 8
        assert h.l2.stats.refetch_corrections == 1

    def test_l2_register_invariant_after_traffic(self):
        h = make_l2_hierarchy()
        rng = random.Random(21)
        for _ in range(600):
            addr = rng.randrange(0, 1 << 15) & ~7
            if rng.random() < 0.5:
                h.store(addr, rng.getrandbits(64).to_bytes(8, "big"))
            else:
                h.load(addr, 8)
        p = h.l2.protection
        for i in range(p.registers.num_pairs):
            assert p.registers.pairs[i].dirty_xor == p.dirty_xor_expected(i)

    def test_l2_vertical_spatial_fault_recovered(self):
        h = make_l2_hierarchy()
        # Dirty two vertically adjacent L2 rows (consecutive sets).
        h.store(0, b"\x11" * 8)
        h.store(32, b"\x22" * 8)
        force_l1_writeback(h, 0)
        force_l1_writeback(h, 32)
        loc0 = h.l2.locate(0)
        loc1 = h.l2.locate(32)
        geometry = h.l2.protection.geometry
        assert abs(geometry.row_of(loc0) - geometry.row_of(loc1)) == 1
        assert loc0.way == loc1.way
        # Same bit of both rows: a vertical 2-bit strike.
        h.l2.corrupt_data(loc0, 1 << 255)
        h.l2.corrupt_data(loc1, 1 << 255)
        assert h.load(0, 8).data == b"\x11" * 8
        assert h.load(32, 8).data == b"\x22" * 8

    def test_uncorrectable_l2_fault_is_due(self):
        """Two faults in the same parity group of one pair's domain, far
        apart: machine check."""
        h = make_l2_hierarchy()
        h.store(0, b"\x01" * 8)
        stride = 8 * 32  # 8 rows apart -> same rotation class
        h.store(stride, b"\x02" * 8)
        force_l1_writeback(h, 0)
        force_l1_writeback(h, stride)
        loc0, loc1 = h.l2.locate(0), h.l2.locate(stride)
        if loc0.way != loc1.way:
            pytest.skip("allocation split across ways; scenario needs one way")
        h.l2.corrupt_data(loc0, 1 << 255)
        h.l2.corrupt_data(loc1, 1 << 255)
        with pytest.raises(UncorrectableError):
            h.load(0, 8)


class TestWritebackGranularity:
    def test_l1_writeback_dirties_one_l2_unit(self):
        h = make_l2_hierarchy()
        h.store(0, b"\x01" * 8)
        force_l1_writeback(h, 0)
        assert h.l2.dirty_unit_count() == 1
        loc = h.l2.locate(0)
        assert h.l2.unit_bytes == 32  # the whole L1 block is one unit

    def test_l2_rbw_on_second_writeback(self):
        h = make_l2_hierarchy()
        h.store(0, b"\x01" * 8)
        force_l1_writeback(h, 0)
        assert h.l2.stats.read_before_writes == 0
        h.store(0, b"\x02" * 8)  # re-fetch into L1, dirty it again
        force_l1_writeback(h, 0)
        # Second write-back hits an already-dirty L2 unit.
        assert h.l2.stats.stores_to_dirty_units >= 1
