"""Direct tests of the fault locator, including the paper's worked example."""

import pytest

from repro.cppc import FaultLocator, FaultyUnit, RotationScheme
from repro.errors import FaultLocatorError
from repro.memsim import UnitLocation
from repro.util import flip_bits, rotl_bytes


def make_unit(row, *, delta=0, parities=(), value=0):
    return FaultyUnit(
        loc=UnitLocation(set_index=row // 4, way=0, unit_index=row % 4),
        rotation_class=row % 8,
        row=row,
        stored_value=value ^ delta,
        faulty_parities=frozenset(parities),
    )


def build_evidence(deltas_by_row):
    """From true per-row deltas, derive (faulty_units, r3)."""
    units = []
    r3 = 0
    for row, delta in deltas_by_row.items():
        groups = {k % 8 for k in range(64) if delta >> (63 - k) & 1}
        units.append(make_unit(row, delta=delta, parities=groups))
        r3 ^= rotl_bytes(delta, row % 8)
    return units, r3


class TestPaperWorkedExample:
    def test_section_4_5_bits_5_to_12_of_four_classes(self):
        """The full Section 4.5 walk-through: P0-P7 of classes 0-3 flag,
        R3 bits 0-12 and 45-63 are set; the locator must place the fault
        at bits 5-12 of all four words."""
        delta = flip_bits(0, range(5, 13))  # bits 5-12
        deltas = {row: delta for row in range(4)}
        units, r3 = build_evidence(deltas)
        # Sanity: the evidence matches the paper's description.
        expected_r3 = flip_bits(0, list(range(0, 13)) + list(range(45, 64)))
        assert r3 == expected_r3
        assert all(u.faulty_parities == frozenset(range(8)) for u in units)

        located = FaultLocator(RotationScheme()).locate(units, r3)
        assert all(located[u.loc] == delta for u in units)

    def test_section_4_5_faulty_sets_structure(self):
        """Step 2 of the worked example: R3 faulty byte 0's candidate
        source bytes for classes 0-3 are {0, 1, 2, 3}."""
        rotation = RotationScheme()
        candidates = {rotation.src_byte(0, c) for c in range(4)}
        assert candidates == {0, 1, 2, 3}


class TestSingleByteAlignments:
    @pytest.mark.parametrize("byte", range(8))
    def test_vertical_pair_in_any_byte(self, byte):
        delta = 0x80 << (8 * (7 - byte))  # bit 0 of `byte`
        units, r3 = build_evidence({0: delta, 1: delta})
        located = FaultLocator(RotationScheme()).locate(units, r3)
        assert located[units[0].loc] == delta
        assert located[units[1].loc] == delta

    def test_different_bits_per_row(self):
        deltas = {
            0: flip_bits(0, [0, 1]),    # byte 0, groups 0-1
            1: flip_bits(0, [2]),       # byte 0, group 2
            2: flip_bits(0, [0, 3]),    # byte 0, groups 0, 3
        }
        units, r3 = build_evidence(deltas)
        located = FaultLocator(RotationScheme()).locate(units, r3)
        for u, row in zip(units, deltas):
            assert located[u.loc] == deltas[row]


class TestAmbiguousAndInvalid:
    def test_distance_four_alias_is_ambiguous(self):
        """Section 4.6: same byte of classes 0 and 4 cannot be located."""
        delta = 0x80 << 56
        units, r3 = build_evidence({0: delta, 4: delta})
        with pytest.raises(FaultLocatorError):
            FaultLocator(RotationScheme()).locate(units, r3)

    def test_full_square_is_ambiguous(self):
        delta = 0xFF << 56  # whole byte 0
        units, r3 = build_evidence({row: delta for row in range(8)})
        with pytest.raises(FaultLocatorError):
            FaultLocator(RotationScheme()).locate(units, r3)

    def test_duplicate_classes_rejected(self):
        delta = 0x80 << 56
        units, r3 = build_evidence({0: delta, 8: delta})  # both class 0
        with pytest.raises(FaultLocatorError):
            FaultLocator(RotationScheme()).locate(units, r3)

    def test_empty_inputs_rejected(self):
        locator = FaultLocator(RotationScheme())
        with pytest.raises(FaultLocatorError):
            locator.locate([], 1)
        units, _ = build_evidence({0: 1})
        with pytest.raises(FaultLocatorError):
            locator.locate(units, 0)

    def test_unit_without_parities_rejected(self):
        unit = make_unit(0, delta=0, parities=())
        with pytest.raises(FaultLocatorError):
            FaultLocator(RotationScheme()).locate([unit], 123)

    def test_inconsistent_parities_fail(self):
        """Parity flags that cannot be explained by any alignment."""
        delta = 0x80 << 56
        units, r3 = build_evidence({0: delta, 1: delta})
        bad = FaultyUnit(
            loc=units[0].loc,
            rotation_class=units[0].rotation_class,
            row=units[0].row,
            stored_value=units[0].stored_value,
            faulty_parities=frozenset({5}),  # wrong group
        )
        with pytest.raises(FaultLocatorError):
            FaultLocator(RotationScheme()).locate([bad, units[1]], r3)

    def test_construction_accepts_byte_aligned_units(self):
        assert FaultLocator(RotationScheme()).nbytes == 8
        assert FaultLocator(
            RotationScheme(unit_bytes=32, num_classes=8)
        ).nbytes == 32


class TestWideUnits:
    def test_l2_width_locator(self):
        """256-bit units (L2 CPPC) with classes 0-7."""
        rotation = RotationScheme(unit_bytes=32, num_classes=8)
        delta = 0x80 << (8 * 31)  # bit 0 of byte 0 in a 32-byte unit
        units = []
        r3 = 0
        for row in range(3):
            units.append(
                FaultyUnit(
                    loc=UnitLocation(row, 0, 0),
                    rotation_class=row,
                    row=row,
                    stored_value=delta,
                    faulty_parities=frozenset({0}),
                )
            )
            r3 ^= rotation.rotate_in(delta, row)
        located = FaultLocator(rotation).locate(units, r3)
        assert all(located[u.loc] == delta for u in units)
