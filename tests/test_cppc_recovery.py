"""Tests for CPPC recovery: single faults and temporal multi-word faults."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UncorrectableError

from conftest import fill_random, make_cppc_cache


def _dirty_locs(cache, n):
    locs = [loc for loc, _v in cache.iter_dirty_units()]
    assert len(locs) >= n, "test setup produced too few dirty units"
    return locs[:n]


class TestSingleBitRecovery:
    def test_load_triggers_and_corrects(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x5A" * 8)
        cache.corrupt_data(cache.locate(0), 1 << 63)
        result = cache.load(0, 8)
        assert result.detected_fault
        assert result.data == b"\x5A" * 8
        assert cache.protection.recoveries == 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=63))
    def test_every_bit_position_recoverable(self, bit):
        cache, _ = make_cppc_cache()
        rng = random.Random(bit)
        golden = fill_random(cache, cache.next_level, rng, n_stores=40)
        loc = next(iter(cache.iter_dirty_units()))[0]
        addr = cache.address_of(loc)
        cache.corrupt_data(loc, 1 << (63 - bit))
        data = cache.load(addr, 8).data
        if addr in golden:
            assert data == golden[addr]
        # Whatever the value history, the stored word must now pass parity.
        value, check, _ = cache.peek_unit(loc)
        assert not cache.protection.inspect(value, check).detected

    def test_store_to_faulty_dirty_word_recovers_first(self):
        """Read-before-write checks the old value, so a latent fault is
        repaired before it can pollute R2 (Section 3.1 + DESIGN.md)."""
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x11" * 8)
        cache.store(64, b"\x22" * 8)
        cache.corrupt_data(cache.locate(0), 1 << 7)
        cache.store(0, b"\x33" * 8)  # overwrite the faulty dirty word
        assert cache.protection.recoveries == 1
        # The OTHER dirty word must still be recoverable afterwards.
        cache.corrupt_data(cache.locate(64), 1 << 3)
        assert cache.load(64, 8).data == b"\x22" * 8

    def test_eviction_of_faulty_dirty_word_recovers(self):
        cache, memory = make_cppc_cache()
        cache.store(0, b"\x44" * 8)
        cache.corrupt_data(cache.locate(0), 1 << 13)
        stride = cache.num_sets * 32
        cache.load(stride, 8)
        cache.load(2 * stride, 8)  # eviction verifies and recovers
        assert cache.protection.recoveries == 1
        assert memory.peek(0, 8) == b"\x44" * 8

    def test_odd_number_of_faults_in_one_parity_group_recovered(self):
        """Section 3.4: an odd number of flips in one byte group of one
        dirty word is corrected."""
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x00" * 8)
        # Bits 0, 8, 16 are all in parity group 0.
        mask = (1 << 63) | (1 << 55) | (1 << 47)
        cache.corrupt_data(cache.locate(0), mask)
        assert cache.load(0, 8).data == b"\x00" * 8

    def test_multi_bit_fault_different_groups_single_word(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\x77" * 8)
        cache.corrupt_data(cache.locate(0), 0b10110101)
        assert cache.load(0, 8).data == b"\x77" * 8


class TestCleanFaults:
    def test_clean_fault_refetches(self):
        cache, memory = make_cppc_cache()
        memory.poke(0, b"\x66" * 32)
        cache.load(0, 8)
        cache.corrupt_data(cache.locate(0), 1 << 22)
        result = cache.load(0, 8)
        assert result.detected_fault
        assert result.data == b"\x66" * 8
        assert cache.protection.recoveries == 0  # no register recovery

    def test_clean_fault_does_not_touch_registers(self):
        cache, memory = make_cppc_cache()
        cache.store(512, b"\x01" * 8)
        pair = cache.protection.registers.pairs[0]
        r1, r2 = pair.r1, pair.r2
        memory.poke(0, b"\x13" * 32)
        cache.load(0, 8)
        cache.corrupt_data(cache.locate(0), 1)
        cache.load(0, 8)
        assert (pair.r1, pair.r2) == (r1, r2)


class TestTemporalMultiWordFaults:
    def test_disjoint_parity_groups_both_corrected(self):
        """Recovery step 4: faults in different parity groups of two dirty
        words are separable."""
        cache, _ = make_cppc_cache()
        rng = random.Random(1)
        golden = fill_random(cache, cache.next_level, rng, n_stores=40)
        locs = _dirty_locs(cache, 2)
        cache.corrupt_data(locs[0], 1 << 63)  # group 0
        cache.corrupt_data(locs[1], 1 << 62)  # group 1
        addr0 = cache.address_of(locs[0])
        cache.load(addr0, 8)
        for loc in locs:
            value, check, _ = cache.peek_unit(loc)
            assert not cache.protection.inspect(value, check).detected
        for loc in locs:
            addr = cache.address_of(loc)
            if addr in golden:
                assert cache.load(addr, 8).data == golden[addr]

    def test_same_group_far_apart_is_due(self):
        """Two faults in the same parity group of dirty words in rows too
        far apart for a spatial strike: uncorrectable."""
        cache, _ = make_cppc_cache()
        geometry = cache.protection.geometry
        # Two dirty words in the same way, same rotation class (rows 0
        # and 8), same bit -> same parity group, inseparable.
        a = geometry.loc_of(0, 0)
        b = geometry.loc_of(0, 8)
        cache.store(cache.mapper.rebuild_address(0, a.set_index), b"\x01" * 8)
        addr_b = (
            b.set_index * 32 + b.unit_index * 8
        )
        cache.store(addr_b, b"\x02" * 8)
        cache.corrupt_data(cache.locate(0), 1 << 63)
        cache.corrupt_data(cache.locate(addr_b), 1 << 63)
        with pytest.raises(UncorrectableError):
            cache.load(0, 8)

    def test_faults_in_different_pairs_recover_independently(self):
        """With two register pairs, simultaneous faults in classes 0 and 4
        live in different domains and both recover (Section 4.6)."""
        cache, _ = make_cppc_cache(num_pairs=2)
        geometry = cache.protection.geometry
        loc_a = geometry.loc_of(0, 0)  # class 0 -> pair 0
        loc_b = geometry.loc_of(0, 4)  # class 4 -> pair 1
        addr_a = 0
        addr_b = 4 * 8  # row 4 = set 1 unit 0 for 4-unit blocks
        cache.store(addr_a, b"\x0A" * 8)
        cache.store(addr_b, b"\x0B" * 8)
        assert cache.peek_unit(loc_a)[2] and cache.peek_unit(loc_b)[2]
        cache.corrupt_data(loc_a, 1 << 63)
        cache.corrupt_data(loc_b, 1 << 63)
        assert cache.load(addr_a, 8).data == b"\x0A" * 8
        assert cache.load(addr_b, 8).data == b"\x0B" * 8

    def test_single_pair_same_bit_classes_0_and_4_is_due(self):
        """The same two faults with ONE pair alias in the locator
        (Section 4.6's second special case) and must raise a DUE."""
        cache, _ = make_cppc_cache(num_pairs=1)
        addr_a, addr_b = 0, 4 * 8
        cache.store(addr_a, b"\x0A" * 8)
        cache.store(addr_b, b"\x0B" * 8)
        cache.corrupt_data(cache.locate(addr_a), 1 << 63)
        cache.corrupt_data(cache.locate(addr_b), 1 << 63)
        with pytest.raises(UncorrectableError):
            cache.load(addr_a, 8)


class TestRecoveryBookkeeping:
    def test_recovery_report_records_corrections(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\xEE" * 8)
        loc = cache.locate(0)
        cache.corrupt_data(loc, 1 << 63)
        cache.load(0, 8)
        report = cache.protection.recovery_log[-1]
        assert report.trigger == loc
        assert loc in report.corrections
        old, new = report.corrections[loc]
        assert old != new
        assert report.methods == ["single"]

    def test_corrected_faults_counter(self):
        cache, _ = make_cppc_cache()
        cache.store(0, b"\xEE" * 8)
        cache.corrupt_data(cache.locate(0), 1)
        cache.load(0, 8)
        assert cache.stats.corrected_faults == 1
        assert cache.stats.detected_faults == 1


class TestRecoveryCost:
    def test_report_counts_scanned_units(self):
        cache, _ = make_cppc_cache()
        for i in range(10):
            cache.store(i * 64, bytes([i]) * 8)
        cache.corrupt_data(cache.locate(0), 1)
        cache.load(0, 8)
        report = cache.protection.recovery_log[-1]
        assert report.units_scanned >= 10
        assert report.estimated_cycles() == 4 * report.units_scanned

    def test_amortized_overhead_is_negligible(self):
        """Section 5: recovery cost can be ignored.  At 0.001 FIT/bit over
        a fully dirty 32KB cache, even a 100k-cycle software recovery
        consumes a vanishing fraction of all cycles."""
        from repro.cppc.recovery import amortized_recovery_overhead

        fault_rate = 0.001 * 32 * 1024 * 8 / 1e9  # faults per hour
        overhead = amortized_recovery_overhead(fault_rate, 100_000)
        assert overhead < 1e-12

    def test_amortized_overhead_validation(self):
        from repro.cppc.recovery import amortized_recovery_overhead
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            amortized_recovery_overhead(-1.0, 10)
