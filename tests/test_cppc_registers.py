"""Tests for CPPC register pairs and the register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cppc import RegisterFile, RegisterPair
from repro.errors import ConfigurationError

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestRegisterPair:
    def test_starts_clear(self):
        pair = RegisterPair(64)
        assert pair.r1 == 0 and pair.r2 == 0 and pair.dirty_xor == 0

    def test_write_then_remove_cancels(self):
        pair = RegisterPair(64)
        pair.on_written(0xABC)
        pair.on_dirty_removed(0xABC)
        assert pair.dirty_xor == 0

    def test_paper_section_3_3_example(self):
        """Two 16-bit stores; R1 accumulates, R2 untouched (Figure 3)."""
        pair = RegisterPair(16)
        pair.on_written(0x0000)
        pair.on_written(0x8000)
        assert pair.r1 == 0x8000
        assert pair.r2 == 0
        # Recovery: R1 ^ R2 ^ Word1 reconstructs Word0 = 0x0000.
        assert pair.dirty_xor ^ 0x8000 == 0x0000

    @given(st.lists(words, max_size=30))
    def test_dirty_xor_is_running_xor(self, values):
        pair = RegisterPair(64)
        acc = 0
        for v in values:
            pair.on_written(v)
            acc ^= v
        assert pair.dirty_xor == acc

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            RegisterPair(0)
        with pytest.raises(ConfigurationError):
            RegisterPair(63)
        pair = RegisterPair(8)
        with pytest.raises(ConfigurationError):
            pair.on_written(0x100)

    def test_reset(self):
        pair = RegisterPair(64)
        pair.on_written(5)
        pair.on_dirty_removed(9)
        pair.reset()
        assert pair.r1 == 0 and pair.r2 == 0


class TestRegisterFile:
    @pytest.mark.parametrize("pairs", [1, 2, 4, 8])
    def test_valid_pair_counts(self, pairs):
        rf = RegisterFile(64, num_pairs=pairs)
        assert len(rf.pairs) == pairs
        assert rf.storage_bits == 2 * pairs * 64

    def test_invalid_pair_count(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(64, num_pairs=3)

    def test_pairs_must_divide_classes(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(64, num_pairs=8, num_classes=4)

    def test_single_pair_covers_all_classes(self):
        rf = RegisterFile(64, num_pairs=1)
        assert {rf.pair_index_of_class(c) for c in range(8)} == {0}

    def test_two_pairs_split_halves(self):
        """Section 4.6: classes 0-3 on one pair, 4-7 on the other."""
        rf = RegisterFile(64, num_pairs=2)
        assert [rf.pair_index_of_class(c) for c in range(8)] == [0] * 4 + [1] * 4

    def test_eight_pairs_one_per_class(self):
        rf = RegisterFile(64, num_pairs=8)
        assert [rf.pair_index_of_class(c) for c in range(8)] == list(range(8))

    def test_classes_of_pair_inverts_mapping(self):
        for pairs in (1, 2, 4, 8):
            rf = RegisterFile(64, num_pairs=pairs)
            for p in range(pairs):
                for c in rf.classes_of_pair(p):
                    assert rf.pair_index_of_class(c) == p

    def test_class_out_of_range(self):
        rf = RegisterFile(64)
        with pytest.raises(ConfigurationError):
            rf.pair_index_of_class(8)
        with pytest.raises(ConfigurationError):
            rf.classes_of_pair(1)

    def test_pair_of_class_returns_distinct_objects(self):
        rf = RegisterFile(64, num_pairs=2)
        assert rf.pair_of_class(0) is not rf.pair_of_class(7)

    def test_reset_clears_all(self):
        rf = RegisterFile(64, num_pairs=4)
        for pair in rf.pairs:
            pair.on_written(77)
        rf.reset()
        assert all(p.dirty_xor == 0 for p in rf.pairs)
