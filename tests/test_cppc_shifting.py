"""Tests for rotation classes, byte shifting and the shifter model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cppc import BarrelShifterModel, RotationScheme
from repro.errors import ConfigurationError
from repro.util import get_bit, get_byte

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
classes = st.integers(min_value=0, max_value=7)


class TestRotationScheme:
    def test_class_of_row_is_mod(self):
        rs = RotationScheme()
        assert [rs.class_of_row(r) for r in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1,
        ]

    def test_negative_row_rejected(self):
        with pytest.raises(ConfigurationError):
            RotationScheme().class_of_row(-1)

    @given(words, classes)
    def test_rotate_out_inverts_rotate_in(self, x, c):
        rs = RotationScheme()
        assert rs.rotate_out(rs.rotate_in(x, c), c) == x

    def test_class_zero_is_identity(self):
        rs = RotationScheme()
        assert rs.rotate_in(0x123456789ABCDEF0, 0) == 0x123456789ABCDEF0

    @given(st.integers(min_value=0, max_value=7), classes)
    def test_dest_src_byte_inverse(self, b, c):
        rs = RotationScheme()
        assert rs.src_byte(rs.dest_byte(b, c), c) == b

    @given(words, classes, st.integers(min_value=0, max_value=7))
    def test_dest_byte_matches_rotation(self, x, c, b):
        """The byte map must agree with the actual rotation."""
        rs = RotationScheme()
        rotated = rs.rotate_in(x, c)
        assert get_byte(rotated, rs.dest_byte(b, c)) == get_byte(x, b)

    def test_paper_figure_5_example(self):
        """16-bit words: bit j of R1 is XOR of bit j of word0 and
        bit (j+8) mod 16 of word1 after rotating word1 by one byte."""
        rs = RotationScheme(unit_bytes=2, num_classes=2)
        word1 = 0b1000000000000000  # bit 0 set (MSB-first)
        rotated = rs.rotate_in(word1, 1)
        assert get_bit(rotated, 8, 16) == 1
        assert get_bit(rotated, 0, 16) == 0

    def test_disabled_scheme_is_identity(self):
        rs = RotationScheme(enabled=False)
        assert rs.rotate_in(0xABCD, 5) == 0xABCD
        assert rs.dest_byte(3, 5) == 3

    def test_num_classes_cannot_exceed_bytes_when_enabled(self):
        with pytest.raises(ConfigurationError):
            RotationScheme(unit_bytes=4, num_classes=8)
        # ...but is fine when shifting is disabled (Section 4.11).
        RotationScheme(unit_bytes=4, num_classes=8, enabled=False)

    def test_l2_width_rotation(self):
        """32-byte units rotate by at most 7 bytes (classes 0-7)."""
        rs = RotationScheme(unit_bytes=32, num_classes=8)
        x = 0xAB << (8 * 31)  # byte 0 of a 256-bit unit
        assert get_byte(rs.rotate_in(x, 1), 31, 32) == 0xAB


class TestVerticalSeparation:
    @given(st.integers(min_value=0, max_value=63))
    def test_adjacent_rows_never_collide_in_registers(self, bit):
        """The core byte-shifting property (Section 4.1): the same bit of
        two adjacent rows lands in different register bits."""
        rs = RotationScheme()
        x = 1 << (63 - bit)
        for c in range(7):
            a = rs.rotate_in(x, c)
            b = rs.rotate_in(x, c + 1)
            assert a != b
            assert a & b == 0  # fully disjoint single bits

    def test_eight_classes_spread_one_column_over_all_bytes(self):
        """Figure 7: a vertical hit in byte 0 of 8 class rows touches all
        8 register bytes."""
        rs = RotationScheme()
        x = 0x80 << 56  # bit 0 of byte 0
        dests = {rs.dest_byte(0, c) for c in range(8)}
        assert dests == set(range(8))


class TestBarrelShifterModel:
    def test_structure_counts(self):
        """Section 4.8: n/8 * log2(n/8) muxes in log2(n/8) stages."""
        model = BarrelShifterModel(width_bits=64)
        assert model.num_stages == 3
        assert model.num_muxes == 8 * 3
        assert model.general_shifter_muxes == 64 * 6

    def test_cheaper_than_general_shifter(self):
        model = BarrelShifterModel(width_bits=64)
        assert model.num_muxes < model.general_shifter_muxes / 10

    def test_reference_energy_and_delay(self):
        """[9]: a 32-bit rotate costs <= 0.4ns and ~1.5 pJ at 90nm."""
        model = BarrelShifterModel(width_bits=32)
        assert model.delay_ns == pytest.approx(0.4)
        assert model.energy_pj == pytest.approx(1.5)

    def test_not_on_critical_path(self):
        """Section 4.8: shifter delay is well under the 0.78ns access
        time CACTI reports for an 8KB cache."""
        model = BarrelShifterModel(width_bits=64)
        assert model.delay_ns < 0.78

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            BarrelShifterModel(width_bits=60)
