"""Spatial multi-bit error tests: the paper's Section 4 coverage claims.

These run end-to-end: a strike pattern is injected into a CPPC cache's
stored bits and a subsequent access must detect and (when within coverage)
correct every affected word via the locator.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UncorrectableError
from repro.faults import FaultInjector, SpatialFault

from conftest import make_cppc_cache


def _dirty_all_rows(cache, way, top_row, height, rng):
    """Make `height` consecutive rows of `way` dirty with random data.

    Returns {row: (loc, value_bytes)}.
    """
    geometry = cache.protection.geometry
    written = {}
    for row in range(top_row, top_row + height):
        loc = geometry.loc_of(way, row)
        addr = (
            loc.set_index * cache.block_bytes + loc.unit_index * cache.unit_bytes
        )
        # Address that maps to (set, unit); tag 0, way assignment follows
        # fill order: way 0 gets the first fill.
        value = rng.getrandbits(64).to_bytes(8, "big")
        cache.store(addr, value)
        written[row] = (loc, value)
    return written


def _assert_all_clean_and_correct(cache, written):
    for row, (loc, value) in written.items():
        stored, check, _dirty = cache.peek_unit(loc)
        assert not cache.protection.inspect(stored, check).detected
        assert stored.to_bytes(8, "big") == value


class TestVerticalFaults:
    def test_two_bit_vertical_fault_corrected(self):
        """The Figure 4/5 scenario: MSB of two vertically adjacent dirty
        words flips; byte shifting makes it separable."""
        cache, _ = make_cppc_cache()
        rng = random.Random(0)
        written = _dirty_all_rows(cache, 0, 0, 2, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=0, height=2, width=1)
        FaultInjector(cache).inject_spatial(fault)
        loc0 = written[0][0]
        addr0 = cache.address_of(loc0)
        result = cache.load(addr0, 8)
        assert result.detected_fault
        _assert_all_clean_and_correct(cache, written)
        assert "spatial-locator" in cache.protection.recovery_log[-1].methods

    @pytest.mark.parametrize("height", [2, 3, 4, 5, 6, 7])
    def test_vertical_column_faults_up_to_seven_rows(self, height):
        cache, _ = make_cppc_cache()
        rng = random.Random(height)
        written = _dirty_all_rows(cache, 0, 0, height, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=5, height=height, width=1)
        FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(written[0][0]), 8)
        _assert_all_clean_and_correct(cache, written)

    def test_full_period_vertical_column_single_pair_is_due(self):
        """A column fault spanning all 8 rotation classes is rotationally
        symmetric — every byte alignment explains the evidence equally
        (the same character as the paper's 8x8 special case): DUE."""
        cache, _ = make_cppc_cache(num_pairs=1)
        rng = random.Random(8)
        written = _dirty_all_rows(cache, 0, 0, 8, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=5, height=8, width=1)
        FaultInjector(cache).inject_spatial(fault)
        with pytest.raises(UncorrectableError):
            cache.load(cache.address_of(written[0][0]), 8)

    def test_full_period_vertical_column_two_pairs_corrected(self):
        """Two register pairs break the rotational symmetry (Sec 4.6)."""
        cache, _ = make_cppc_cache(num_pairs=2)
        rng = random.Random(9)
        written = _dirty_all_rows(cache, 0, 0, 8, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=5, height=8, width=1)
        FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(written[0][0]), 8)
        _assert_all_clean_and_correct(cache, written)


class TestHorizontalFaults:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8])
    def test_horizontal_in_word_faults(self, width):
        """A horizontal burst inside one word: interleaved parity flags
        one group per bit; the single-word path corrects it."""
        cache, _ = make_cppc_cache()
        rng = random.Random(width)
        written = _dirty_all_rows(cache, 0, 0, 1, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=20, height=1, width=width)
        FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(written[0][0]), 8)
        _assert_all_clean_and_correct(cache, written)


class TestSquareFaults:
    @settings(max_examples=40, deadline=None)
    @given(
        top=st.integers(min_value=0, max_value=56),
        col=st.integers(min_value=0, max_value=56),
        h=st.integers(min_value=1, max_value=8),
        w=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_any_sub_8x8_square_recovered_or_due_never_sdc(
        self, top, col, h, w, seed
    ):
        """Coverage property: any strike within an 8x8 square over dirty
        rows is either fully corrected or flagged DUE — never silently
        miscorrected (no SDC)."""
        cache, _ = make_cppc_cache()
        rng = random.Random(seed)
        written = _dirty_all_rows(cache, 0, top, h, rng)
        fault = SpatialFault(way=0, top_row=top, left_col=col, height=h, width=w)
        record = FaultInjector(cache).inject_spatial(fault)
        if not record.flips:
            return
        addr = cache.address_of(record.flips[0].loc)
        try:
            cache.load(addr, 8)
        except UncorrectableError:
            return  # DUE is acceptable; silent corruption is not
        _assert_all_clean_and_correct(cache, written)

    def test_full_8x8_single_pair_is_due(self):
        """Section 4.6: a full 8x8 strike with one register pair floods
        every parity bit and every R3 byte — uncorrectable."""
        cache, _ = make_cppc_cache(num_pairs=1)
        rng = random.Random(42)
        _dirty_all_rows(cache, 0, 0, 8, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=8, height=8, width=8)
        record = FaultInjector(cache).inject_spatial(fault)
        assert record.total_bits == 64
        with pytest.raises(UncorrectableError):
            cache.load(cache.address_of(record.flips[0].loc), 8)

    def test_full_8x8_two_pairs_corrected(self):
        """Section 4.6: two register pairs split the 8x8 into two 4x8
        strikes in different domains — correctable."""
        cache, _ = make_cppc_cache(num_pairs=2)
        rng = random.Random(43)
        written = _dirty_all_rows(cache, 0, 0, 8, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=8, height=8, width=8)
        record = FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(record.flips[0].loc), 8)
        _assert_all_clean_and_correct(cache, written)

    def test_eight_pairs_without_shifting_corrects_squares(self):
        """Section 4.11: 8 register pairs, no barrel shifters — adjacent
        rows are in different domains, so squares decompose into
        single-word faults."""
        cache, _ = make_cppc_cache(num_pairs=8, byte_shifting=False)
        rng = random.Random(44)
        written = _dirty_all_rows(cache, 0, 0, 8, rng)
        fault = SpatialFault(way=0, top_row=0, left_col=0, height=8, width=8)
        record = FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(record.flips[0].loc), 8)
        _assert_all_clean_and_correct(cache, written)


class TestByteBoundaryFaults:
    def test_square_across_byte_boundary(self):
        """The Section 4.5 worked scenario: the strike straddles two
        adjacent bytes of four consecutive rows."""
        cache, _ = make_cppc_cache()
        rng = random.Random(45)
        written = _dirty_all_rows(cache, 0, 0, 4, rng)
        # Bits 5..12: last 3 bits of byte 0, first 5 bits of byte 1.
        fault = SpatialFault(way=0, top_row=0, left_col=5, height=4, width=8)
        record = FaultInjector(cache).inject_spatial(fault)
        cache.load(cache.address_of(record.flips[0].loc), 8)
        _assert_all_clean_and_correct(cache, written)


class TestAliasingHazard:
    def test_temporal_pair_miscorrected_as_spatial(self):
        """Section 4.7: temporal faults at bit 56 of a class-0 word and
        bit 8 of the adjacent class-1 word forge a consistent vertical
        2-bit pattern at bit 0 — the locator miscorrects, producing an
        SDC instead of a DUE.  The reproduction must exhibit the hazard."""
        cache, _ = make_cppc_cache(num_pairs=1)
        rng = random.Random(46)
        written = _dirty_all_rows(cache, 0, 0, 2, rng)
        loc0, value0 = written[0]
        loc1, value1 = written[1]
        cache.corrupt_data(loc0, 1 << (63 - 56))
        cache.corrupt_data(loc1, 1 << (63 - 8))
        cache.load(cache.address_of(loc0), 8)  # triggers "recovery"
        stored0 = cache.peek_unit(loc0)[0].to_bytes(8, "big")
        stored1 = cache.peek_unit(loc1)[0].to_bytes(8, "big")
        # Both words now differ from their true values: a 4-bit SDC.
        assert stored0 != value0
        assert stored1 != value1

    def test_eight_pairs_eliminate_the_hazard(self):
        """Section 4.7/4.11: with 8 pairs the two faults fall in separate
        domains and are corrected exactly."""
        cache, _ = make_cppc_cache(num_pairs=8, byte_shifting=False)
        rng = random.Random(47)
        written = _dirty_all_rows(cache, 0, 0, 2, rng)
        loc0, _ = written[0]
        loc1, _ = written[1]
        cache.corrupt_data(loc0, 1 << (63 - 56))
        cache.corrupt_data(loc1, 1 << (63 - 8))
        cache.load(cache.address_of(loc0), 8)
        cache.load(cache.address_of(loc1), 8)
        _assert_all_clean_and_correct(cache, written)
