"""Tests for CPPC-style tag-array protection (paper Section 7)."""

import random

import pytest

from repro.cppc import TagCppc
from repro.errors import ConfigurationError, UncorrectableError
from repro.memsim import Cache, MainMemory


def make_tag_protected_cache(parity_ways=1):
    memory = MainMemory(block_bytes=32)
    cache = Cache(
        "L1D", 1024, 2, 32,
        next_level=memory,
        tag_protection=TagCppc(tag_bits=40, parity_ways=parity_ways),
    )
    return cache, memory


class TestTagCppcUnit:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TagCppc(tag_bits=0)
        with pytest.raises(ConfigurationError):
            TagCppc(tag_bits=40, parity_ways=3)

    def test_insert_remove_cancel(self):
        tp = TagCppc(tag_bits=40)
        tp.on_insert(0x123)
        tp.on_remove(0x123)
        assert tp.valid_tag_xor == 0

    def test_oversized_tag_rejected(self):
        tp = TagCppc(tag_bits=8)
        with pytest.raises(ConfigurationError):
            tp.on_insert(0x100)

    def test_double_attach_rejected(self):
        tp = TagCppc()
        def make_cache():
            return Cache(
                "L1D", 1024, 2, 32, next_level=MainMemory(32), tag_protection=tp
            )
        make_cache()
        with pytest.raises(ConfigurationError):
            make_cache()


class TestTagInvariant:
    def test_register_tracks_valid_tags(self):
        cache, _ = make_tag_protected_cache()
        rng = random.Random(2)
        for _ in range(200):
            cache.load(rng.randrange(0, 1 << 16) & ~7, 8)
        expected = 0
        for set_index in range(cache.num_sets):
            for way in range(cache.ways):
                line = cache.line(set_index, way)
                if line.valid:
                    expected ^= line.tag
        assert cache.tag_protection.valid_tag_xor == expected

    def test_invariant_survives_evictions_and_flush(self):
        cache, _ = make_tag_protected_cache()
        rng = random.Random(3)
        for _ in range(300):
            addr = rng.randrange(0, 1 << 18) & ~7
            if rng.random() < 0.5:
                cache.store(addr, b"\x01" * 8)
            else:
                cache.load(addr, 8)
        cache.flush()
        assert cache.tag_protection.valid_tag_xor == 0


class TestTagRecovery:
    def test_corrupted_tag_recovered_on_lookup(self):
        cache, _ = make_tag_protected_cache()
        cache.store(0x2000, b"\x9A" * 8)
        set_index = cache.mapper.set_index(0x2000)
        true_tag = cache.mapper.tag(0x2000)
        # Find the way and break its tag.
        way = next(
            w for w in range(cache.ways)
            if cache.line(set_index, w).valid
            and cache.line(set_index, w).tag == true_tag
        )
        cache.corrupt_tag(set_index, way, 0b1)
        result = cache.load(0x2000, 8)
        assert result.hit, "a recovered tag must restore the hit"
        assert result.data == b"\x9A" * 8
        assert cache.tag_protection.recoveries == 1
        assert cache.line(set_index, way).tag == true_tag

    def test_dirty_data_saved_by_tag_recovery(self):
        """Without tag protection a corrupted tag strands dirty data; with
        it, the write-back later reaches the right address."""
        cache, memory = make_tag_protected_cache()
        cache.store(0x2000, b"\x77" * 8)
        set_index = cache.mapper.set_index(0x2000)
        way = next(
            w for w in range(cache.ways) if cache.line(set_index, w).valid
        )
        cache.corrupt_tag(set_index, way, 0b10)
        cache.load(0x2000, 8)  # recovery fixes the tag in place
        cache.flush()
        assert memory.peek(0x2000, 8) == b"\x77" * 8

    def test_two_concurrent_tag_faults_are_due(self):
        cache, _ = make_tag_protected_cache()
        cache.store(0x2000, b"\x01" * 8)
        cache.store(0x2020, b"\x02" * 8)  # a different set
        s0 = cache.mapper.set_index(0x2000)
        s1 = cache.mapper.set_index(0x2020)
        assert s0 != s1
        w0 = next(w for w in range(cache.ways) if cache.line(s0, w).valid)
        w1 = next(w for w in range(cache.ways) if cache.line(s1, w).valid)
        cache.corrupt_tag(s0, w0, 0b1)
        cache.corrupt_tag(s1, w1, 0b1)
        with pytest.raises(UncorrectableError):
            cache.load(0x2000, 8)

    def test_multibit_tag_fault_with_interleaved_parity(self):
        cache, _ = make_tag_protected_cache(parity_ways=8)
        cache.store(0x2000, b"\x55" * 8)
        set_index = cache.mapper.set_index(0x2000)
        way = next(
            w for w in range(cache.ways) if cache.line(set_index, w).valid
        )
        cache.corrupt_tag(set_index, way, 0b101)  # 2 bits, different groups
        result = cache.load(0x2000, 8)
        assert result.hit
        assert cache.tag_protection.recoveries == 1
